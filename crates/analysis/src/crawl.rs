//! Crawl coverage and robustness accounting.
//!
//! The paper's dataset exists only because a Selenium crawler kept running
//! through throttling and outages; this module reports how much of the
//! intended measurement actually landed (per-campaign coverage) and how the
//! study's headline results shift when the crawl surface degrades (the
//! clean-vs-faulted comparison behind the `--fault-profile` CLI surface).

use crate::report::StudyReport;
use likelab_honeypot::{CrawlCoverage, Dataset};
use serde::{Deserialize, Serialize};

/// One campaign's crawl coverage, with the derived rates precomputed so
/// the JSON export is directly plottable.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CrawlCoverageRow {
    /// Campaign label.
    pub label: String,
    /// Raw coverage counters.
    pub coverage: CrawlCoverage,
    /// Fraction of polls that succeeded.
    pub poll_success_rate: f64,
    /// Fraction of liker profiles resolved (complete or gone) at
    /// collection time.
    pub profile_coverage: f64,
}

/// The report's crawl-coverage section: per-campaign rows plus the
/// dataset-wide aggregate.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CrawlSection {
    /// Per-campaign coverage, in Table 1 order.
    pub per_campaign: Vec<CrawlCoverageRow>,
    /// Counters summed across all campaigns.
    pub total: CrawlCoverage,
    /// Dataset-wide poll success rate.
    pub poll_success_rate: f64,
    /// Dataset-wide profile coverage.
    pub profile_coverage: f64,
}

/// Build the crawl-coverage section from the dataset.
pub fn crawl_section(dataset: &Dataset) -> CrawlSection {
    let per_campaign = dataset
        .campaigns
        .iter()
        .map(|c| CrawlCoverageRow {
            label: c.spec.label.clone(),
            coverage: c.coverage,
            poll_success_rate: c.coverage.poll_success_rate(),
            profile_coverage: c.coverage.profile_coverage(),
        })
        .collect();
    let total = dataset.total_coverage();
    CrawlSection {
        per_campaign,
        total,
        poll_success_rate: total.poll_success_rate(),
        profile_coverage: total.profile_coverage(),
    }
}

/// How one campaign's temporal shape and termination count moved between a
/// clean run and a faulted run of the same study.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Campaign label.
    pub label: String,
    /// Final like count, clean vs faulted.
    pub likes: (usize, usize),
    /// Figure 2's peak-2h share, clean vs faulted.
    pub peak_2h_share: (f64, f64),
    /// Figure 2's days-to-90%, clean vs faulted.
    pub days_to_90pct: (f64, f64),
    /// §5 terminated count, clean vs faulted.
    pub terminated: (usize, usize),
    /// §5 unanswered termination probes, clean vs faulted.
    pub termination_unknown: (usize, usize),
}

/// The clean-vs-faulted robustness comparison: how far the faulted run's
/// Figure 2 temporal shape and §5 termination counts drifted from the
/// clean twin's.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RobustnessComparison {
    /// Per-campaign drift, for campaigns present in both reports.
    pub rows: Vec<RobustnessRow>,
    /// Total likes, clean vs faulted.
    pub total_likes: (usize, usize),
    /// Total terminated, clean vs faulted.
    pub total_terminated: (usize, usize),
    /// Total unanswered termination probes, clean vs faulted.
    pub total_unknown: (usize, usize),
    /// The faulted run's dataset-wide poll success rate.
    pub faulted_poll_success_rate: f64,
    /// The faulted run's dataset-wide profile coverage.
    pub faulted_profile_coverage: f64,
}

impl RobustnessComparison {
    /// Largest absolute per-campaign drift in peak-2h share — the one-number
    /// summary of how much the fault regime distorted Figure 2's shape.
    pub fn max_peak_share_drift(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| (r.peak_2h_share.0 - r.peak_2h_share.1).abs())
            .fold(0.0, f64::max)
    }
}

/// Compare a clean and a faulted run of the same study configuration.
pub fn compare_reports(clean: &StudyReport, faulted: &StudyReport) -> RobustnessComparison {
    let rows = clean
        .figure2
        .iter()
        .filter_map(|cs| {
            let fs = faulted.figure2.iter().find(|s| s.label == cs.label)?;
            let term = |r: &StudyReport| {
                r.termination
                    .by_campaign
                    .get(&cs.label)
                    .copied()
                    .unwrap_or(0)
            };
            let unknown = |r: &StudyReport| {
                r.termination
                    .unknown_by_campaign
                    .get(&cs.label)
                    .copied()
                    .unwrap_or(0)
            };
            Some(RobustnessRow {
                label: cs.label.clone(),
                likes: (cs.total(), fs.total()),
                peak_2h_share: (cs.peak_2h_share, fs.peak_2h_share),
                days_to_90pct: (cs.days_to_90pct, fs.days_to_90pct),
                terminated: (term(clean), term(faulted)),
                termination_unknown: (unknown(clean), unknown(faulted)),
            })
        })
        .collect();
    RobustnessComparison {
        rows,
        total_likes: (clean.totals.campaign_likes, faulted.totals.campaign_likes),
        total_terminated: (clean.termination.total, faulted.termination.total),
        total_unknown: (
            clean.termination.unknown_total,
            faulted.termination.unknown_total,
        ),
        faulted_poll_success_rate: faulted.crawl.poll_success_rate,
        faulted_profile_coverage: faulted.crawl.profile_coverage,
    }
}

impl RobustnessComparison {
    /// Render as plain text (the `== Crawl robustness ==` block the CLI
    /// prints after a faulted run).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Crawl robustness: clean vs faulted ==\n");
        let mut rows = vec![vec![
            "Campaign".to_string(),
            "Likes".to_string(),
            "Peak2h%".to_string(),
            "t90 (d)".to_string(),
            "Term.".to_string(),
            "Unk.".to_string(),
        ]];
        for r in &self.rows {
            rows.push(vec![
                r.label.clone(),
                format!("{} -> {}", r.likes.0, r.likes.1),
                format!(
                    "{:.0} -> {:.0}",
                    r.peak_2h_share.0 * 100.0,
                    r.peak_2h_share.1 * 100.0
                ),
                format!("{:.1} -> {:.1}", r.days_to_90pct.0, r.days_to_90pct.1),
                format!("{} -> {}", r.terminated.0, r.terminated.1),
                format!("{} -> {}", r.termination_unknown.0, r.termination_unknown.1),
            ]);
        }
        out.push_str(&crate::render::table(&rows));
        out.push_str(&format!(
            "\nTotals: likes {} -> {}; terminated {} -> {} (+{} unknown); \
             faulted run kept {:.1}% of polls and resolved {:.1}% of profiles\n",
            self.total_likes.0,
            self.total_likes.1,
            self.total_terminated.0,
            self.total_terminated.1,
            self.total_unknown.1,
            self.faulted_poll_success_rate * 100.0,
            self.faulted_profile_coverage * 100.0,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_farms::Region;
    use likelab_honeypot::{CampaignData, CampaignSpec, Promotion};
    use likelab_osn::AudienceReport;
    use likelab_sim::SimTime;

    fn campaign(label: &str, coverage: CrawlCoverage) -> CampaignData {
        CampaignData {
            spec: CampaignSpec {
                label: label.into(),
                promotion: Promotion::FarmOrder {
                    farm: 0,
                    region: Region::Worldwide,
                    likes: 0,
                    price_cents: 0,
                    advertised_duration: String::new(),
                },
            },
            page: likelab_graph::PageId(0),
            observations: vec![],
            likers: vec![],
            report: AudienceReport::default(),
            monitoring_days: None,
            terminated_after_month: 0,
            termination_unknown: 0,
            inactive: false,
            coverage,
        }
    }

    #[test]
    fn section_aggregates_and_rates() {
        let a = CrawlCoverage {
            polls: 10,
            failed_polls: 2,
            rate_limited_polls: 1,
            outage_polls: 1,
            circuit_trips: 1,
            profiles_complete: 8,
            profiles_gone: 1,
            profiles_gave_up: 1,
        };
        let b = CrawlCoverage {
            polls: 10,
            failed_polls: 0,
            profiles_complete: 5,
            ..Default::default()
        };
        let d = Dataset {
            campaigns: vec![campaign("AL-USA", a), campaign("BL-USA", b)],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        };
        let s = crawl_section(&d);
        assert_eq!(s.per_campaign.len(), 2);
        assert!((s.per_campaign[0].poll_success_rate - 0.8).abs() < 1e-12);
        assert!((s.per_campaign[0].profile_coverage - 0.9).abs() < 1e-12);
        assert_eq!(s.total.polls, 20);
        assert_eq!(s.total.failed_polls, 2);
        assert!((s.poll_success_rate - 0.9).abs() < 1e-12);
        assert_eq!(s.total.profiles_complete, 13);
    }

    #[test]
    fn empty_dataset_has_full_coverage() {
        let d = Dataset {
            campaigns: vec![],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        };
        let s = crawl_section(&d);
        assert_eq!(s.poll_success_rate, 1.0);
        assert_eq!(s.profile_coverage, 1.0);
    }

    #[test]
    fn comparison_measures_drift() {
        let d = Dataset {
            campaigns: vec![campaign("AL-USA", CrawlCoverage::default())],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        };
        let clean = StudyReport::compute_sequential(&d);
        let faulted = clean.clone();
        let cmp = compare_reports(&clean, &faulted);
        assert_eq!(cmp.total_likes.0, cmp.total_likes.1);
        assert_eq!(cmp.max_peak_share_drift(), 0.0);
        let text = cmp.render();
        assert!(text.contains("Crawl robustness"));
        assert!(text.contains("Totals:"));
    }
}
