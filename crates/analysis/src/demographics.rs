//! Table 2 — gender and age statistics of likers, with KL divergence
//! against the global platform population.

use crate::stats::kl_divergence;
use likelab_honeypot::Dataset;
use serde::{Deserialize, Serialize};

/// One row of Table 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DemographicsRow {
    /// Campaign label ("Facebook" for the global row).
    pub label: String,
    /// Percent female.
    pub female_pct: f64,
    /// Percent male.
    pub male_pct: f64,
    /// Percent per age bracket (Table 2 order).
    pub age_pct: [f64; 6],
    /// KL divergence of the age distribution vs. the global platform
    /// (None for the global row itself).
    pub kl: Option<f64>,
}

/// Compute Table 2: one row per active campaign plus the global row last.
pub fn table2(dataset: &Dataset) -> Vec<DemographicsRow> {
    let global_dist = dataset.global_report.age_distribution();
    let mut rows: Vec<DemographicsRow> = dataset
        .campaigns
        .iter()
        .filter(|c| !c.inactive)
        .map(|c| {
            let age = c.report.age_distribution();
            DemographicsRow {
                label: c.spec.label.clone(),
                female_pct: c.report.female_fraction() * 100.0,
                male_pct: (1.0 - c.report.female_fraction()) * 100.0,
                age_pct: age.map(|a| a * 100.0),
                kl: Some(kl_divergence(&age, &global_dist)),
            }
        })
        .collect();
    rows.push(DemographicsRow {
        label: "Facebook".into(),
        female_pct: dataset.global_report.female_fraction() * 100.0,
        male_pct: (1.0 - dataset.global_report.female_fraction()) * 100.0,
        age_pct: global_dist.map(|a| a * 100.0),
        kl: None,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_farms::Region;
    use likelab_honeypot::{CampaignData, CampaignSpec, Promotion};
    use likelab_osn::AudienceReport;
    use likelab_sim::SimTime;

    fn report(female: usize, male: usize, ages: [usize; 6]) -> AudienceReport {
        AudienceReport {
            total: female + male,
            female,
            male,
            age_counts: ages,
            country_counts: Default::default(),
        }
    }

    fn campaign(label: &str, r: AudienceReport) -> CampaignData {
        CampaignData {
            spec: CampaignSpec {
                label: label.into(),
                promotion: Promotion::FarmOrder {
                    farm: 0,
                    region: Region::Worldwide,
                    likes: 0,
                    price_cents: 0,
                    advertised_duration: String::new(),
                },
            },
            page: likelab_graph::PageId(0),
            observations: vec![],
            likers: vec![],
            report: r,
            monitoring_days: None,
            terminated_after_month: 0,
            termination_unknown: 0,
            inactive: false,
            coverage: likelab_honeypot::CrawlCoverage::default(),
        }
    }

    #[test]
    fn young_male_campaign_diverges_global_like_campaign_does_not() {
        // Global-ish distribution (Table 2's last row, scaled to counts).
        let global = report(46, 54, [15, 32, 27, 13, 7, 6]);
        // FB-IND-like: young and male.
        let young = report(7, 93, [53, 43, 2, 1, 1, 0]);
        // SF-like: mirrors global.
        let mirror = report(37, 63, [15, 32, 27, 13, 7, 6]);
        let d = Dataset {
            campaigns: vec![campaign("FB-IND", young), campaign("SF-ALL", mirror)],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: global,
        };
        let rows = table2(&d);
        assert_eq!(rows.len(), 3);
        let fb = &rows[0];
        let sf = &rows[1];
        assert!((fb.female_pct - 7.0).abs() < 1e-9);
        assert!(fb.kl.unwrap() > 0.5, "FB-IND diverges: {:?}", fb.kl);
        assert!(sf.kl.unwrap() < 0.05, "SF mirrors global: {:?}", sf.kl);
        assert!(fb.kl.unwrap() > sf.kl.unwrap() * 10.0);
    }

    #[test]
    fn global_row_is_last_with_no_kl() {
        let d = Dataset {
            campaigns: vec![],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: report(46, 54, [15, 32, 27, 13, 7, 6]),
        };
        let rows = table2(&d);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].label, "Facebook");
        assert!(rows[0].kl.is_none());
        assert!((rows[0].female_pct - 46.0).abs() < 1e-9);
        let sum: f64 = rows[0].age_pct.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }
}
