//! Figure 1 — geolocation of the likers, per campaign.
//!
//! Stacked shares over USA / India / Egypt / Turkey / France / Other, read
//! off the page-admin reports (which aggregate private attributes too, just
//! like Facebook's).

use likelab_honeypot::Dataset;
use likelab_osn::GeoBucket;
use serde::{Deserialize, Serialize};

/// One campaign's bar in Figure 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeoRow {
    /// Campaign label.
    pub label: String,
    /// Shares over [`GeoBucket::ALL`], summing to 1 for non-empty campaigns.
    pub shares: [f64; 6],
    /// Number of likers behind the shares.
    pub likers: usize,
}

impl GeoRow {
    /// The share of one bucket.
    pub fn share(&self, bucket: GeoBucket) -> f64 {
        // `GeoBucket::ALL` lists the variants in declaration order, so the
        // discriminant doubles as the index.
        self.shares[bucket as usize]
    }

    /// The dominant bucket, when any liker exists.
    pub fn dominant(&self) -> Option<GeoBucket> {
        if self.likers == 0 {
            return None;
        }
        GeoBucket::ALL
            .iter()
            .copied()
            .max_by(|a, b| self.share(*a).total_cmp(&self.share(*b)))
    }
}

/// Compute Figure 1: one row per active campaign, in dataset order.
pub fn figure1(dataset: &Dataset) -> Vec<GeoRow> {
    dataset
        .campaigns
        .iter()
        .filter(|c| !c.inactive)
        .map(|c| GeoRow {
            label: c.spec.label.clone(),
            shares: c.report.geo_distribution(),
            likers: c.report.total,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_honeypot::{CampaignData, CampaignSpec, Promotion};
    use likelab_osn::{AudienceReport, Targeting};
    use likelab_sim::SimTime;

    fn row(counts: &[(&str, usize)], inactive: bool) -> CampaignData {
        let mut report = AudienceReport::default();
        for (k, v) in counts {
            report.country_counts.insert((*k).to_string(), *v);
            report.total += v;
        }
        CampaignData {
            spec: CampaignSpec {
                label: "FB-ALL".into(),
                promotion: Promotion::PlatformAds {
                    targeting: Targeting::worldwide(),
                    daily_budget_cents: 600.0,
                    duration_days: 15,
                },
            },
            page: likelab_graph::PageId(0),
            observations: vec![],
            likers: vec![],
            report,
            monitoring_days: None,
            terminated_after_month: 0,
            termination_unknown: 0,
            inactive,
            coverage: likelab_honeypot::CrawlCoverage::default(),
        }
    }

    fn dataset(campaigns: Vec<CampaignData>) -> Dataset {
        Dataset {
            campaigns,
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        }
    }

    #[test]
    fn shares_follow_the_report() {
        let d = dataset(vec![row(&[("India", 96), ("USA", 4)], false)]);
        let fig = figure1(&d);
        assert_eq!(fig.len(), 1);
        assert!((fig[0].share(GeoBucket::India) - 0.96).abs() < 1e-12);
        assert!((fig[0].share(GeoBucket::Usa) - 0.04).abs() < 1e-12);
        assert_eq!(fig[0].dominant(), Some(GeoBucket::India));
        assert_eq!(fig[0].likers, 100);
    }

    #[test]
    fn inactive_campaigns_are_skipped() {
        let d = dataset(vec![row(&[("USA", 1)], true)]);
        assert!(figure1(&d).is_empty());
    }

    #[test]
    fn empty_campaign_has_no_dominant() {
        let d = dataset(vec![row(&[], false)]);
        let fig = figure1(&d);
        assert_eq!(fig[0].dominant(), None);
        assert_eq!(fig[0].shares, [0.0; 6]);
    }
}
