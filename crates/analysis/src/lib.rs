//! # likelab-analysis — the paper's analysis pipeline
//!
//! Pure functions from the crawled [`Dataset`](likelab_honeypot::Dataset) to
//! every table and figure in the paper's evaluation:
//!
//! | Artifact | Module |
//! |---|---|
//! | Table 1 (campaign roster/outcomes) | [`report`] |
//! | Table 2 (demographics + KL) | [`demographics`] |
//! | Table 3 (likers & friendships) | [`social`] |
//! | Figure 1 (geolocation) | [`geo`] |
//! | Figure 2 (cumulative likes) | [`temporal`] |
//! | Figure 3 (friendship graphs) | [`social`] (census + DOT) |
//! | Figure 4 (page-like CDFs) | [`pagelikes`] |
//! | Figure 5 (Jaccard matrices) | [`similarity`] |
//! | §5 termination follow-up | [`termination`] |
//! | Crawl coverage & robustness | [`crawl`] |
//!
//! Figures can also be rendered as standalone SVG files ([`svg`]).
//!
//! Everything is computed from what the crawler could see — admin reports
//! for demographics, public profiles for friend/like lists — never from the
//! simulator's ground truth, so the pipeline is exactly as blind as the
//! paper's was.

pub mod crawl;
pub mod demographics;
pub mod geo;
pub mod pagelikes;
pub mod provider;
pub mod render;
pub mod report;
pub mod similarity;
pub mod social;
pub mod stats;
pub mod svg;
pub mod temporal;
pub mod termination;

pub use crawl::{compare_reports, CrawlSection, RobustnessComparison};
pub use provider::Provider;
pub use report::{StudyReport, Table1Row, Totals};
pub use social::ObservedSocial;
pub use stats::{jaccard, kl_divergence, Cdf};
