//! Figure 4 — distribution of per-liker page-like counts, against the
//! random-directory baseline.
//!
//! The paper's headline contrast: baseline users hold a median of 34 page
//! likes; honeypot likers hold hundreds to thousands — "our honeypot pages
//! attracted users that tend to like significantly more pages than regular
//! Facebook users".

use crate::stats::Cdf;
use likelab_honeypot::Dataset;
use serde::{Deserialize, Serialize};

/// One CDF curve of Figure 4.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LikeCountCurve {
    /// Campaign label, or "Facebook" for the baseline.
    pub label: String,
    /// Whether this is a platform-ads campaign (Figure 4a vs 4b).
    pub platform_ads: bool,
    /// The CDF over per-liker page-like counts (public like lists only).
    pub cdf: Cdf,
}

impl LikeCountCurve {
    /// Median page-like count (NaN when no public like list was seen).
    pub fn median(&self) -> f64 {
        self.cdf.median()
    }
}

/// Compute Figure 4: one curve per active campaign plus the baseline last.
pub fn figure4(dataset: &Dataset) -> Vec<LikeCountCurve> {
    let mut curves: Vec<LikeCountCurve> = dataset
        .campaigns
        .iter()
        .filter(|c| !c.inactive)
        .map(|c| {
            let counts: Vec<f64> = c
                .likers
                .iter()
                .filter_map(|l| l.liked_pages.as_ref().map(|p| p.len() as f64))
                .collect();
            LikeCountCurve {
                label: c.spec.label.clone(),
                platform_ads: c.spec.is_platform_ads(),
                cdf: Cdf::new(counts),
            }
        })
        .collect();
    curves.push(LikeCountCurve {
        label: "Facebook".into(),
        platform_ads: false,
        cdf: Cdf::new(
            dataset
                .baseline
                .iter()
                .map(|b| b.like_count as f64)
                .collect(),
        ),
    });
    curves
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_farms::Region;
    use likelab_graph::{PageId, UserId};
    use likelab_honeypot::{BaselineRecord, CampaignData, CampaignSpec, LikerRecord, Promotion};
    use likelab_osn::AudienceReport;
    use likelab_sim::SimTime;

    fn liker(id: u32, likes: Option<usize>) -> LikerRecord {
        LikerRecord {
            user: UserId(id),
            first_seen: SimTime::EPOCH,
            friends: None,
            total_friend_count: None,
            liked_pages: likes.map(|n| (0..n as u32).map(PageId).collect()),
            gone_at_collection: false,
            crawl_outcome: likelab_honeypot::CrawlOutcome::Complete,
        }
    }

    fn campaign(label: &str, likers: Vec<LikerRecord>) -> CampaignData {
        CampaignData {
            spec: CampaignSpec {
                label: label.into(),
                promotion: Promotion::FarmOrder {
                    farm: 0,
                    region: Region::Worldwide,
                    likes: 0,
                    price_cents: 0,
                    advertised_duration: String::new(),
                },
            },
            page: PageId(0),
            observations: vec![],
            likers,
            report: AudienceReport::default(),
            monitoring_days: None,
            terminated_after_month: 0,
            termination_unknown: 0,
            inactive: false,
            coverage: likelab_honeypot::CrawlCoverage::default(),
        }
    }

    #[test]
    fn medians_contrast_farm_vs_baseline() {
        let d = Dataset {
            campaigns: vec![campaign(
                "SF-ALL",
                (0..9)
                    .map(|i| liker(i, Some(1_000 + i as usize * 100)))
                    .collect(),
            )],
            baseline: (0..9)
                .map(|i| BaselineRecord {
                    user: UserId(100 + i),
                    like_count: 30 + i as usize,
                })
                .collect(),
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        };
        let curves = figure4(&d);
        assert_eq!(curves.len(), 2);
        let sf = &curves[0];
        let base = &curves[1];
        assert_eq!(base.label, "Facebook");
        assert!(sf.median() > base.median() * 20.0);
        assert_eq!(base.median(), 34.0);
    }

    #[test]
    fn private_like_lists_are_excluded() {
        let d = Dataset {
            campaigns: vec![campaign(
                "AL-USA",
                vec![liker(0, Some(10)), liker(1, None), liker(2, Some(20))],
            )],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        };
        let curves = figure4(&d);
        assert_eq!(curves[0].cdf.len(), 2, "one private list dropped");
    }

    #[test]
    fn empty_baseline_yields_empty_curve() {
        let d = Dataset {
            campaigns: vec![],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        };
        let curves = figure4(&d);
        assert_eq!(curves.len(), 1);
        assert!(curves[0].cdf.is_empty());
        assert!(curves[0].median().is_nan());
    }
}
