//! Provider grouping: which service a liker "belongs" to.
//!
//! Table 3 groups likers by provider, with one twist: users who liked both
//! an AuthenticLikes page and a MammothSocials page form their own ALMS
//! group (they are the smoking gun for the shared operator) and are removed
//! from the AL and MS rows.

use likelab_graph::UserId;
use likelab_honeypot::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The provider groups of Table 3.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Provider {
    /// Likers of the legitimate ad campaigns.
    Facebook,
    /// BoostLikes.
    BoostLikes,
    /// SocialFormula.
    SocialFormula,
    /// AuthenticLikes (excluding ALMS).
    AuthenticLikes,
    /// MammothSocials (excluding ALMS).
    MammothSocials,
    /// Likers of both AL and MS campaigns.
    Alms,
}

impl Provider {
    /// All groups in Table 3 order.
    pub const ALL: [Provider; 6] = [
        Provider::Facebook,
        Provider::BoostLikes,
        Provider::SocialFormula,
        Provider::AuthenticLikes,
        Provider::MammothSocials,
        Provider::Alms,
    ];

    /// The provider a campaign label belongs to ("FB-USA" → Facebook).
    pub fn of_label(label: &str) -> Option<Provider> {
        match label.split('-').next()? {
            "FB" => Some(Provider::Facebook),
            "BL" => Some(Provider::BoostLikes),
            "SF" => Some(Provider::SocialFormula),
            "AL" => Some(Provider::AuthenticLikes),
            "MS" => Some(Provider::MammothSocials),
            _ => None,
        }
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Provider::Facebook => "Facebook.com",
            Provider::BoostLikes => "BoostLikes.com",
            Provider::SocialFormula => "SocialFormula.com",
            Provider::AuthenticLikes => "AuthenticLikes.com",
            Provider::MammothSocials => "MammothSocials.com",
            Provider::Alms => "ALMS",
        };
        f.write_str(s)
    }
}

/// Assign every liker in the dataset to its Table 3 group.
///
/// A user may have liked pages of several providers; Table 3's only special
/// case is ALMS (AL ∩ MS). Other multi-provider likers are counted in every
/// provider they touched, matching the paper's note that the per-provider
/// liker counts need not sum to the campaign like totals.
pub fn group_likers(dataset: &Dataset) -> BTreeMap<Provider, BTreeSet<UserId>> {
    let mut raw: BTreeMap<Provider, BTreeSet<UserId>> = BTreeMap::new();
    for c in &dataset.campaigns {
        let Some(p) = Provider::of_label(&c.spec.label) else {
            continue;
        };
        raw.entry(p).or_default().extend(c.liker_ids());
    }
    let al = raw.remove(&Provider::AuthenticLikes).unwrap_or_default();
    let ms = raw.remove(&Provider::MammothSocials).unwrap_or_default();
    let alms: BTreeSet<UserId> = al.intersection(&ms).copied().collect();
    raw.insert(
        Provider::AuthenticLikes,
        al.difference(&alms).copied().collect(),
    );
    raw.insert(
        Provider::MammothSocials,
        ms.difference(&alms).copied().collect(),
    );
    raw.insert(Provider::Alms, alms);
    for p in Provider::ALL {
        raw.entry(p).or_default();
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_farms::Region;
    use likelab_honeypot::{CampaignData, CampaignSpec, LikerRecord, Promotion};
    use likelab_osn::AudienceReport;
    use likelab_sim::SimTime;

    fn liker(id: u32) -> LikerRecord {
        LikerRecord {
            user: UserId(id),
            first_seen: SimTime::EPOCH,
            friends: None,
            total_friend_count: None,
            liked_pages: None,
            gone_at_collection: false,
            crawl_outcome: likelab_honeypot::CrawlOutcome::Complete,
        }
    }

    fn campaign(label: &str, ids: &[u32]) -> CampaignData {
        CampaignData {
            spec: CampaignSpec {
                label: label.into(),
                promotion: Promotion::FarmOrder {
                    farm: 0,
                    region: Region::Worldwide,
                    likes: 1_000,
                    price_cents: 1,
                    advertised_duration: "x".into(),
                },
            },
            page: likelab_graph::PageId(0),
            observations: vec![],
            likers: ids.iter().map(|i| liker(*i)).collect(),
            report: AudienceReport::default(),
            monitoring_days: None,
            terminated_after_month: 0,
            termination_unknown: 0,
            inactive: false,
            coverage: likelab_honeypot::CrawlCoverage::default(),
        }
    }

    #[test]
    fn label_prefixes_map_to_providers() {
        assert_eq!(Provider::of_label("FB-USA"), Some(Provider::Facebook));
        assert_eq!(Provider::of_label("BL-ALL"), Some(Provider::BoostLikes));
        assert_eq!(Provider::of_label("SF-USA"), Some(Provider::SocialFormula));
        assert_eq!(Provider::of_label("AL-ALL"), Some(Provider::AuthenticLikes));
        assert_eq!(Provider::of_label("MS-USA"), Some(Provider::MammothSocials));
        assert_eq!(Provider::of_label("XX-1"), None);
    }

    #[test]
    fn alms_is_carved_out_of_al_and_ms() {
        let dataset = Dataset {
            campaigns: vec![
                campaign("AL-USA", &[1, 2, 3]),
                campaign("MS-USA", &[3, 4]),
                campaign("SF-ALL", &[5]),
            ],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        };
        let groups = group_likers(&dataset);
        assert_eq!(
            groups[&Provider::Alms],
            BTreeSet::from([UserId(3)]),
            "liked both AL and MS"
        );
        assert_eq!(
            groups[&Provider::AuthenticLikes],
            BTreeSet::from([UserId(1), UserId(2)])
        );
        assert_eq!(
            groups[&Provider::MammothSocials],
            BTreeSet::from([UserId(4)])
        );
        assert_eq!(
            groups[&Provider::SocialFormula],
            BTreeSet::from([UserId(5)])
        );
        assert!(groups[&Provider::Facebook].is_empty());
    }

    #[test]
    fn same_provider_campaigns_union() {
        let dataset = Dataset {
            campaigns: vec![campaign("SF-ALL", &[1, 2]), campaign("SF-USA", &[2, 3])],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        };
        let groups = group_likers(&dataset);
        assert_eq!(groups[&Provider::SocialFormula].len(), 3, "union of 1,2,3");
    }
}
