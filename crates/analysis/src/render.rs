//! Plain-text rendering: aligned tables, bar rows, CDF sparklines, and
//! digit-shaded similarity matrices — the terminal equivalents of the
//! paper's tables and figures.

use std::fmt::Write as _;

/// Render an aligned ASCII table. The first row is the header.
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            let pad = w - cell.chars().count();
            // First column left-aligned, the rest right-aligned.
            if i == 0 {
                let _ = write!(out, "{cell}{}", " ".repeat(pad));
            } else {
                let _ = write!(out, "  {}{cell}", " ".repeat(pad));
            }
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
    }
    out
}

/// A horizontal percentage bar of the given width.
pub fn bar(fraction: f64, width: usize) -> String {
    let fraction = fraction.clamp(0.0, 1.0);
    let filled = (fraction * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

/// A one-line sparkline over a series (min–max normalized).
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * (TICKS.len() - 1) as f64).round() as usize;
            TICKS[idx.min(TICKS.len() - 1)]
        })
        .collect()
}

/// Render a similarity matrix (values 0–100) as a digit heat map: each cell
/// prints one character, `.` for ~0 up to `9`/`#` for the hottest.
pub fn matrix_heat(labels: &[String], matrix: &[Vec<f64>]) -> String {
    let mut out = String::new();
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    // Column header: first letter-pairs rotated would be unreadable; use
    // column indexes and a legend.
    let _ = write!(out, "{:label_w$}  ", "");
    for i in 0..labels.len() {
        let _ = write!(out, "{:>3}", i);
    }
    out.push('\n');
    for (i, row) in matrix.iter().enumerate() {
        let _ = write!(out, "{:label_w$}  ", labels[i]);
        for v in row {
            let c = match *v {
                v if v < 0.5 => '.',
                v if v >= 99.5 => '#',
                v => char::from_digit(((v / 100.0) * 10.0).min(9.0) as u32, 10).unwrap_or('?'),
            };
            let _ = write!(out, "{c:>3}");
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "legend: . <0.5   digit d = [d*10,(d+1)*10)%   # = 100%  (columns = row order)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(&[
            vec!["id".into(), "likes".into()],
            vec!["FB-USA".into(), "32".into()],
            vec!["AL-USA".into(), "1038".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4, "header + rule + 2 rows");
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numbers right-aligned: both rows end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].ends_with("1038"));
        assert!(lines[2].ends_with("  32"));
    }

    #[test]
    fn empty_table_is_empty() {
        assert_eq!(table(&[]), "");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0.0, 10), "..........");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(7.0, 4), "####", "clamped");
    }

    #[test]
    fn sparkline_shapes() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0]).chars().count(), 1);
    }

    #[test]
    fn matrix_heat_digits() {
        let labels = vec!["A".to_string(), "B".to_string()];
        let m = vec![vec![100.0, 35.0], vec![35.0, 0.0]];
        let h = matrix_heat(&labels, &m);
        assert!(h.contains('#'), "100% is #");
        assert!(h.contains('3'), "35% is 3");
        assert!(h.contains('.'), "0% is .");
    }
}
