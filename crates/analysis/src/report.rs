//! The assembled study report: every table and figure of the paper computed
//! from one dataset, plus plain-text rendering.

use crate::crawl::{crawl_section, CrawlSection};
use crate::demographics::{table2, DemographicsRow};
use crate::geo::{figure1, GeoRow};
use crate::pagelikes::{figure4, LikeCountCurve};
use crate::provider::Provider;
use crate::render;
use crate::similarity::{figure5_pages, figure5_users, SimilarityMatrix};
use crate::social::{ObservedSocial, SocialRow};
use crate::temporal::{figure2, TimeSeries};
use crate::termination::{termination_summary, TerminationSummary};
use likelab_honeypot::Dataset;
use likelab_sim::{parallel_jobs, Exec};
use serde::{Deserialize, Serialize};

/// One row of Table 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Row {
    /// Campaign label.
    pub label: String,
    /// Provider display name.
    pub provider: String,
    /// Targeted location.
    pub location: String,
    /// Budget string.
    pub budget: String,
    /// Advertised duration.
    pub duration: String,
    /// Days monitored (None for inactive campaigns).
    pub monitoring_days: Option<u64>,
    /// Likes garnered (None for inactive campaigns, rendered "-").
    pub likes: Option<usize>,
    /// Liker accounts terminated a month later.
    pub terminated: Option<usize>,
}

/// The full study report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StudyReport {
    /// Table 1 — campaign roster and outcomes.
    pub table1: Vec<Table1Row>,
    /// Table 2 — demographics and KL divergence.
    pub table2: Vec<DemographicsRow>,
    /// Table 3 — likers and friendships.
    pub table3: Vec<SocialRow>,
    /// Figure 1 — geolocation shares.
    pub figure1: Vec<GeoRow>,
    /// Figure 2 — cumulative like series.
    pub figure2: Vec<TimeSeries>,
    /// Figure 3 — DOT of the likers' friendship graph (direct relations).
    pub figure3_direct_dot: String,
    /// Figure 3(b) — DOT including 2-hop relations.
    pub figure3_twohop_dot: String,
    /// Figure 4 — page-like count CDFs.
    pub figure4: Vec<LikeCountCurve>,
    /// Figure 5(a) — page-like-set similarity.
    pub figure5_pages: SimilarityMatrix,
    /// Figure 5(b) — liker-set similarity.
    pub figure5_users: SimilarityMatrix,
    /// §5 — termination follow-up.
    pub termination: TerminationSummary,
    /// Crawl coverage: how much of the intended measurement landed.
    pub crawl: CrawlSection,
    /// Dataset-level totals (likes collected, friendships observed...).
    pub totals: Totals,
}

/// Headline dataset totals (the paper's §3 numbers).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Totals {
    /// Likes on honeypot pages, all campaigns.
    pub campaign_likes: usize,
    /// ... from farm campaigns.
    pub farm_likes: usize,
    /// ... from platform-ad campaigns.
    pub ad_likes: usize,
    /// Page likes observed on likers' public profiles (paper: 6.3M).
    pub observed_page_likes: usize,
    /// Friendship entries observed on likers' public lists (paper: 1M+).
    pub observed_friendships: usize,
}

/// One computed report section; the unit of parallelism in
/// [`StudyReport::compute_with`].
enum Section {
    Table1(Vec<Table1Row>),
    Table2(Vec<DemographicsRow>),
    Table3(Vec<SocialRow>),
    Figure1(Vec<GeoRow>),
    Figure2(Vec<TimeSeries>),
    Dot(String),
    Figure4(Vec<LikeCountCurve>),
    Similarity(SimilarityMatrix),
    Termination(TerminationSummary),
    Crawl(CrawlSection),
    Totals(Totals),
}

impl StudyReport {
    /// Compute everything from a dataset, fanning sections out across the
    /// available cores ([`Exec::auto`]). Output is bit-identical to
    /// [`StudyReport::compute_sequential`] — see [`compute_with`][Self::compute_with].
    pub fn compute(dataset: &Dataset) -> Self {
        Self::compute_with(dataset, Exec::auto())
    }

    /// Compute everything in the calling thread. The reference for the
    /// determinism tests.
    pub fn compute_sequential(dataset: &Dataset) -> Self {
        Self::compute_with(dataset, Exec::Sequential)
    }

    /// Compute everything from a dataset under an explicit execution policy.
    ///
    /// Every section (a table, a figure, the termination follow-up, the
    /// totals) is a pure function of `&Dataset` or of the shared
    /// [`ObservedSocial`] index, so sections run concurrently and are
    /// reassembled in declaration order: the result does not depend on
    /// `exec` in any way — only wall-clock time does.
    pub fn compute_with(dataset: &Dataset, exec: Exec) -> Self {
        likelab_obs::span!("report.compute");
        let social_index = {
            let _s = likelab_obs::span::enter("report.social_index");
            ObservedSocial::build(dataset)
        };
        let social = &social_index;
        type Job<'a> = Box<dyn Fn() -> Section + Send + Sync + 'a>;
        let named: Vec<(&'static str, Job<'_>)> = vec![
            (
                "table1",
                Box::new(|| Section::Table1(Self::table1(dataset))),
            ),
            ("table2", Box::new(|| Section::Table2(table2(dataset)))),
            ("table3", Box::new(|| Section::Table3(social.table3()))),
            ("figure1", Box::new(|| Section::Figure1(figure1(dataset)))),
            (
                "figure2",
                Box::new(|| Section::Figure2(figure2(dataset, 15))),
            ),
            (
                "figure3_direct",
                Box::new(|| Section::Dot(social.figure3_dot(false))),
            ),
            (
                "figure3_twohop",
                Box::new(|| Section::Dot(social.figure3_dot(true))),
            ),
            ("figure4", Box::new(|| Section::Figure4(figure4(dataset)))),
            (
                "figure5_pages",
                Box::new(|| Section::Similarity(figure5_pages(dataset))),
            ),
            (
                "figure5_users",
                Box::new(|| Section::Similarity(figure5_users(dataset))),
            ),
            (
                "termination",
                Box::new(|| Section::Termination(termination_summary(dataset))),
            ),
            ("crawl", Box::new(|| Section::Crawl(crawl_section(dataset)))),
            (
                "totals",
                Box::new(|| {
                    Section::Totals(Totals {
                        campaign_likes: dataset.total_likes(),
                        farm_likes: dataset.farm_likes(),
                        ad_likes: dataset.ad_likes(),
                        observed_page_likes: dataset.observed_page_likes(),
                        observed_friendships: dataset.observed_friendships(),
                    })
                }),
            ),
        ];
        // Label each section's wall time so `--timing` shows where report
        // time goes (`report.section.ns{section=...}` per the naming
        // conventions in OBSERVABILITY.md).
        let jobs: Vec<Job<'_>> = named
            .into_iter()
            .map(|(name, job)| -> Job<'_> {
                Box::new(move || {
                    if !likelab_obs::enabled() {
                        return job();
                    }
                    let start = likelab_obs::now_ns();
                    let section = job();
                    likelab_obs::metrics::record_ns(
                        &format!("report.section.ns{{section={name}}}"),
                        likelab_obs::now_ns().saturating_sub(start),
                    );
                    section
                })
            })
            .collect();
        let mut sections = parallel_jobs(exec, jobs).into_iter();

        // parallel_jobs preserves job order, so sections come back in the
        // exact sequence they were declared above.
        macro_rules! take {
            ($variant:ident) => {
                match sections.next() {
                    Some(Section::$variant(v)) => v,
                    _ => unreachable!("sections arrive in declaration order"),
                }
            };
        }

        StudyReport {
            table1: take!(Table1),
            table2: take!(Table2),
            table3: take!(Table3),
            figure1: take!(Figure1),
            figure2: take!(Figure2),
            figure3_direct_dot: take!(Dot),
            figure3_twohop_dot: take!(Dot),
            figure4: take!(Figure4),
            figure5_pages: take!(Similarity),
            figure5_users: take!(Similarity),
            termination: take!(Termination),
            crawl: take!(Crawl),
            totals: take!(Totals),
        }
    }

    /// Table 1 — the campaign roster, straight off the dataset.
    fn table1(dataset: &Dataset) -> Vec<Table1Row> {
        dataset
            .campaigns
            .iter()
            .map(|c| Table1Row {
                label: c.spec.label.clone(),
                provider: Provider::of_label(&c.spec.label)
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "?".into()),
                location: c.spec.location(),
                budget: c.spec.budget(),
                duration: c.spec.duration(),
                monitoring_days: c.monitoring_days,
                likes: (!c.inactive).then(|| c.like_count()),
                terminated: (!c.inactive).then_some(c.terminated_after_month),
            })
            .collect()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Render every table and figure as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Table 1: campaigns ==\n");
        let mut rows = vec![vec![
            "Campaign".to_string(),
            "Provider".to_string(),
            "Location".to_string(),
            "Budget".to_string(),
            "Duration".to_string(),
            "Monitoring".to_string(),
            "#Likes".to_string(),
            "#Terminated".to_string(),
        ]];
        for r in &self.table1 {
            rows.push(vec![
                r.label.clone(),
                r.provider.clone(),
                r.location.clone(),
                r.budget.clone(),
                r.duration.clone(),
                r.monitoring_days
                    .map(|d| format!("{d} days"))
                    .unwrap_or_else(|| "-".into()),
                r.likes.map(|l| l.to_string()).unwrap_or_else(|| "-".into()),
                r.terminated
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        out.push_str(&render::table(&rows));

        out.push_str("\n== Table 2: gender and age of likers ==\n");
        let mut rows = vec![vec![
            "Campaign".to_string(),
            "%F/%M".to_string(),
            "13-17".to_string(),
            "18-24".to_string(),
            "25-34".to_string(),
            "35-44".to_string(),
            "45-54".to_string(),
            "55+".to_string(),
            "KL".to_string(),
        ]];
        for r in &self.table2 {
            let mut row = vec![
                r.label.clone(),
                format!("{:.0}/{:.0}", r.female_pct, r.male_pct),
            ];
            row.extend(r.age_pct.iter().map(|a| format!("{a:.1}")));
            row.push(
                r.kl.map(|k| format!("{k:.2}"))
                    .unwrap_or_else(|| "-".into()),
            );
            rows.push(row);
        }
        out.push_str(&render::table(&rows));

        out.push_str("\n== Table 3: likers and friendships ==\n");
        let mut rows = vec![vec![
            "Provider".to_string(),
            "#Likers".to_string(),
            "Public FL".to_string(),
            "Avg#Fr".to_string(),
            "±Std".to_string(),
            "Med#Fr".to_string(),
            "#Friendships".to_string(),
            "#2-Hop".to_string(),
        ]];
        for r in &self.table3 {
            rows.push(vec![
                r.provider.to_string(),
                r.likers.to_string(),
                format!("{} ({:.1}%)", r.public_friend_lists, r.public_pct()),
                format!("{:.0}", r.friends.mean),
                format!("{:.0}", r.friends.std_dev),
                format!("{:.0}", r.friends.median),
                r.friendships_between_likers.to_string(),
                r.two_hop_between_likers.to_string(),
            ]);
        }
        out.push_str(&render::table(&rows));

        out.push_str("\n== Figure 1: liker geolocation (% per campaign) ==\n");
        let mut rows = vec![vec![
            "Campaign".to_string(),
            "USA".to_string(),
            "India".to_string(),
            "Egypt".to_string(),
            "Turkey".to_string(),
            "France".to_string(),
            "Other".to_string(),
        ]];
        for r in &self.figure1 {
            let mut row = vec![r.label.clone()];
            row.extend(r.shares.iter().map(|s| format!("{:.1}", s * 100.0)));
            rows.push(row);
        }
        out.push_str(&render::table(&rows));

        out.push_str("\n== Figure 2: cumulative likes per day (sparklines, day 0-15) ==\n");
        for s in &self.figure2 {
            let values: Vec<f64> = s.daily.iter().map(|(_, n)| *n as f64).collect();
            out.push_str(&format!(
                "{:8} {} total={:5} peak2h={:4.0}% t90={:4.1}d\n",
                s.label,
                render::sparkline(&values),
                s.total(),
                s.peak_2h_share * 100.0,
                s.days_to_90pct,
            ));
        }

        out.push_str("\n== Figure 4: page-like medians ==\n");
        let mut rows = vec![vec!["Curve".to_string(), "Median #likes".to_string()]];
        for c in &self.figure4 {
            let m = c.median();
            rows.push(vec![
                c.label.clone(),
                if m.is_nan() {
                    "-".into()
                } else {
                    format!("{m:.0}")
                },
            ]);
        }
        out.push_str(&render::table(&rows));

        out.push_str("\n== Figure 5(a): page-like set similarity (Jaccard x100) ==\n");
        out.push_str(&render::matrix_heat(
            &self.figure5_pages.labels,
            &self.figure5_pages.matrix,
        ));
        out.push_str("\n== Figure 5(b): liker set similarity (Jaccard x100) ==\n");
        out.push_str(&render::matrix_heat(
            &self.figure5_users.labels,
            &self.figure5_users.matrix,
        ));

        out.push_str("\n== Termination (month later) ==\n");
        for (p, n) in &self.termination.by_provider {
            out.push_str(&format!("{p}: {n}\n"));
        }
        if self.termination.unknown_total > 0 {
            out.push_str(&format!(
                "unresolved probes (no answer, not counted as alive): {}\n",
                self.termination.unknown_total
            ));
        }

        out.push_str("\n== Crawl coverage ==\n");
        let mut rows = vec![vec![
            "Campaign".to_string(),
            "Polls".to_string(),
            "Failed".to_string(),
            "Throttled".to_string(),
            "Outage".to_string(),
            "Trips".to_string(),
            "Profiles ok/gone/gave-up".to_string(),
            "Coverage".to_string(),
        ]];
        for r in &self.crawl.per_campaign {
            rows.push(vec![
                r.label.clone(),
                r.coverage.polls.to_string(),
                r.coverage.failed_polls.to_string(),
                r.coverage.rate_limited_polls.to_string(),
                r.coverage.outage_polls.to_string(),
                r.coverage.circuit_trips.to_string(),
                format!(
                    "{}/{}/{}",
                    r.coverage.profiles_complete,
                    r.coverage.profiles_gone,
                    r.coverage.profiles_gave_up
                ),
                format!("{:.1}%", r.profile_coverage * 100.0),
            ]);
        }
        out.push_str(&render::table(&rows));
        out.push_str(&format!(
            "poll success {:.1}%, profile coverage {:.1}% overall\n",
            self.crawl.poll_success_rate * 100.0,
            self.crawl.profile_coverage * 100.0,
        ));

        out.push_str(&format!(
            "\nTotals: {} campaign likes ({} farm / {} ads); {} page likes and {} friendships observed on liker profiles\n",
            self.totals.campaign_likes,
            self.totals.farm_likes,
            self.totals.ad_likes,
            self.totals.observed_page_likes,
            self.totals.observed_friendships,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_osn::AudienceReport;
    use likelab_sim::SimTime;

    fn empty_dataset() -> Dataset {
        Dataset {
            campaigns: vec![],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        }
    }

    #[test]
    fn empty_dataset_still_renders() {
        let r = StudyReport::compute(&empty_dataset());
        let text = r.render();
        assert!(text.contains("Table 1"));
        assert!(text.contains("Table 3"));
        assert!(text.contains("Figure 5"));
        assert_eq!(r.totals.campaign_likes, 0);
    }

    #[test]
    fn json_serializes() {
        let r = StudyReport::compute(&empty_dataset());
        let json = r.to_json().unwrap();
        assert!(json.contains("table1"));
        assert!(json.contains("figure5_users"));
    }
}
