//! Figure 5 — Jaccard similarity matrices across campaigns.
//!
//! (a) over the unions of the likers' page-like sets, (b) over the liker
//! sets themselves. The bright cells are the paper's fingerprinting
//! evidence: FB-IND/FB-EGY/FB-ALL resemble each other, SF-ALL↔SF-USA share
//! accounts, and AL-USA↔MS-USA share an operator.

use crate::stats::jaccard;
use likelab_graph::{PageId, UserId};
use likelab_honeypot::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A labelled symmetric similarity matrix (values ×100, like the paper's
/// color scale).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimilarityMatrix {
    /// Campaign labels, in dataset order (inactive campaigns included, with
    /// all-zero rows — the paper plots them too).
    pub labels: Vec<String>,
    /// `matrix[i][j]` = Jaccard(i, j) × 100.
    pub matrix: Vec<Vec<f64>>,
}

impl SimilarityMatrix {
    /// Look up a cell by labels.
    ///
    /// # Panics
    /// Panics on an unknown label.
    pub fn get(&self, a: &str, b: &str) -> f64 {
        let i = self.index_of(a);
        let j = self.index_of(b);
        self.matrix[i][j]
    }

    fn index_of(&self, label: &str) -> usize {
        self.labels
            .iter()
            .position(|l| l == label)
            .unwrap_or_else(|| panic!("unknown campaign label {label}"))
    }
}

fn build_matrix<T: Eq + std::hash::Hash>(
    labels: Vec<String>,
    sets: Vec<HashSet<T>>,
) -> SimilarityMatrix {
    let n = sets.len();
    let mut matrix = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i..n {
            let v = jaccard(&sets[i], &sets[j]) * 100.0;
            matrix[i][j] = v;
            matrix[j][i] = v;
        }
    }
    SimilarityMatrix { labels, matrix }
}

/// Figure 5(a): Jaccard over the unions of likers' public page-like sets.
pub fn figure5_pages(dataset: &Dataset) -> SimilarityMatrix {
    let labels: Vec<String> = dataset
        .campaigns
        .iter()
        .map(|c| c.spec.label.clone())
        .collect();
    let sets: Vec<HashSet<PageId>> = dataset
        .campaigns
        .iter()
        .map(|c| {
            c.likers
                .iter()
                .filter_map(|l| l.liked_pages.as_ref())
                .flatten()
                .copied()
                .collect()
        })
        .collect();
    build_matrix(labels, sets)
}

/// Figure 5(b): Jaccard over the liker sets.
pub fn figure5_users(dataset: &Dataset) -> SimilarityMatrix {
    let labels: Vec<String> = dataset
        .campaigns
        .iter()
        .map(|c| c.spec.label.clone())
        .collect();
    let sets: Vec<HashSet<UserId>> = dataset
        .campaigns
        .iter()
        .map(|c| c.liker_ids().into_iter().collect())
        .collect();
    build_matrix(labels, sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_farms::Region;
    use likelab_honeypot::{CampaignData, CampaignSpec, LikerRecord, Promotion};
    use likelab_osn::AudienceReport;
    use likelab_sim::SimTime;

    fn liker(id: u32, pages: Vec<u32>) -> LikerRecord {
        LikerRecord {
            user: UserId(id),
            first_seen: SimTime::EPOCH,
            friends: None,
            total_friend_count: None,
            liked_pages: Some(pages.into_iter().map(PageId).collect()),
            gone_at_collection: false,
            crawl_outcome: likelab_honeypot::CrawlOutcome::Complete,
        }
    }

    fn campaign(label: &str, likers: Vec<LikerRecord>, inactive: bool) -> CampaignData {
        CampaignData {
            spec: CampaignSpec {
                label: label.into(),
                promotion: Promotion::FarmOrder {
                    farm: 0,
                    region: Region::Worldwide,
                    likes: 0,
                    price_cents: 0,
                    advertised_duration: String::new(),
                },
            },
            page: PageId(999),
            observations: vec![],
            likers,
            report: AudienceReport::default(),
            monitoring_days: None,
            terminated_after_month: 0,
            termination_unknown: 0,
            inactive,
            coverage: likelab_honeypot::CrawlCoverage::default(),
        }
    }

    fn dataset() -> Dataset {
        Dataset {
            campaigns: vec![
                // SF-ALL and SF-USA share user 1 and pages {1,2}.
                campaign(
                    "SF-ALL",
                    vec![liker(1, vec![1, 2]), liker(2, vec![3])],
                    false,
                ),
                campaign("SF-USA", vec![liker(1, vec![1, 2])], false),
                campaign("BL-ALL", vec![], true),
                campaign("AL-ALL", vec![liker(9, vec![50])], false),
            ],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        }
    }

    #[test]
    fn user_matrix_captures_shared_accounts() {
        let m = figure5_users(&dataset());
        assert!((m.get("SF-ALL", "SF-USA") - 50.0).abs() < 1e-9, "1 of 2");
        assert_eq!(m.get("SF-ALL", "AL-ALL"), 0.0);
        assert!((m.get("SF-ALL", "SF-ALL") - 100.0).abs() < 1e-9);
    }

    #[test]
    fn page_matrix_captures_shared_histories() {
        let m = figure5_pages(&dataset());
        // SF-ALL pages {1,2,3}; SF-USA pages {1,2} → 2/3.
        assert!((m.get("SF-ALL", "SF-USA") - 200.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.get("SF-USA", "AL-ALL"), 0.0);
    }

    #[test]
    fn inactive_campaigns_have_zero_rows() {
        let m = figure5_users(&dataset());
        for other in ["SF-ALL", "SF-USA", "AL-ALL"] {
            assert_eq!(m.get("BL-ALL", other), 0.0);
        }
        assert_eq!(m.get("BL-ALL", "BL-ALL"), 0.0, "empty-empty is 0");
    }

    #[test]
    fn matrix_is_symmetric() {
        let m = figure5_pages(&dataset());
        for i in 0..m.labels.len() {
            for j in 0..m.labels.len() {
                assert_eq!(m.matrix[i][j], m.matrix[j][i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown campaign label")]
    fn unknown_label_panics() {
        figure5_users(&dataset()).get("ZZ-TOP", "SF-ALL");
    }
}
