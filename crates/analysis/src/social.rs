//! Table 3 and Figure 3 — the social structure of the likers.
//!
//! Everything here is computed from what the crawler could *see*: public
//! friend lists only. Direct friendships between likers require one visible
//! list naming the other liker; 2-hop relations (a shared mutual friend)
//! require both likers' lists visible — the paper's caveat that "these
//! numbers only represent a lower bound" falls out of the method.

use crate::provider::{group_likers, Provider};
use crate::stats::SummaryStats;
use likelab_graph::{components::ComponentCensus, FriendGraph, UserId};
use likelab_honeypot::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One row of Table 3.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SocialRow {
    /// Provider group.
    pub provider: Provider,
    /// Distinct likers in the group.
    pub likers: usize,
    /// Likers with a public friend list.
    pub public_friend_lists: usize,
    /// Friend-count statistics over the public profiles.
    pub friends: SummaryStats,
    /// Direct friendships between likers involving this group.
    pub friendships_between_likers: usize,
    /// 2-hop (mutual-friend) relations between likers involving this group,
    /// excluding direct friendships.
    pub two_hop_between_likers: usize,
}

impl SocialRow {
    /// Percent of likers with public friend lists.
    pub fn public_pct(&self) -> f64 {
        if self.likers == 0 {
            0.0
        } else {
            self.public_friend_lists as f64 / self.likers as f64 * 100.0
        }
    }
}

/// The observed (crawl-derived) social structure of all likers.
#[derive(Clone, Debug, Default)]
pub struct ObservedSocial {
    /// Every liker.
    pub likers: BTreeSet<UserId>,
    /// Provider group membership.
    pub groups: BTreeMap<Provider, BTreeSet<UserId>>,
    /// Public friend lists (only likers with visible lists appear).
    pub friend_lists: BTreeMap<UserId, Vec<UserId>>,
    /// Reported total friend counts (public profiles only).
    pub friend_counts: BTreeMap<UserId, usize>,
    /// Direct liker–liker friendships, as ordered pairs `(a < b)`.
    pub direct_pairs: BTreeSet<(UserId, UserId)>,
    /// 2-hop liker pairs (shared mutual friend, not direct), `(a < b)`.
    pub two_hop_pairs: BTreeSet<(UserId, UserId)>,
}

impl ObservedSocial {
    /// Build from the dataset.
    pub fn build(dataset: &Dataset) -> Self {
        let groups = group_likers(dataset);
        let mut obs = ObservedSocial {
            groups,
            ..ObservedSocial::default()
        };
        for c in &dataset.campaigns {
            for l in &c.likers {
                obs.likers.insert(l.user);
                if let Some(fs) = &l.friends {
                    obs.friend_lists.entry(l.user).or_insert_with(|| fs.clone());
                }
                if let Some(n) = l.total_friend_count {
                    obs.friend_counts.entry(l.user).or_insert(n);
                }
            }
        }
        // Direct pairs: a visible list naming another liker.
        for (u, friends) in &obs.friend_lists {
            for f in friends {
                if *f != *u && obs.likers.contains(f) {
                    let pair = if *u < *f { (*u, *f) } else { (*f, *u) };
                    obs.direct_pairs.insert(pair);
                }
            }
        }
        // 2-hop pairs: both lists visible, sharing any mutual friend.
        let mut via: BTreeMap<UserId, Vec<UserId>> = BTreeMap::new();
        for (u, friends) in &obs.friend_lists {
            for f in friends {
                via.entry(*f).or_default().push(*u);
            }
        }
        for likers in via.values() {
            if likers.len() < 2 {
                continue;
            }
            for i in 0..likers.len() {
                for j in (i + 1)..likers.len() {
                    let (a, b) = if likers[i] < likers[j] {
                        (likers[i], likers[j])
                    } else if likers[j] < likers[i] {
                        (likers[j], likers[i])
                    } else {
                        continue;
                    };
                    if !obs.direct_pairs.contains(&(a, b)) {
                        obs.two_hop_pairs.insert((a, b));
                    }
                }
            }
        }
        obs
    }

    /// The Table 3 group of a liker (ALMS wins; then Table 3 order).
    pub fn group_of(&self, u: UserId) -> Option<Provider> {
        if self
            .groups
            .get(&Provider::Alms)
            .is_some_and(|g| g.contains(&u))
        {
            return Some(Provider::Alms);
        }
        Provider::ALL
            .iter()
            .copied()
            .find(|p| self.groups.get(p).is_some_and(|g| g.contains(&u)))
    }

    fn pairs_involving<'a>(
        pairs: &'a BTreeSet<(UserId, UserId)>,
        group: &'a BTreeSet<UserId>,
    ) -> impl Iterator<Item = &'a (UserId, UserId)> + 'a {
        pairs
            .iter()
            .filter(move |(a, b)| group.contains(a) || group.contains(b))
    }

    /// Compute Table 3, one row per provider in Table 3 order.
    pub fn table3(&self) -> Vec<SocialRow> {
        Provider::ALL
            .iter()
            .map(|p| {
                let group = self.groups.get(p).cloned().unwrap_or_default();
                let counts: Vec<f64> = group
                    .iter()
                    .filter_map(|u| self.friend_counts.get(u).map(|n| *n as f64))
                    .collect();
                SocialRow {
                    provider: *p,
                    likers: group.len(),
                    public_friend_lists: group
                        .iter()
                        .filter(|u| self.friend_lists.contains_key(u))
                        .count(),
                    friends: SummaryStats::of(&counts),
                    friendships_between_likers: Self::pairs_involving(&self.direct_pairs, &group)
                        .count(),
                    two_hop_between_likers: Self::pairs_involving(&self.two_hop_pairs, &group)
                        .count(),
                }
            })
            .collect()
    }

    /// Direct pairs with both endpoints inside one group (the induced
    /// structure Figure 3 draws per color).
    pub fn in_group_pairs(&self, p: Provider) -> Vec<(UserId, UserId)> {
        let group = self.groups.get(&p).cloned().unwrap_or_default();
        self.direct_pairs
            .iter()
            .filter(|(a, b)| group.contains(a) && group.contains(b))
            .copied()
            .collect()
    }

    /// Direct pairs bridging two groups — the AL↔MS cross edges that point
    /// at a shared operator.
    pub fn cross_group_pairs(&self, a: Provider, b: Provider) -> Vec<(UserId, UserId)> {
        let ga = self.groups.get(&a).cloned().unwrap_or_default();
        let gb = self.groups.get(&b).cloned().unwrap_or_default();
        self.direct_pairs
            .iter()
            .filter(|(x, y)| {
                (ga.contains(x) && gb.contains(y)) || (gb.contains(x) && ga.contains(y))
            })
            .copied()
            .collect()
    }

    /// Component census of one group's induced direct-friendship graph —
    /// the numeric content of Figure 3(a): BoostLikes shows a giant blob,
    /// SocialFormula pairs and triplets.
    pub fn group_census(&self, p: Provider) -> ComponentCensus {
        let group: Vec<UserId> = self
            .groups
            .get(&p)
            .map(|g| g.iter().copied().collect())
            .unwrap_or_default();
        let graph = self.as_friend_graph();
        ComponentCensus::compute(&graph, &group)
    }

    /// One past the highest liker id — the node span of the liker graphs.
    fn node_span(&self) -> usize {
        self.likers
            .iter()
            .map(|u| u.0)
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0)
    }

    /// The observed liker–liker graph as a [`FriendGraph`] (for DOT export
    /// and component analysis). Nodes are original user ids. Built in one
    /// bulk pass: liker ids sit anywhere in the account id space, so the
    /// incremental `add_edge` path would pay `O(accounts)` compaction sweeps
    /// for a few thousand edges.
    pub fn as_friend_graph(&self) -> FriendGraph {
        FriendGraph::from_pairs(self.node_span(), self.direct_pairs.iter().copied())
    }

    /// Figure 3 as Graphviz DOT (`two_hop` adds the mutual-friend pairs as
    /// edges, Figure 3(b)).
    pub fn figure3_dot(&self, two_hop: bool) -> String {
        let members: Vec<UserId> = self.likers.iter().copied().collect();
        let groups: HashMap<UserId, String> = {
            let _s = likelab_obs::span::enter("social.figure3.groups");
            members
                .iter()
                .filter_map(|u| self.group_of(*u).map(|p| (*u, p.to_string())))
                .collect()
        };
        let graph = {
            let _s = likelab_obs::span::enter("social.figure3.graph");
            let direct = self.direct_pairs.iter().copied();
            if two_hop {
                // 2-hop pairs exclude direct ones, so chaining stays a set.
                FriendGraph::from_pairs(
                    self.node_span(),
                    direct.chain(self.two_hop_pairs.iter().copied()),
                )
            } else {
                self.as_friend_graph()
            }
        };
        let _s = likelab_obs::span::enter("social.figure3.dot");
        likelab_graph::dot::induced_dot(&graph, &members, &groups, true)
    }
}

/// Convenience: build and compute Table 3 in one call.
pub fn table3(dataset: &Dataset) -> Vec<SocialRow> {
    ObservedSocial::build(dataset).table3()
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_farms::Region;
    use likelab_honeypot::{CampaignData, CampaignSpec, LikerRecord, Promotion};
    use likelab_osn::AudienceReport;
    use likelab_sim::SimTime;

    fn liker(id: u32, friends: Option<Vec<u32>>) -> LikerRecord {
        LikerRecord {
            user: UserId(id),
            first_seen: SimTime::EPOCH,
            total_friend_count: friends.as_ref().map(|f| f.len() + 100),
            friends: friends.map(|f| f.into_iter().map(UserId).collect()),
            liked_pages: None,
            gone_at_collection: false,
            crawl_outcome: likelab_honeypot::CrawlOutcome::Complete,
        }
    }

    fn campaign(label: &str, likers: Vec<LikerRecord>) -> CampaignData {
        CampaignData {
            spec: CampaignSpec {
                label: label.into(),
                promotion: Promotion::FarmOrder {
                    farm: 0,
                    region: Region::Worldwide,
                    likes: 0,
                    price_cents: 0,
                    advertised_duration: String::new(),
                },
            },
            page: likelab_graph::PageId(0),
            observations: vec![],
            likers,
            report: AudienceReport::default(),
            monitoring_days: None,
            terminated_after_month: 0,
            termination_unknown: 0,
            inactive: false,
            coverage: likelab_honeypot::CrawlCoverage::default(),
        }
    }

    fn dataset(campaigns: Vec<CampaignData>) -> Dataset {
        Dataset {
            campaigns,
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        }
    }

    /// BL likers 1,2,3 form a triangle (public lists); SF likers 10,11 are
    /// a pair; SF 12 is private; 1 and 10 share mutual friend 99 (not a
    /// liker).
    fn scenario() -> Dataset {
        dataset(vec![
            campaign(
                "BL-USA",
                vec![
                    liker(1, Some(vec![2, 3, 99])),
                    liker(2, Some(vec![1, 3])),
                    liker(3, Some(vec![1, 2])),
                ],
            ),
            campaign(
                "SF-ALL",
                vec![
                    liker(10, Some(vec![11, 99])),
                    liker(11, Some(vec![10])),
                    liker(12, None),
                ],
            ),
        ])
    }

    #[test]
    fn direct_pairs_require_visibility_on_either_end() {
        let obs = ObservedSocial::build(&scenario());
        assert_eq!(obs.direct_pairs.len(), 4); // triangle + SF pair
        assert!(obs.direct_pairs.contains(&(UserId(1), UserId(2))));
        assert!(obs.direct_pairs.contains(&(UserId(10), UserId(11))));
    }

    #[test]
    fn two_hop_found_via_outside_mutual() {
        let obs = ObservedSocial::build(&scenario());
        // 1 and 10 both list 99: a cross-provider 2-hop pair.
        assert!(obs.two_hop_pairs.contains(&(UserId(1), UserId(10))));
        // 2 and 3 are direct friends, so their shared mutual (1) doesn't
        // create a 2-hop pair.
        assert!(!obs.two_hop_pairs.contains(&(UserId(2), UserId(3))));
    }

    #[test]
    fn table3_rows_count_correctly() {
        let rows = table3(&scenario());
        let bl = rows
            .iter()
            .find(|r| r.provider == Provider::BoostLikes)
            .unwrap();
        assert_eq!(bl.likers, 3);
        assert_eq!(bl.public_friend_lists, 3);
        assert!((bl.public_pct() - 100.0).abs() < 1e-9);
        assert_eq!(bl.friendships_between_likers, 3, "the triangle");
        // Friend counts: 103, 102, 102 (len + 100).
        assert!((bl.friends.median - 102.0).abs() < 1e-9);
        let sf = rows
            .iter()
            .find(|r| r.provider == Provider::SocialFormula)
            .unwrap();
        assert_eq!(sf.likers, 3);
        assert_eq!(sf.public_friend_lists, 2);
        assert_eq!(sf.friendships_between_likers, 1);
        assert_eq!(sf.two_hop_between_likers, 1, "1–10 involves SF");
        let fb = rows
            .iter()
            .find(|r| r.provider == Provider::Facebook)
            .unwrap();
        assert_eq!(fb.likers, 0);
        assert_eq!(fb.friends.n, 0);
    }

    #[test]
    fn group_census_separates_blob_from_pairs() {
        let obs = ObservedSocial::build(&scenario());
        let bl = obs.group_census(Provider::BoostLikes);
        assert_eq!(bl.giant_size, 3);
        assert_eq!(bl.larger + bl.triplets, 1);
        let sf = obs.group_census(Provider::SocialFormula);
        assert_eq!(sf.pairs, 1);
        assert_eq!(sf.singletons, 1, "the private liker shows isolated");
    }

    #[test]
    fn alms_cross_edges_detect_shared_operator() {
        // AL liker 1 and MS liker 2 are friends; liker 3 liked both.
        let d = dataset(vec![
            campaign("AL-USA", vec![liker(1, Some(vec![2])), liker(3, None)]),
            campaign("MS-USA", vec![liker(2, Some(vec![1])), liker(3, None)]),
        ]);
        let obs = ObservedSocial::build(&d);
        assert_eq!(obs.group_of(UserId(3)), Some(Provider::Alms));
        let cross = obs.cross_group_pairs(Provider::AuthenticLikes, Provider::MammothSocials);
        assert_eq!(cross, vec![(UserId(1), UserId(2))]);
    }

    #[test]
    fn dot_export_contains_colored_groups() {
        let obs = ObservedSocial::build(&scenario());
        let dot = obs.figure3_dot(false);
        assert!(dot.contains("graph likers"));
        assert!(dot.contains("\"u1\" -- \"u2\""));
        // Isolated private SF liker is dropped, like the paper's figure.
        assert!(!dot.contains("\"u12\""));
        let dot2 = obs.figure3_dot(true);
        assert!(dot2.contains("\"u1\" -- \"u10\""), "2-hop edge appears");
    }

    #[test]
    fn empty_dataset_is_all_zero() {
        let rows = table3(&dataset(vec![]));
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.likers == 0));
    }
}
