//! Statistical primitives the analyses share: KL divergence (Table 2),
//! Jaccard similarity (Figure 5), empirical CDFs (Figure 4), and summary
//! statistics (Table 3).

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::hash::Hash;

pub use likelab_graph::metrics::SummaryStats;

/// Kullback–Leibler divergence `KL(p ‖ q)` in **bits**, with ε-smoothing so
/// empty buckets don't blow up.
///
/// Bits, not nats: recomputing the paper's own Table 2 rows shows its KL
/// column is base-2 (e.g. the published BL-USA age row against the global
/// row gives 0.59 bits — the paper prints 0.60 — while the nat value would
/// be 0.41). Using bits makes our measured column directly comparable.
///
/// # Panics
/// Panics when the distributions differ in length or are empty.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must align");
    assert!(!p.is_empty(), "empty distributions");
    const EPS: f64 = 1e-9;
    let ps: f64 = p.iter().sum::<f64>() + EPS * p.len() as f64;
    let qs: f64 = q.iter().sum::<f64>() + EPS * q.len() as f64;
    p.iter()
        .zip(q)
        .map(|(pi, qi)| {
            let pn = (pi + EPS) / ps;
            let qn = (qi + EPS) / qs;
            pn * (pn / qn).log2()
        })
        .sum()
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|`; 0 when both sets are empty
/// (matching the zero rows the paper's Figure 5 shows for the inactive
/// campaigns).
pub fn jaccard<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// An empirical CDF over `f64` samples.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (order irrelevant).
    ///
    /// # Panics
    /// Panics on non-finite samples.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|s| s.is_finite()),
            "CDF samples must be finite"
        );
        samples.sort_by(f64::total_cmp);
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when built from no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`; 0 for an empty CDF.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), by lower interpolation; NaN for empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).floor() as usize;
        self.sorted[idx]
    }

    /// The median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Evaluate the CDF on a grid of `points` x-values spanning
    /// `[0, max]` — the plotted series of Figure 4.
    pub fn series(&self, max: f64, points: usize) -> Vec<(f64, f64)> {
        let points = points.max(2);
        (0..points)
            .map(|i| {
                let x = max * i as f64 / (points - 1) as f64;
                (x, self.fraction_at(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-9);
    }

    #[test]
    fn kl_is_positive_and_asymmetric() {
        let p = [0.9, 0.05, 0.05];
        let q = [0.2, 0.4, 0.4];
        let pq = kl_divergence(&p, &q);
        let qp = kl_divergence(&q, &p);
        assert!(pq > 0.5, "divergent distributions: {pq}");
        assert!((pq - qp).abs() > 1e-3, "KL is not symmetric");
    }

    #[test]
    fn kl_survives_zero_buckets() {
        let p = [1.0, 0.0];
        let q = [0.5, 0.5];
        let v = kl_divergence(&p, &q);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn kl_matches_known_value() {
        // KL([.5,.5] || [.9,.1]) = .5 log2(.5/.9) + .5 log2(.5/.1) ≈ 0.7370
        let v = kl_divergence(&[0.5, 0.5], &[0.9, 0.1]);
        assert!((v - 0.7370).abs() < 1e-3, "{v}");
    }

    #[test]
    fn kl_reproduces_the_papers_bl_usa_cell() {
        // Published BL-USA age row vs the published global row: the paper
        // prints KL = 0.60, which only comes out in bits.
        let bl = [0.342, 0.545, 0.088, 0.015, 0.007, 0.005];
        let global = [0.149, 0.323, 0.266, 0.132, 0.072, 0.059];
        let v = kl_divergence(&bl, &global);
        assert!((v - 0.60).abs() < 0.02, "{v}");
    }

    #[test]
    #[should_panic(expected = "align")]
    fn kl_rejects_mismatched_lengths() {
        kl_divergence(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn jaccard_basics() {
        let a: HashSet<u32> = [1, 2, 3].into();
        let b: HashSet<u32> = [2, 3, 4].into();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        let empty: HashSet<u32> = HashSet::new();
        assert_eq!(jaccard(&a, &empty), 0.0);
        assert_eq!(jaccard(&empty, &empty), 0.0, "both-empty is 0, not NaN");
    }

    #[test]
    fn cdf_fractions_and_quantiles() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert!((c.fraction_at(0.5) - 0.0).abs() < 1e-12);
        assert!((c.fraction_at(2.0) - 0.5).abs() < 1e-12);
        assert!((c.fraction_at(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(c.median(), 2.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 4.0);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let c = Cdf::new((1..=100).map(f64::from).collect());
        let s = c.series(100.0, 20);
        assert_eq!(s.len(), 20);
        assert!(s.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!((s.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_is_graceful() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_at(5.0), 0.0);
        assert!(c.median().is_nan());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn cdf_rejects_nan() {
        Cdf::new(vec![f64::NAN]);
    }
}
