//! SVG rendering of the paper's figures — dependency-free emitters for the
//! four plot shapes the evaluation uses: stacked bars (Figure 1), cumulative
//! line series (Figure 2), CDFs (Figure 4), and matrix heat maps (Figure 5).
//! Figure 3's graph drawing is exported as DOT by [`crate::social`].
//!
//! The emitters take the same data structures the analyses produce, so
//! `full_study` can drop real figure files next to the JSON exports.

use crate::geo::GeoRow;
use crate::pagelikes::LikeCountCurve;
use crate::similarity::SimilarityMatrix;
use crate::temporal::TimeSeries;
use std::fmt::Write as _;

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 420.0;
const MARGIN: f64 = 55.0;
/// A color-blind-safe categorical palette.
const PALETTE: [&str; 8] = [
    "#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2", "#b279a2", "#9d755d", "#bab0ac",
];

fn header(title: &str) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
         viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"sans-serif\" font-size=\"11\">\n\
         <rect width=\"{WIDTH}\" height=\"{HEIGHT}\" fill=\"white\"/>\n\
         <text x=\"{x}\" y=\"20\" text-anchor=\"middle\" font-size=\"14\">{title}</text>\n",
        x = WIDTH / 2.0,
    )
}

fn axes(x_label: &str, y_label: &str) -> String {
    let x0 = MARGIN;
    let y0 = HEIGHT - MARGIN;
    let x1 = WIDTH - MARGIN;
    let y1 = MARGIN;
    format!(
        "<line x1=\"{x0}\" y1=\"{y0}\" x2=\"{x1}\" y2=\"{y0}\" stroke=\"black\"/>\n\
         <line x1=\"{x0}\" y1=\"{y0}\" x2=\"{x0}\" y2=\"{y1}\" stroke=\"black\"/>\n\
         <text x=\"{xm}\" y=\"{yb}\" text-anchor=\"middle\">{x_label}</text>\n\
         <text x=\"16\" y=\"{ym}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {ym})\">{y_label}</text>\n",
        xm = (x0 + x1) / 2.0,
        yb = HEIGHT - 12.0,
        ym = (y0 + y1) / 2.0,
    )
}

fn scale_x(v: f64, max: f64) -> f64 {
    MARGIN + (v / max.max(1e-12)) * (WIDTH - 2.0 * MARGIN)
}

fn scale_y(v: f64, max: f64) -> f64 {
    (HEIGHT - MARGIN) - (v / max.max(1e-12)) * (HEIGHT - 2.0 * MARGIN)
}

fn legend(labels: &[&str]) -> String {
    let mut out = String::new();
    for (i, label) in labels.iter().enumerate() {
        let y = MARGIN + 14.0 * i as f64;
        let color = PALETTE[i % PALETTE.len()];
        let _ = writeln!(
            out,
            "<rect x=\"{x}\" y=\"{ry}\" width=\"10\" height=\"10\" fill=\"{color}\"/>\
             <text x=\"{tx}\" y=\"{ty}\">{label}</text>",
            x = WIDTH - MARGIN + 6.0,
            ry = y - 9.0,
            tx = WIDTH - MARGIN + 20.0,
            ty = y,
        );
    }
    out
}

/// Figure 1 as stacked percentage bars.
pub fn figure1_svg(rows: &[GeoRow]) -> String {
    let buckets = ["USA", "India", "Egypt", "Turkey", "France", "Other"];
    let mut svg = header("Figure 1: Geolocation of the likers (per campaign)");
    svg.push_str(&axes("", "% of likers"));
    let n = rows.len().max(1);
    let band = (WIDTH - 2.0 * MARGIN) / n as f64;
    for (i, row) in rows.iter().enumerate() {
        let x = MARGIN + band * i as f64 + band * 0.15;
        let w = band * 0.7;
        let mut acc = 0.0;
        for (bi, share) in row.shares.iter().enumerate() {
            let y_top = scale_y((acc + share) * 100.0, 100.0);
            let y_bot = scale_y(acc * 100.0, 100.0);
            let _ = writeln!(
                svg,
                "<rect x=\"{x:.1}\" y=\"{y_top:.1}\" width=\"{w:.1}\" height=\"{h:.1}\" \
                 fill=\"{color}\"><title>{label} {bucket}: {pct:.1}%</title></rect>",
                h = (y_bot - y_top).max(0.0),
                color = PALETTE[bi % PALETTE.len()],
                label = row.label,
                bucket = buckets[bi],
                pct = share * 100.0,
            );
            acc += share;
        }
        let _ = writeln!(
            svg,
            "<text x=\"{cx:.1}\" y=\"{ty}\" text-anchor=\"middle\" font-size=\"9\" \
             transform=\"rotate(-45 {cx:.1} {ty})\">{label}</text>",
            cx = x + w / 2.0,
            ty = HEIGHT - MARGIN + 24.0,
            label = row.label,
        );
    }
    svg.push_str(&legend(&buckets));
    svg.push_str("</svg>\n");
    svg
}

/// Figure 2 as cumulative line series (one panel; filter by
/// `TimeSeries::platform_ads` for the paper's (a)/(b) split).
pub fn figure2_svg(series: &[TimeSeries], title: &str) -> String {
    let mut svg = header(title);
    svg.push_str(&axes("Day", "Cumulative likes"));
    let y_max = series
        .iter()
        .map(TimeSeries::total)
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let x_max = series
        .iter()
        .flat_map(|s| s.daily.last().map(|(d, _)| *d))
        .fold(1.0f64, f64::max);
    for (i, s) in series.iter().enumerate() {
        let points: String = s
            .daily
            .iter()
            .map(|(d, n)| format!("{:.1},{:.1}", scale_x(*d, x_max), scale_y(*n as f64, y_max)))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            svg,
            "<polyline points=\"{points}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\">\
             <title>{label}</title></polyline>",
            color = PALETTE[i % PALETTE.len()],
            label = s.label,
        );
    }
    // Y-axis ticks.
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let _ = writeln!(
            svg,
            "<text x=\"{x}\" y=\"{y:.1}\" text-anchor=\"end\" font-size=\"9\">{v:.0}</text>",
            x = MARGIN - 4.0,
            y = scale_y(y_max * frac, y_max) + 3.0,
            v = y_max * frac,
        );
    }
    let labels: Vec<&str> = series.iter().map(|s| s.label.as_str()).collect();
    svg.push_str(&legend(&labels));
    svg.push_str("</svg>\n");
    svg
}

/// Figure 4 as CDF curves up to `x_max` page likes.
pub fn figure4_svg(curves: &[LikeCountCurve], x_max: f64) -> String {
    let mut svg = header("Figure 4: Distribution of likers' page-like counts");
    svg.push_str(&axes("Number of likes", "Cumulative fraction of users"));
    for (i, c) in curves.iter().enumerate() {
        if c.cdf.is_empty() {
            continue;
        }
        let points: String = c
            .cdf
            .series(x_max, 120)
            .iter()
            .map(|(x, y)| format!("{:.1},{:.1}", scale_x(*x, x_max), scale_y(*y, 1.0)))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            svg,
            "<polyline points=\"{points}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\">\
             <title>{label} (median {median:.0})</title></polyline>",
            color = PALETTE[i % PALETTE.len()],
            label = c.label,
            median = c.median(),
        );
    }
    let labels: Vec<&str> = curves
        .iter()
        .filter(|c| !c.cdf.is_empty())
        .map(|c| c.label.as_str())
        .collect();
    svg.push_str(&legend(&labels));
    svg.push_str("</svg>\n");
    svg
}

/// Figure 5 as a heat map (values expected in 0–100).
pub fn figure5_svg(matrix: &SimilarityMatrix, title: &str) -> String {
    let mut svg = header(title);
    let n = matrix.labels.len().max(1);
    let grid = (HEIGHT - 2.0 * MARGIN).min(WIDTH - 2.0 * MARGIN);
    let cell = grid / n as f64;
    for (i, row) in matrix.matrix.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            // White→blue ramp.
            let t = (v / 100.0).clamp(0.0, 1.0);
            let r = (255.0 * (1.0 - t * 0.75)) as u8;
            let g = (255.0 * (1.0 - t * 0.55)) as u8;
            let _ = writeln!(
                svg,
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{cell:.1}\" height=\"{cell:.1}\" \
                 fill=\"rgb({r},{g},255)\" stroke=\"#ddd\">\
                 <title>{a} vs {b}: {v:.1}</title></rect>",
                x = MARGIN + cell * j as f64,
                y = MARGIN + cell * i as f64,
                a = matrix.labels[i],
                b = matrix.labels[j],
            );
        }
        let _ = writeln!(
            svg,
            "<text x=\"{x}\" y=\"{y:.1}\" text-anchor=\"end\" font-size=\"9\">{label}</text>",
            x = MARGIN - 4.0,
            y = MARGIN + cell * (i as f64 + 0.6),
            label = matrix.labels[i],
        );
        let _ = writeln!(
            svg,
            "<text x=\"{x:.1}\" y=\"{y:.1}\" text-anchor=\"start\" font-size=\"9\" \
             transform=\"rotate(-60 {x:.1} {y:.1})\">{label}</text>",
            x = MARGIN + cell * (i as f64 + 0.5),
            y = MARGIN - 6.0,
            label = matrix.labels[i],
        );
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Cdf;

    fn geo_rows() -> Vec<GeoRow> {
        vec![
            GeoRow {
                label: "FB-ALL".into(),
                shares: [0.0, 0.96, 0.02, 0.0, 0.0, 0.02],
                likers: 484,
            },
            GeoRow {
                label: "SF-USA".into(),
                shares: [0.05, 0.0, 0.0, 0.95, 0.0, 0.0],
                likers: 738,
            },
        ]
    }

    #[test]
    fn figure1_svg_is_well_formed() {
        let svg = figure1_svg(&geo_rows());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // 2 campaigns × 6 buckets of stacked rects + background + legend.
        assert!(svg.matches("<rect").count() >= 13);
        assert!(svg.contains("FB-ALL India: 96.0%"));
    }

    #[test]
    fn figure2_svg_draws_one_polyline_per_series() {
        let series = vec![TimeSeries {
            label: "BL-USA".into(),
            platform_ads: false,
            daily: (0..=15).map(|d| (d as f64, d * 40)).collect(),
            peak_2h_share: 0.03,
            days_to_90pct: 13.0,
            gap_cv: 1.0,
            gap_gini: 0.3,
        }];
        let svg = figure2_svg(&series, "Figure 2(b)");
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert!(svg.contains("BL-USA"));
        assert!(svg.contains("Figure 2(b)"));
    }

    #[test]
    fn figure4_svg_skips_empty_curves() {
        let curves = vec![
            LikeCountCurve {
                label: "SF-ALL".into(),
                platform_ads: false,
                cdf: Cdf::new(vec![100.0, 1_500.0, 2_000.0]),
            },
            LikeCountCurve {
                label: "BL-ALL".into(),
                platform_ads: false,
                cdf: Cdf::new(vec![]),
            },
        ];
        let svg = figure4_svg(&curves, 10_000.0);
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert!(svg.contains("SF-ALL"));
        assert!(!svg.contains(">BL-ALL<"));
    }

    #[test]
    fn figure5_svg_has_n_squared_cells() {
        let m = SimilarityMatrix {
            labels: vec!["A".into(), "B".into(), "C".into()],
            matrix: vec![
                vec![100.0, 10.0, 0.0],
                vec![10.0, 100.0, 5.0],
                vec![0.0, 5.0, 100.0],
            ],
        };
        let svg = figure5_svg(&m, "Figure 5(a)");
        // 9 cells + background rect.
        assert_eq!(svg.matches("<rect").count(), 10);
        assert!(svg.contains("A vs B: 10.0"));
    }

    #[test]
    fn svg_coordinates_are_finite() {
        let svg = figure1_svg(&geo_rows());
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }
}
