//! Figure 2 — cumulative likes over the 15-day observation window.
//!
//! Built from the crawler's *observed* first-seen times (poll-quantized,
//! exactly what the paper plotted), plus the burstiness statistics that
//! separate the two farm strategies: bot farms land most of a job inside a
//! two-hour window, stealth farms and legitimate ads climb near-linearly.

use likelab_honeypot::{CampaignData, Dataset};
use likelab_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One campaign's cumulative series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Campaign label.
    pub label: String,
    /// Whether this was a legitimate ad campaign (Figure 2a vs. 2b).
    pub platform_ads: bool,
    /// `(day, cumulative likes)` sampled daily on `0..=days`.
    pub daily: Vec<(f64, usize)>,
    /// Share of likes inside the densest 2-hour window.
    pub peak_2h_share: f64,
    /// Days until 90% of the final count was reached.
    pub days_to_90pct: f64,
    /// Coefficient of variation of inter-arrival gaps (a Poisson-like
    /// trickle sits near 1; burst delivery runs far above it).
    pub gap_cv: f64,
    /// Gini coefficient of inter-arrival gaps (0 = perfectly even spacing,
    /// → 1 = a few huge gaps between dense bursts).
    pub gap_gini: f64,
}

fn first_seen_offsets(c: &CampaignData, launch: SimTime) -> Vec<SimDuration> {
    let mut v: Vec<SimDuration> = c
        .likers
        .iter()
        .map(|l| l.first_seen.saturating_since(launch))
        .collect();
    v.sort_unstable();
    v
}

/// Cumulative count sampled at the start of each day `0..=days`.
fn daily_series(offsets: &[SimDuration], days: u64) -> Vec<(f64, usize)> {
    (0..=days)
        .map(|d| {
            let cutoff = SimDuration::days(d);
            let n = offsets.partition_point(|o| *o <= cutoff);
            (d as f64, n)
        })
        .collect()
}

fn peak_share(offsets: &[SimDuration], window: SimDuration) -> f64 {
    if offsets.is_empty() {
        return 0.0;
    }
    let mut best = 1usize;
    let mut lo = 0usize;
    for hi in 0..offsets.len() {
        while offsets[hi].saturating_sub(offsets[lo]) > window {
            lo += 1;
        }
        best = best.max(hi - lo + 1);
    }
    best as f64 / offsets.len() as f64
}

/// Coefficient of variation and Gini coefficient of the inter-arrival gaps
/// of a sorted offset stream. Returns `(0, 0)` for fewer than 3 events.
pub fn interarrival_dispersion(offsets: &[SimDuration]) -> (f64, f64) {
    if offsets.len() < 3 {
        return (0.0, 0.0);
    }
    let gaps: Vec<f64> = offsets
        .windows(2)
        .map(|w| (w[1].as_secs() - w[0].as_secs()) as f64)
        .collect();
    let n = gaps.len() as f64;
    let mean = gaps.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        // All likes at the same instant: maximal burstiness. The CV is
        // formally 0/0 here, so report its supremum over n non-negative
        // gaps — sqrt(n-1), approached as all mass concentrates in one
        // gap. Finite on purpose: `f64::INFINITY` serializes to `null`
        // in JSON and corrupted every export of a perfectly-bursty
        // campaign.
        return ((n - 1.0).sqrt(), 1.0);
    }
    let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n;
    let cv = var.sqrt() / mean;
    // Gini via the sorted-rank formula.
    let mut sorted = gaps.clone();
    sorted.sort_by(f64::total_cmp);
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, g)| (2.0 * (i as f64 + 1.0) - n - 1.0) * g)
        .sum();
    let gini = weighted / (n * n * mean);
    (cv, gini)
}

fn days_to_fraction(offsets: &[SimDuration], fraction: f64) -> f64 {
    if offsets.is_empty() {
        return 0.0;
    }
    let idx = ((offsets.len() as f64 * fraction).ceil() as usize).clamp(1, offsets.len()) - 1;
    offsets[idx].as_days_f64()
}

/// Compute Figure 2 over `days` (15 in the paper) for all active campaigns.
pub fn figure2(dataset: &Dataset, days: u64) -> Vec<TimeSeries> {
    dataset
        .campaigns
        .iter()
        .filter(|c| !c.inactive)
        .map(|c| {
            let offsets = first_seen_offsets(c, dataset.launch);
            let (gap_cv, gap_gini) = interarrival_dispersion(&offsets);
            TimeSeries {
                label: c.spec.label.clone(),
                platform_ads: c.spec.is_platform_ads(),
                daily: daily_series(&offsets, days),
                peak_2h_share: peak_share(&offsets, SimDuration::hours(2)),
                days_to_90pct: days_to_fraction(&offsets, 0.9),
                gap_cv,
                gap_gini,
            }
        })
        .collect()
}

impl TimeSeries {
    /// Final cumulative count.
    pub fn total(&self) -> usize {
        self.daily.last().map(|(_, n)| *n).unwrap_or(0)
    }

    /// Maximum single-day increment as a share of the total — a second
    /// burstiness lens (a perfectly linear 15-day series scores ≈ 1/15).
    pub fn max_daily_share(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.daily
            .windows(2)
            .map(|w| w[1].1 - w[0].1)
            .max()
            .unwrap_or(0) as f64
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_farms::Region;
    use likelab_graph::UserId;
    use likelab_honeypot::{CampaignData, CampaignSpec, LikerRecord, Promotion};
    use likelab_osn::{AudienceReport, Targeting};

    fn campaign(label: &str, ads: bool, first_seen: Vec<SimTime>) -> CampaignData {
        CampaignData {
            spec: CampaignSpec {
                label: label.into(),
                promotion: if ads {
                    Promotion::PlatformAds {
                        targeting: Targeting::worldwide(),
                        daily_budget_cents: 600.0,
                        duration_days: 15,
                    }
                } else {
                    Promotion::FarmOrder {
                        farm: 0,
                        region: Region::Worldwide,
                        likes: 1_000,
                        price_cents: 0,
                        advertised_duration: String::new(),
                    }
                },
            },
            page: likelab_graph::PageId(0),
            observations: vec![],
            likers: first_seen
                .into_iter()
                .enumerate()
                .map(|(i, t)| LikerRecord {
                    user: UserId(i as u32),
                    first_seen: t,
                    friends: None,
                    total_friend_count: None,
                    liked_pages: None,
                    gone_at_collection: false,
                    crawl_outcome: likelab_honeypot::CrawlOutcome::Complete,
                })
                .collect(),
            report: AudienceReport::default(),
            monitoring_days: None,
            terminated_after_month: 0,
            termination_unknown: 0,
            inactive: false,
            coverage: likelab_honeypot::CrawlCoverage::default(),
        }
    }

    fn dataset(campaigns: Vec<CampaignData>, launch: SimTime) -> Dataset {
        Dataset {
            campaigns,
            baseline: vec![],
            launch,
            global_report: AudienceReport::default(),
        }
    }

    #[test]
    fn burst_campaign_scores_high_trickle_low() {
        let launch = SimTime::at_day(100);
        // Burst: 90 likes inside one hour on day 2, 10 stragglers.
        let mut burst: Vec<SimTime> = (0..90)
            .map(|i| launch + SimDuration::days(2) + SimDuration::minutes(i))
            .collect();
        burst.extend((0..10).map(|i| launch + SimDuration::days(3 + i)));
        // Trickle: 4/day for 15 days.
        let trickle: Vec<SimTime> = (0..60)
            .map(|i| launch + SimDuration::hours(i * 6))
            .collect();
        let d = dataset(
            vec![
                campaign("AL-USA", false, burst),
                campaign("BL-USA", false, trickle),
            ],
            launch,
        );
        let fig = figure2(&d, 15);
        let al = &fig[0];
        let bl = &fig[1];
        assert!(al.peak_2h_share > 0.85, "burst share {}", al.peak_2h_share);
        assert!(bl.peak_2h_share < 0.1, "trickle share {}", bl.peak_2h_share);
        assert!(al.days_to_90pct <= 3.0);
        assert!(bl.days_to_90pct > 10.0);
        assert!(al.max_daily_share() > 0.8);
        assert!(bl.max_daily_share() < 0.15);
        // Dispersion statistics separate the two regimes too.
        assert!(
            al.gap_gini > bl.gap_gini + 0.3,
            "burst gini {} vs trickle {}",
            al.gap_gini,
            bl.gap_gini
        );
        assert!(al.gap_cv > bl.gap_cv, "cv {} vs {}", al.gap_cv, bl.gap_cv);
    }

    #[test]
    fn daily_series_is_cumulative_and_anchored() {
        let launch = SimTime::at_day(10);
        let likes = vec![
            launch + SimDuration::hours(1),
            launch + SimDuration::days(1) + SimDuration::hours(3),
            launch + SimDuration::days(5),
        ];
        let d = dataset(vec![campaign("FB-USA", true, likes)], launch);
        let fig = figure2(&d, 15);
        let s = &fig[0].daily;
        assert_eq!(s.len(), 16);
        assert_eq!(s[0], (0.0, 0), "nothing at day 0 sharp");
        assert_eq!(s[1].1, 1);
        assert_eq!(s[2].1, 2);
        assert_eq!(s[5].1, 3, "day-5 like lands exactly on the cutoff");
        assert_eq!(s[15].1, 3);
        assert_eq!(fig[0].total(), 3);
        assert!(fig[0].platform_ads);
    }

    #[test]
    fn dispersion_edge_cases() {
        use likelab_sim::SimDuration as D;
        assert_eq!(interarrival_dispersion(&[]), (0.0, 0.0));
        assert_eq!(interarrival_dispersion(&[D::ZERO, D::HOUR]), (0.0, 0.0));
        // Perfectly even spacing: CV 0, Gini 0.
        let even: Vec<D> = (0..10).map(D::hours).collect();
        let (cv, gini) = interarrival_dispersion(&even);
        assert!(cv.abs() < 1e-12 && gini.abs() < 1e-12);
        // All simultaneous: maximal, but *finite* — the saturated case is
        // reported as the CV supremum sqrt(n_gaps - 1), never infinity.
        let same = vec![D::HOUR; 5];
        let (cv, gini) = interarrival_dispersion(&same);
        assert!(cv.is_finite());
        assert!((cv - 3.0f64.sqrt()).abs() < 1e-12, "sqrt(4 gaps - 1): {cv}");
        assert_eq!(gini, 1.0);
        // And it must dominate any non-degenerate stream of the same size:
        // the supremum is an upper bound, so sorting by burstiness is safe.
        let mut nearly = vec![D::ZERO; 4];
        nearly.push(D::HOUR);
        let (nearly_cv, _) = interarrival_dispersion(&nearly);
        assert!(cv >= nearly_cv - 1e-9, "{cv} vs {nearly_cv}");
        // One big gap among tiny ones: high Gini.
        let mut bursty: Vec<D> = (0..50).map(D::secs).collect();
        bursty.push(D::days(10));
        let (_, gini) = interarrival_dispersion(&bursty);
        assert!(gini > 0.9, "gini {gini}");
    }

    #[test]
    fn saturated_dispersion_round_trips_through_json() {
        // A perfectly-bursty campaign: every like lands on the same poll.
        let launch = SimTime::at_day(100);
        let likes = vec![launch + SimDuration::hours(2); 10];
        let d = dataset(vec![campaign("AL-ALL", false, likes)], launch);
        let series = &figure2(&d, 15)[0];
        assert!(series.gap_cv.is_finite());
        let json = serde_json::to_string(series).unwrap();
        assert!(
            !json.contains("null"),
            "saturated dispersion must not serialize to null: {json}"
        );
        let back: TimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back.gap_cv, series.gap_cv, "gap_cv survives the trip");
        assert_eq!(back.gap_gini, 1.0);
    }

    #[test]
    fn empty_campaign_is_flat_zero() {
        let d = dataset(vec![campaign("FB-FRA", true, vec![])], SimTime::EPOCH);
        let fig = figure2(&d, 15);
        assert_eq!(fig[0].total(), 0);
        assert_eq!(fig[0].peak_2h_share, 0.0);
        assert_eq!(fig[0].max_daily_share(), 0.0);
    }
}
