//! The month-later termination follow-up (§5 of the paper).
//!
//! "Only one account associated with BoostLikes was terminated, as opposed
//! to 9, 20, and 44 for the other like farms. 11 accounts from the regular
//! Facebook campaigns were also terminated." The ordering — stealth farm
//! barely touched, bot farms purged — is the disposability signature.

use crate::provider::Provider;
use likelab_honeypot::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Termination summary per provider.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TerminationSummary {
    /// Terminated liker accounts per provider (summed over campaigns).
    pub by_provider: BTreeMap<Provider, usize>,
    /// Terminated per campaign label.
    pub by_campaign: BTreeMap<String, usize>,
    /// Total across all campaigns.
    pub total: usize,
    /// Probes that never got an answer, per campaign label — likers the
    /// month-later re-check could neither confirm alive nor terminated.
    /// Silently folding these into "not terminated" biased the counts.
    pub unknown_by_campaign: BTreeMap<String, usize>,
    /// Total unanswered probes across all campaigns.
    pub unknown_total: usize,
}

impl TerminationSummary {
    /// Terminated count for one provider.
    pub fn provider(&self, p: Provider) -> usize {
        self.by_provider.get(&p).copied().unwrap_or(0)
    }

    /// Termination *rate* per provider: terminated / likers.
    pub fn rate(&self, p: Provider, likers: usize) -> f64 {
        if likers == 0 {
            0.0
        } else {
            self.provider(p) as f64 / likers as f64
        }
    }
}

/// Aggregate the month-later termination counts.
pub fn termination_summary(dataset: &Dataset) -> TerminationSummary {
    let mut s = TerminationSummary::default();
    for c in &dataset.campaigns {
        let n = c.terminated_after_month;
        s.by_campaign.insert(c.spec.label.clone(), n);
        s.total += n;
        s.unknown_by_campaign
            .insert(c.spec.label.clone(), c.termination_unknown);
        s.unknown_total += c.termination_unknown;
        if let Some(p) = Provider::of_label(&c.spec.label) {
            *s.by_provider.entry(p).or_insert(0) += n;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_farms::Region;
    use likelab_honeypot::{CampaignData, CampaignSpec, Promotion};
    use likelab_osn::AudienceReport;
    use likelab_sim::SimTime;

    fn campaign(label: &str, terminated: usize) -> CampaignData {
        CampaignData {
            spec: CampaignSpec {
                label: label.into(),
                promotion: Promotion::FarmOrder {
                    farm: 0,
                    region: Region::Worldwide,
                    likes: 0,
                    price_cents: 0,
                    advertised_duration: String::new(),
                },
            },
            page: likelab_graph::PageId(0),
            observations: vec![],
            likers: vec![],
            report: AudienceReport::default(),
            monitoring_days: None,
            terminated_after_month: terminated,
            termination_unknown: 0,
            inactive: false,
            coverage: likelab_honeypot::CrawlCoverage::default(),
        }
    }

    #[test]
    fn paper_counts_aggregate_by_provider() {
        let d = Dataset {
            campaigns: vec![
                campaign("FB-IND", 2),
                campaign("FB-EGY", 6),
                campaign("FB-ALL", 3),
                campaign("BL-USA", 1),
                campaign("SF-ALL", 11),
                campaign("SF-USA", 9),
                campaign("AL-ALL", 8),
                campaign("AL-USA", 36),
                campaign("MS-USA", 9),
            ],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        };
        let s = termination_summary(&d);
        assert_eq!(s.provider(Provider::Facebook), 11);
        assert_eq!(s.provider(Provider::BoostLikes), 1);
        assert_eq!(s.provider(Provider::SocialFormula), 20);
        assert_eq!(s.provider(Provider::AuthenticLikes), 44);
        assert_eq!(s.provider(Provider::MammothSocials), 9);
        assert_eq!(s.total, 85);
        assert_eq!(s.by_campaign["AL-USA"], 36);
        // The ordering the paper highlights.
        assert!(s.provider(Provider::BoostLikes) < s.provider(Provider::MammothSocials));
        assert!(s.provider(Provider::MammothSocials) < s.provider(Provider::SocialFormula));
        assert!(s.provider(Provider::SocialFormula) < s.provider(Provider::AuthenticLikes));
    }

    #[test]
    fn unanswered_probes_are_surfaced_not_hidden() {
        let mut flaky = campaign("AL-USA", 5);
        flaky.termination_unknown = 7;
        let d = Dataset {
            campaigns: vec![campaign("BL-USA", 1), flaky],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        };
        let s = termination_summary(&d);
        assert_eq!(s.total, 6, "unknowns never inflate the terminated count");
        assert_eq!(s.unknown_total, 7);
        assert_eq!(s.unknown_by_campaign["AL-USA"], 7);
        assert_eq!(s.unknown_by_campaign["BL-USA"], 0);
    }

    #[test]
    fn rates_divide_by_likers() {
        let d = Dataset {
            campaigns: vec![campaign("BL-USA", 1)],
            baseline: vec![],
            launch: SimTime::EPOCH,
            global_report: AudienceReport::default(),
        };
        let s = termination_summary(&d);
        assert!((s.rate(Provider::BoostLikes, 621) - 1.0 / 621.0).abs() < 1e-12);
        assert_eq!(s.rate(Provider::Facebook, 0), 0.0);
    }
}
