//! Property-based tests of the statistics the analyses rest on.

use likelab_analysis::stats::{jaccard, kl_divergence, Cdf};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Jaccard is a similarity: bounded, symmetric, maximal on identity.
    #[test]
    fn jaccard_is_a_similarity(
        a in prop::collection::hash_set(0u32..50, 0..30),
        b in prop::collection::hash_set(0u32..50, 0..30),
    ) {
        let j = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - jaccard(&b, &a)).abs() < 1e-12, "symmetric");
        if !a.is_empty() {
            prop_assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        }
        if a.is_disjoint(&b) {
            prop_assert_eq!(j, 0.0);
        }
        let hs: HashSet<u32> = HashSet::new();
        prop_assert_eq!(jaccard(&a, &hs), 0.0);
    }

    /// Jaccard grows when the intersection grows with the union fixed.
    #[test]
    fn jaccard_counts_overlap(n_shared in 0usize..20, n_only in 1usize..20) {
        let a: HashSet<usize> = (0..n_shared + n_only).collect();
        let b: HashSet<usize> = (0..n_shared).chain(1_000..1_000 + n_only).collect();
        let expected = n_shared as f64 / (n_shared + 2 * n_only) as f64;
        prop_assert!((jaccard(&a, &b) - expected).abs() < 1e-12);
    }

    /// KL divergence is non-negative (Gibbs' inequality, up to smoothing)
    /// and zero on identical distributions.
    #[test]
    fn kl_is_nonnegative(raw in prop::collection::vec(0.0f64..10.0, 2..10), raw2 in prop::collection::vec(0.0f64..10.0, 2..10)) {
        prop_assume!(raw.iter().sum::<f64>() > 0.1);
        prop_assume!(raw2.iter().sum::<f64>() > 0.1);
        let n = raw.len().min(raw2.len());
        let p = &raw[..n];
        let q = &raw2[..n];
        prop_assert!(kl_divergence(p, q) > -1e-6, "non-negative");
        prop_assert!(kl_divergence(p, p).abs() < 1e-6, "self-divergence is 0");
    }

    /// KL is scale-invariant in its inputs (they are normalized internally).
    #[test]
    fn kl_is_scale_invariant(
        p in prop::collection::vec(0.01f64..10.0, 3..8),
        factor in 0.1f64..100.0,
    ) {
        let q = vec![1.0; p.len()];
        let scaled: Vec<f64> = p.iter().map(|x| x * factor).collect();
        let d1 = kl_divergence(&p, &q);
        let d2 = kl_divergence(&scaled, &q);
        prop_assert!((d1 - d2).abs() < 1e-6, "{d1} vs {d2}");
    }

    /// The empirical CDF is monotone, bounded, and hits 1 at the max.
    #[test]
    fn cdf_is_monotone(samples in prop::collection::vec(0.0f64..1_000.0, 1..60)) {
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let cdf = Cdf::new(samples.clone());
        // Grid upper bound strictly above the sample domain, so the last
        // grid point is immune to floating-point grid rounding.
        let series = cdf.series(1_000.0, 30);
        prop_assert!(series.windows(2).all(|w| w[0].1 <= w[1].1));
        prop_assert!((series.last().unwrap().1 - 1.0).abs() < 1e-12);
        prop_assert_eq!(cdf.fraction_at(min - 1.0), 0.0);
        prop_assert_eq!(cdf.fraction_at(max), 1.0);
        // Quantiles are actual samples and ordered.
        let q25 = cdf.quantile(0.25);
        let q75 = cdf.quantile(0.75);
        prop_assert!(q25 <= q75);
        prop_assert!(samples.contains(&q25) && samples.contains(&q75));
        let med = cdf.median();
        prop_assert!(med >= min && med <= max);
    }

    /// fraction_at is the exact empirical fraction.
    #[test]
    fn cdf_fraction_matches_count(samples in prop::collection::vec(0i32..100, 1..50), x in 0i32..100) {
        let cdf = Cdf::new(samples.iter().map(|v| f64::from(*v)).collect());
        let expected = samples.iter().filter(|v| **v <= x).count() as f64 / samples.len() as f64;
        prop_assert!((cdf.fraction_at(f64::from(x)) - expected).abs() < 1e-12);
    }
}
