//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **A1** — burst width vs. detectability: how wide does a farm have to
//!   smear its delivery before the burst detector loses it?
//! - **A2** — stealth connectivity vs. component structure: how dense does
//!   the sybil network have to be before the likers form one blob?
//! - **A3** — privacy rate vs. Table 3 visibility: how much of the real
//!   liker–liker structure does the crawler see at each public-list rate?
//! - **A4** — worldwide-allocation sharpness vs. the FB-ALL India collapse:
//!   how winner-take-most does the ad auction have to be before worldwide
//!   targeting lands 96% in one market?

use criterion::{criterion_group, criterion_main, Criterion};
use likelab_bench::print_block;
use likelab_detect::{judge_page, BurstConfig};
use likelab_farms::{DeliveryStyle, FarmOrder, FarmRoster, FarmSpec, Region};
use likelab_graph::components::ComponentCensus;
use likelab_graph::{PageId, UserId};
use likelab_osn::{Country, OsnWorld, PageCategory};
use likelab_sim::{Rng, SimDuration, SimTime};
use std::fmt::Write as _;
use std::hint::black_box;

/// A small world with enough background pages for camouflage.
fn small_world() -> (OsnWorld, Vec<PageId>) {
    let mut world = OsnWorld::new();
    let background: Vec<PageId> = (0..3_000)
        .map(|i| {
            world.create_page(
                format!("bg{i}"),
                "",
                None,
                PageCategory::Background,
                SimTime::EPOCH,
            )
        })
        .collect();
    (world, background)
}

fn deliver_with_style(style: DeliveryStyle, seed: u64) -> (OsnWorld, PageId) {
    let (mut world, background) = small_world();
    let mut spec = FarmSpec::authenticlikes();
    spec.style = style;
    let mut roster = FarmRoster::new(vec![spec], background, 0.3, Rng::seed_from_u64(seed));
    let page = world.create_page("h", "", None, PageCategory::Honeypot, SimTime::at_day(100));
    let d = roster.fulfill(
        &mut world,
        &FarmOrder {
            farm: 0,
            page,
            region: Region::Country(Country::Usa),
            likes: 1_000,
            placed_at: SimTime::at_day(100),
        },
    );
    for l in d.likes {
        world.record_like(l.user, l.page, l.at);
    }
    (world, page)
}

fn ablation_burst_width() {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:24} {:>10} {:>10}",
        "delivery style", "peak2h", "flagged%"
    );
    let styles: Vec<(String, DeliveryStyle)> = vec![
        (
            "burst 1h x1".into(),
            DeliveryStyle::Burst {
                days: 1,
                bursts: 1,
                window: SimDuration::hours(1),
                start_delay: SimDuration::hours(6),
            },
        ),
        (
            "burst 2h x3 / 3d".into(),
            DeliveryStyle::Burst {
                days: 3,
                bursts: 3,
                window: SimDuration::hours(2),
                start_delay: SimDuration::hours(10),
            },
        ),
        (
            "burst 12h x3 / 5d".into(),
            DeliveryStyle::Burst {
                days: 5,
                bursts: 3,
                window: SimDuration::hours(12),
                start_delay: SimDuration::hours(10),
            },
        ),
        (
            "burst 24h x5 / 10d".into(),
            DeliveryStyle::Burst {
                days: 10,
                bursts: 5,
                window: SimDuration::hours(24),
                start_delay: SimDuration::hours(10),
            },
        ),
        ("trickle 15d".into(), DeliveryStyle::Trickle { days: 15 }),
    ];
    let cfg = BurstConfig::default();
    for (name, style) in styles {
        let mut flagged = 0;
        let mut share_sum = 0.0;
        const TRIALS: u64 = 8;
        for seed in 0..TRIALS {
            let (world, page) = deliver_with_style(style, seed);
            let v = judge_page(&world, page, Some(SimTime::at_day(99)), &cfg);
            share_sum += v.peak_share;
            if v.flagged {
                flagged += 1;
            }
        }
        let _ = writeln!(
            body,
            "{:24} {:>9.0}% {:>9.0}%",
            name,
            share_sum / TRIALS as f64 * 100.0,
            flagged as f64 / TRIALS as f64 * 100.0,
        );
    }
    let _ = writeln!(
        body,
        "takeaway: the detector holds until deliveries smear past ~12h windows —\n\
         the bot farms' 2h bursts are trivially detectable; BoostLikes' trickle is invisible"
    );
    print_block("Ablation A1: burst width vs. burst-detector recall", &body);
}

fn ablation_stealth_connectivity() {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:ello$} {:>12} {:>10} {:>8}",
        "within-pool degree",
        "giant frac",
        "edges",
        "pairs",
        ello = 20
    );
    for within in [0usize, 2, 6, 12, 30] {
        let (mut world, background) = small_world();
        let mut spec = FarmSpec::boostlikes();
        spec.topology = likelab_farms::PoolTopology::DenseNetwork {
            within_degree: within,
        };
        let mut roster = FarmRoster::new(vec![spec], background, 0.3, Rng::seed_from_u64(7));
        let page = world.create_page("h", "", None, PageCategory::Honeypot, SimTime::at_day(100));
        let d = roster.fulfill(
            &mut world,
            &FarmOrder {
                farm: 0,
                page,
                region: Region::Country(Country::Usa),
                likes: 1_000,
                placed_at: SimTime::at_day(100),
            },
        );
        let census = ComponentCensus::compute(world.friends(), &d.accounts);
        let edges = likelab_graph::twohop::direct_edges_within(world.friends(), &d.accounts);
        let _ = writeln!(
            body,
            "{:20} {:>11.0}% {:>10} {:>8}",
            within,
            census.giant_fraction() * 100.0,
            edges,
            census.pairs,
        );
    }
    let _ = writeln!(
        body,
        "takeaway: a handful of in-pool edges per account already produces the\n\
         connected blob of Figure 3(a); with none, even the stealth farm's likers\n\
         fragment like a bot farm's"
    );
    print_block(
        "Ablation A2: stealth connectivity vs. Figure 3 structure",
        &body,
    );
}

fn ablation_privacy_rate() {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:>12} {:>14} {:>16} {:>12}",
        "public rate", "true edges", "observed edges", "seen frac"
    );
    for public in [0.1, 0.26, 0.5, 0.8, 1.0] {
        let (mut world, background) = small_world();
        let mut spec = FarmSpec::boostlikes();
        spec.friend_list_public = public;
        let mut roster = FarmRoster::new(vec![spec], background, 0.3, Rng::seed_from_u64(9));
        let page = world.create_page("h", "", None, PageCategory::Honeypot, SimTime::at_day(100));
        let d = roster.fulfill(
            &mut world,
            &FarmOrder {
                farm: 0,
                page,
                region: Region::Country(Country::Usa),
                likes: 1_000,
                placed_at: SimTime::at_day(100),
            },
        );
        let truth = likelab_graph::twohop::direct_edges_within(world.friends(), &d.accounts);
        // What the crawler sees: an edge is observed when either endpoint's
        // list is public.
        let likers: std::collections::HashSet<UserId> = d.accounts.iter().copied().collect();
        let mut observed = std::collections::HashSet::new();
        for &u in &d.accounts {
            if !world.account(u).privacy.friend_list_public {
                continue;
            }
            for v in world.friends().neighbors(u) {
                if likers.contains(&v) {
                    observed.insert((u.min(v), u.max(v)));
                }
            }
        }
        let _ = writeln!(
            body,
            "{:>11.0}% {:>14} {:>16} {:>11.0}%",
            public * 100.0,
            truth,
            observed.len(),
            observed.len() as f64 / truth.max(1) as f64 * 100.0,
        );
    }
    let _ = writeln!(
        body,
        "takeaway: at the paper's 26% public rate roughly half the liker-liker\n\
         edges are visible — its Table 3 'lower bound' caveat, quantified"
    );
    print_block(
        "Ablation A3: friend-list privacy vs. observed structure",
        &body,
    );
}

fn ablation_allocation_sharpness() {
    use likelab_osn::{AdMarket, Country};
    let mut body = String::new();
    let _ = writeln!(body, "{:>10} {:>14}", "sharpness", "India share");
    // Reach-estimate pools shaped like the study world's click-prone
    // audiences at scale 1.
    let markets = vec![
        (Country::India, 1_536),
        (Country::Egypt, 720),
        (Country::Usa, 78),
        (Country::France, 60),
        (Country::Turkey, 147),
        (Country::Brazil, 144),
        (Country::Indonesia, 198),
        (Country::Philippines, 144),
        (Country::Uk, 29),
        (Country::Mexico, 126),
    ];
    for sharpness in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let market = AdMarket {
            allocation_sharpness: sharpness,
            ..AdMarket::default()
        };
        let alloc = market.allocate(600.0, &markets);
        let total: f64 = alloc.iter().map(|(_, b)| b).sum();
        // Budget share ÷ price = like share.
        let likes = |c: Country| {
            alloc
                .iter()
                .find(|(x, _)| *x == c)
                .map(|(_, b)| b / market.base_cost(c))
                .unwrap_or(0.0)
        };
        let all_likes: f64 = alloc.iter().map(|(c, b)| b / market.base_cost(*c)).sum();
        let _ = writeln!(
            body,
            "{:>10} {:>13.0}%",
            sharpness,
            likes(Country::India) / all_likes.max(1e-9) * 100.0
        );
        let _ = total;
    }
    let _ = writeln!(
        body,
        "takeaway: a mildly price-sensitive auction already concentrates
         worldwide budgets; sharpness 8 reproduces the paper's 96% India"
    );
    print_block(
        "Ablation A4: allocation sharpness vs. FB-ALL India share",
        &body,
    );
}

fn bench(c: &mut Criterion) {
    ablation_burst_width();
    ablation_stealth_connectivity();
    ablation_privacy_rate();
    ablation_allocation_sharpness();
    c.bench_function("ablation/farm_fulfillment", |b| {
        b.iter(|| black_box(deliver_with_style(DeliveryStyle::Trickle { days: 15 }, 1)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
