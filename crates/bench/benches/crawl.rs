//! Crawl-pipeline benches: the monitor poll loop (incremental diff vs the
//! liker count) and the profile-collection pass under clean and chaos fault
//! surfaces — the numbers behind the resilient-crawl PR's perf claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use likelab_graph::{PageId, UserId};
use likelab_honeypot::{collect_profiles, CollectionConfig, CrawlerConfig, PageMonitor};
use likelab_osn::{
    ActorClass, Country, CrawlApi, CrawlConfig, Gender, OsnWorld, PageCategory, PrivacySettings,
    Profile,
};
use likelab_sim::{Rng, SimTime};
use std::hint::black_box;

/// A world with `n` public accounts that all like one honeypot page over
/// the first 15 days.
fn liked_world(n: u32) -> (OsnWorld, PageId) {
    let mut w = OsnWorld::new();
    let mut rng = Rng::seed_from_u64(99);
    for _ in 0..n {
        w.create_account(
            Profile {
                gender: Gender::Male,
                age: 25,
                country: Country::Usa,
                home_region: 0,
            },
            ActorClass::ClickProne,
            PrivacySettings {
                friend_list_public: true,
                likes_public: true,
                searchable: true,
            },
            SimTime::EPOCH,
        );
    }
    let p = w.create_page("bench", "", None, PageCategory::Honeypot, SimTime::EPOCH);
    for u in 0..n {
        let at = SimTime::from_secs(rng.below(15 * 86_400));
        w.record_like(UserId(u), p, at);
    }
    (w, p)
}

/// Drive a monitor from launch to stop; returns the poll count.
fn run_monitor(world: &OsnWorld, page: PageId, api: &mut CrawlApi) -> usize {
    let mut monitor = PageMonitor::new(
        page,
        SimTime::EPOCH,
        SimTime::at_day(15),
        CrawlerConfig::default(),
    );
    let mut next = Some(SimTime::EPOCH);
    while let Some(now) = next {
        next = monitor.poll(world, api, now);
    }
    monitor.observations().len()
}

/// The monitor poll loop: with the persistent seen-set diff this scales
/// with likers + polls, not likers x polls.
fn bench_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("crawl/monitor_poll_loop");
    for n in [500u32, 2_000, 8_000] {
        let (world, page) = liked_world(n);
        group.bench_with_input(BenchmarkId::new("clean", n), &n, |b, _| {
            b.iter(|| {
                let mut api = CrawlApi::new(CrawlConfig::clean(), Rng::seed_from_u64(5));
                black_box(run_monitor(&world, page, &mut api))
            })
        });
        group.bench_with_input(BenchmarkId::new("chaos", n), &n, |b, _| {
            b.iter(|| {
                let mut api = CrawlApi::new(CrawlConfig::chaos(0.75), Rng::seed_from_u64(5));
                black_box(run_monitor(&world, page, &mut api))
            })
        });
    }
    group.finish();
}

/// The profile-collection pass with retry/backoff, clean vs chaos.
fn bench_collection(c: &mut Criterion) {
    let mut group = c.benchmark_group("crawl/collect_profiles");
    group.sample_size(20);
    let (world, page) = liked_world(2_000);
    let monitor = {
        let mut m = PageMonitor::new(
            page,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let mut api = CrawlApi::new(CrawlConfig::clean(), Rng::seed_from_u64(5));
        let mut next = Some(SimTime::EPOCH);
        while let Some(now) = next {
            next = m.poll(&world, &mut api, now);
        }
        m
    };
    for (label, config) in [
        ("clean", CrawlConfig::clean()),
        ("chaos", CrawlConfig::chaos(0.75)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut api = CrawlApi::new(config, Rng::seed_from_u64(6));
                let mut at = SimTime::at_day(40);
                let records = collect_profiles(
                    &world,
                    &mut api,
                    &monitor,
                    &mut at,
                    &CollectionConfig::default(),
                );
                black_box((records.len(), api.stats().retries))
            })
        });
    }
    group.finish();
}

/// Raw fault-surface overhead: one request through the quiet profile vs
/// the full regime stack.
fn bench_api(c: &mut Criterion) {
    let (world, _page) = liked_world(100);
    let mut group = c.benchmark_group("crawl/profile_request");
    for (label, config) in [
        ("quiet", CrawlConfig::default()),
        ("chaos", CrawlConfig::chaos(0.75)),
    ] {
        group.bench_function(label, |b| {
            let mut api = CrawlApi::new(config, Rng::seed_from_u64(7));
            let mut t = 0u64;
            b.iter(|| {
                t += 60;
                black_box(
                    api.profile(&world, UserId(t as u32 % 100), SimTime::from_secs(t))
                        .ok(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_monitor, bench_collection, bench_api);
criterion_main!(benches);
