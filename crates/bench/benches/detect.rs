//! Detection benches: the follow-on algorithms the paper motivates, timed
//! over the study's world and scored against ground truth.

use criterion::{criterion_group, criterion_main, Criterion};
use likelab_bench::{print_block, study};
use likelab_detect::{
    detect, extract, fit, roc, score, sybil_rank, BurstConfig, LockstepConfig, PositiveClass,
    ScorerWeights, SybilRankConfig, TrainConfig,
};
use likelab_graph::UserId;
use likelab_osn::ActorClass;
use likelab_sim::SimDuration;
use std::fmt::Write as _;
use std::hint::black_box;

fn print_comparison() {
    let o = study();
    let now = o.launch + SimDuration::days(45);
    let cfg = BurstConfig::default();
    let mut body = String::new();

    // Combined scorer AUC.
    let scored: Vec<(UserId, f64)> = o
        .world
        .user_ids()
        .map(|u| {
            (
                u,
                score(&extract(&o.world, u, now, &cfg), &ScorerWeights::default()),
            )
        })
        .collect();
    let auc = roc(&o.world, &scored, PositiveClass::FarmOnly).auc;
    let _ = writeln!(
        body,
        "combined scorer (hand weights): AUC {auc:.3} vs farm labels"
    );

    // Trained variant.
    let train: Vec<_> = o
        .world
        .user_ids()
        .step_by(3)
        .map(|u| {
            (
                extract(&o.world, u, now, &cfg),
                o.world.account(u).class.is_farm(),
            )
        })
        .collect();
    let trained = fit(&train, &TrainConfig::default());
    let scored_t: Vec<(UserId, f64)> = o
        .world
        .user_ids()
        .map(|u| (u, score(&extract(&o.world, u, now, &cfg), &trained)))
        .collect();
    let auc_t = roc(&o.world, &scored_t, PositiveClass::FarmOnly).auc;
    let _ = writeln!(body, "combined scorer (trained):      AUC {auc_t:.3}");

    // Lockstep.
    let report = detect(&o.world, &LockstepConfig::default());
    let flagged = report.flagged();
    let farm_flagged = flagged
        .iter()
        .filter(|u| o.world.account(**u).class.is_farm())
        .count();
    let _ = writeln!(
        body,
        "lockstep: {} clusters, {} flagged, precision {:.0}%",
        report.clusters.len(),
        flagged.len(),
        farm_flagged as f64 / flagged.len().max(1) as f64 * 100.0
    );

    // SybilRank from organic seeds.
    let seeds: Vec<UserId> = o.population.organic.iter().step_by(500).copied().collect();
    let trust = sybil_rank(o.world.friends(), &seeds, &SybilRankConfig::default());
    let mean = |pred: &dyn Fn(ActorClass) -> bool| {
        let xs: Vec<f64> = o
            .world
            .user_ids()
            .filter(|u| pred(o.world.account(*u).class))
            .map(|u| trust.trust(u))
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    let organic_trust = mean(&|c| c == ActorClass::Organic);
    let bot_trust = mean(&|c| matches!(c, ActorClass::Bot(_)));
    let stealth_trust = mean(&|c| matches!(c, ActorClass::StealthSybil(_)));
    let _ = writeln!(
        body,
        "sybilrank mean trust: organic {organic_trust:.2e}, bots {bot_trust:.2e}, stealth {stealth_trust:.2e}",
    );
    let _ = writeln!(
        body,
        "story: bots are easy for every detector; the stealth farm's accounts\n\
         score near-organic on behaviour and only the graph defense (low trust\n\
         from organic seeds) touches them — as the paper's structure implies"
    );
    print_block("Detection extension: detectors vs ground truth", &body);
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let o = study();
    let now = o.launch + SimDuration::days(45);
    let cfg = BurstConfig::default();
    c.bench_function("detect/extract_features_1k", |b| {
        let users: Vec<UserId> = o.world.user_ids().take(1_000).collect();
        b.iter(|| {
            for u in &users {
                black_box(extract(&o.world, *u, now, &cfg));
            }
        })
    });
    let mut group = c.benchmark_group("detect/heavy");
    group.sample_size(10);
    group.bench_function("lockstep_full_ledger", |b| {
        b.iter(|| black_box(detect(&o.world, &LockstepConfig::default())))
    });
    group.bench_function("sybilrank_full_graph", |b| {
        let seeds: Vec<UserId> = o.population.organic.iter().step_by(500).copied().collect();
        b.iter(|| {
            black_box(sybil_rank(
                o.world.friends(),
                &seeds,
                &SybilRankConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
