//! Kernel and end-to-end performance benches: the event engine, the RNG,
//! graph generation, and the full study at small scales — the numbers that
//! tell you how far the world scale can be pushed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use likelab_core::{run_study, StudyConfig};
use likelab_graph::{generate, FriendGraph, UserId};
use likelab_sim::{Engine, Rng, SimDuration, SimTime};
use std::hint::black_box;

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("engine/rng_next_u64", |b| {
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| black_box(rng.next_u64()))
    });

    c.bench_function("engine/event_queue_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u32> = Engine::new();
            let mut rng = Rng::seed_from_u64(2);
            for i in 0..10_000u32 {
                engine.schedule(SimTime::from_secs(rng.below(1_000_000)), i);
            }
            let mut sum = 0u64;
            engine.run_to_completion(|_, _, v| sum += u64::from(v));
            black_box(sum)
        })
    });

    c.bench_function("engine/self_rescheduling_poll", |b| {
        b.iter(|| {
            let mut engine: Engine<()> = Engine::new();
            engine.schedule(SimTime::EPOCH, ());
            let mut polls = 0u32;
            engine.run_until(SimTime::at_day(365), |eng, now, ()| {
                polls += 1;
                eng.schedule(now + SimDuration::hours(2), ());
            });
            black_box(polls)
        })
    });

    let mut group = c.benchmark_group("engine/chung_lu");
    for n in [1_000usize, 5_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let members: Vec<UserId> = (0..n as u32).map(UserId).collect();
            let targets = vec![30.0; n];
            b.iter(|| {
                let mut g = FriendGraph::with_nodes(n);
                let mut rng = Rng::seed_from_u64(3);
                generate::chung_lu(&mut g, &members, &targets, &mut rng);
                black_box(g.edge_count())
            })
        });
    }
    group.finish();
}

fn bench_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/full_study");
    group.sample_size(10);
    for scale in [0.02f64, 0.05] {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            b.iter(|| {
                let outcome = run_study(&StudyConfig::paper(7, scale));
                black_box(outcome.dataset.total_likes())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel, bench_study);
criterion_main!(benches);
