//! Figure 1 regeneration: liker geolocation shares per campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use likelab_analysis::geo::figure1;
use likelab_bench::{print_block, study};
use likelab_core::paper;
use likelab_osn::GeoBucket;
use std::fmt::Write as _;
use std::hint::black_box;

fn print_comparison() {
    let o = study();
    let fig = figure1(&o.dataset);
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6}",
        "Campaign", "USA%", "India%", "Egypt%", "Turkey%", "France%", "Other%"
    );
    for r in &fig {
        let _ = writeln!(
            body,
            "{:8} {:>6.1} {:>6.1} {:>6.1} {:>7.1} {:>7.1} {:>6.1}",
            r.label,
            r.share(GeoBucket::Usa) * 100.0,
            r.share(GeoBucket::India) * 100.0,
            r.share(GeoBucket::Egypt) * 100.0,
            r.share(GeoBucket::Turkey) * 100.0,
            r.share(GeoBucket::France) * 100.0,
            r.share(GeoBucket::Other) * 100.0,
        );
    }
    let fb_all_india = fig
        .iter()
        .find(|r| r.label == "FB-ALL")
        .map(|r| r.share(GeoBucket::India) * 100.0)
        .unwrap_or(0.0);
    let _ = writeln!(
        body,
        "headline: FB-ALL India share — paper {:.0}%, measured {fb_all_india:.0}%",
        paper::FB_ALL_INDIA_SHARE * 100.0
    );
    let _ = writeln!(
        body,
        "headline: SF ships Turkey regardless of targeting; targeted FB campaigns stay 87-99.8% in-country"
    );
    print_block("Figure 1: liker geolocation", &body);
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let o = study();
    c.bench_function("fig1/geolocation", |b| {
        b.iter(|| black_box(figure1(black_box(&o.dataset))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
