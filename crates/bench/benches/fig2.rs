//! Figure 2 regeneration: cumulative like time series over the 15-day
//! observation window, split into the paper's two panels.

use criterion::{criterion_group, criterion_main, Criterion};
use likelab_analysis::render::sparkline;
use likelab_analysis::temporal::figure2;
use likelab_bench::{print_block, study};
use std::fmt::Write as _;
use std::hint::black_box;

fn print_comparison() {
    let o = study();
    let fig = figure2(&o.dataset, 15);
    let mut body = String::new();
    for (panel, ads) in [("(a) Facebook campaigns", true), ("(b) like farms", false)] {
        let _ = writeln!(body, "{panel}:");
        for s in fig.iter().filter(|s| s.platform_ads == ads) {
            let values: Vec<f64> = s.daily.iter().map(|(_, n)| *n as f64).collect();
            let _ = writeln!(
                body,
                "  {:8} {} total={:5}  peak2h={:4.0}%  t90={:4.1}d  maxDay={:3.0}%",
                s.label,
                sparkline(&values),
                s.total(),
                s.peak_2h_share * 100.0,
                s.days_to_90pct,
                s.max_daily_share() * 100.0,
            );
        }
    }
    let _ = writeln!(
        body,
        "shape: SF/AL/MS complete within days with >25% of likes in a 2h window;\n\
         BL-USA and the FB campaigns climb near-linearly over the whole 15 days\n\
         (paper: 'the trend is actually comparable to that observed in the\n\
         Facebook Ads campaigns')"
    );
    print_block("Figure 2: cumulative likes per day", &body);
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let o = study();
    c.bench_function("fig2/temporal_series", |b| {
        b.iter(|| black_box(figure2(black_box(&o.dataset), 15)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
