//! Figure 3 regeneration: the likers' friendship graph — component census
//! per provider (the numeric content of the drawing) and DOT export.

use criterion::{criterion_group, criterion_main, Criterion};
use likelab_analysis::{ObservedSocial, Provider};
use likelab_bench::{print_block, study};
use std::fmt::Write as _;
use std::hint::black_box;

fn print_comparison() {
    let o = study();
    let obs = ObservedSocial::build(&o.dataset);
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:20} {:>8} {:>10} {:>6} {:>8} {:>7} {:>8}",
        "Provider", "members", "singleton", "pairs", "triplets", "larger", "giant%"
    );
    for p in Provider::ALL {
        let c = obs.group_census(p);
        let _ = writeln!(
            body,
            "{:20} {:>8} {:>10} {:>6} {:>8} {:>7} {:>7.0}%",
            p.to_string(),
            c.members,
            c.singletons,
            c.pairs,
            c.triplets,
            c.larger,
            c.giant_fraction() * 100.0,
        );
    }
    // Structural lenses on the observed liker graph: BL's blob sits in a
    // deeper k-core than the pair/triplet farms.
    let liker_graph = obs.as_friend_graph();
    let core = likelab_graph::kcore::core_numbers(&liker_graph);
    for p in [Provider::BoostLikes, Provider::SocialFormula] {
        let members: Vec<likelab_graph::UserId> = obs
            .groups
            .get(&p)
            .map(|g| g.iter().copied().collect())
            .unwrap_or_default();
        let _ = writeln!(
            body,
            "{:20} max k-core in observed liker graph: {}",
            p.to_string(),
            likelab_graph::kcore::max_core_in(&core, &members),
        );
    }
    let assort = likelab_graph::kcore::degree_assortativity(&liker_graph);
    let _ = writeln!(body, "liker-graph degree assortativity: {assort:.2}");
    let al_ms = obs
        .cross_group_pairs(Provider::AuthenticLikes, Provider::MammothSocials)
        .len();
    let _ = writeln!(
        body,
        "AL<->MS cross edges: {al_ms}; direct pairs total {}, 2-hop pairs total {}",
        obs.direct_pairs.len(),
        obs.two_hop_pairs.len()
    );
    let _ = writeln!(
        body,
        "shape: BL forms one dense blob (paper: 'well-connected'); SF shows pairs\n\
         and occasional triplets; DOT exports render the drawing itself"
    );
    let dot = obs.figure3_dot(false);
    let _ = writeln!(
        body,
        "figure3_direct.dot: {} nodes drawn, {} edges",
        dot.lines().filter(|l| l.contains('[')).count(),
        dot.lines().filter(|l| l.contains("--")).count()
    );
    print_block("Figure 3: friendship relations between likers", &body);
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let o = study();
    let obs = ObservedSocial::build(&o.dataset);
    c.bench_function("fig3/census_all_providers", |b| {
        b.iter(|| {
            for p in Provider::ALL {
                black_box(obs.group_census(p));
            }
        })
    });
    c.bench_function("fig3/dot_export", |b| {
        b.iter(|| black_box(obs.figure3_dot(black_box(false))))
    });
    c.bench_function("fig3/dot_export_twohop", |b| {
        b.iter(|| black_box(obs.figure3_dot(black_box(true))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
