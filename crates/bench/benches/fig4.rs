//! Figure 4 regeneration: CDFs of per-liker page-like counts against the
//! random-directory baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use likelab_analysis::pagelikes::figure4;
use likelab_analysis::render::sparkline;
use likelab_bench::{print_block, study};
use likelab_core::paper;
use std::fmt::Write as _;
use std::hint::black_box;

fn print_comparison() {
    let o = study();
    let fig = figure4(&o.dataset);
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:9} {:>9} {:>8}  CDF (x: 0..10000)",
        "Curve", "median", "n"
    );
    for c in &fig {
        let series: Vec<f64> = c.cdf.series(10_000.0, 24).iter().map(|(_, y)| *y).collect();
        let m = c.median();
        let _ = writeln!(
            body,
            "{:9} {:>9} {:>8}  {}",
            c.label,
            if m.is_nan() {
                "-".into()
            } else {
                format!("{m:.0}")
            },
            c.cdf.len(),
            sparkline(&series),
        );
    }
    let _ = writeln!(
        body,
        "paper anchors: baseline median {}, BL-USA {}, FB campaigns {:?}, farms {:?}",
        paper::BASELINE_MEDIAN_LIKES,
        paper::BL_USA_MEDIAN_LIKES,
        paper::FB_CAMPAIGN_MEDIAN_LIKES,
        paper::FARM_CAMPAIGN_MEDIAN_LIKES
    );
    let _ = writeln!(
        body,
        "shape: every honeypot campaign's likers dwarf the baseline except BL-USA\n\
         ('keeping a small count of likes per user')"
    );
    print_block("Figure 4: page-like count distributions", &body);
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let o = study();
    c.bench_function("fig4/cdfs", |b| {
        b.iter(|| black_box(figure4(black_box(&o.dataset))))
    });
    let fig = figure4(&o.dataset);
    let baseline = fig.last().unwrap();
    c.bench_function("fig4/cdf_series_eval", |b| {
        b.iter(|| black_box(baseline.cdf.series(10_000.0, 100)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
