//! Figure 5 regeneration: the Jaccard similarity matrices over page-like
//! sets and liker sets.

use criterion::{criterion_group, criterion_main, Criterion};
use likelab_analysis::render::matrix_heat;
use likelab_analysis::similarity::{figure5_pages, figure5_users};
use likelab_bench::{print_block, study};
use std::fmt::Write as _;
use std::hint::black_box;

fn print_comparison() {
    let o = study();
    let pages = figure5_pages(&o.dataset);
    let users = figure5_users(&o.dataset);
    let mut body = String::new();
    let _ = writeln!(body, "(a) page-like sets:");
    body.push_str(&matrix_heat(&pages.labels, &pages.matrix));
    let _ = writeln!(body, "\n(b) liker sets:");
    body.push_str(&matrix_heat(&users.labels, &users.matrix));
    let _ = writeln!(
        body,
        "\nhot pairs (paper's fingerprints):\n\
         SF-ALL<->SF-USA users {:.1} (account reuse)\n\
         AL-USA<->MS-USA users {:.1} (shared operator)\n\
         FB-IND<->FB-ALL pages {:.1} vs FB-IND<->AL-USA pages {:.1} (FB triangle vs cross)",
        users.get("SF-ALL", "SF-USA"),
        users.get("AL-USA", "MS-USA"),
        pages.get("FB-IND", "FB-ALL"),
        pages.get("FB-IND", "AL-USA"),
    );
    print_block("Figure 5: Jaccard similarity matrices", &body);
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let o = study();
    c.bench_function("fig5/pages_matrix", |b| {
        b.iter(|| black_box(figure5_pages(black_box(&o.dataset))))
    });
    c.bench_function("fig5/users_matrix", |b| {
        b.iter(|| black_box(figure5_users(black_box(&o.dataset))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
