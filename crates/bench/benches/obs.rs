//! Observability overhead bench.
//!
//! The ISSUE contract for `likelab-obs`: instrumentation must cost under 5%
//! of wall-clock when enabled and effectively nothing when disabled. This
//! bench measures both against the real workload — a multi-seed study sweep
//! whose hot paths (population synthesis, event loop, report sections,
//! sweep fan-out) are all instrumented — plus the raw per-call cost of the
//! primitives.
//!
//! ```text
//! cargo bench -p likelab-bench --bench obs
//! ```
//!
//! Environment knobs: `LIKELAB_BENCH_OBS_SCALE` (world scale per run,
//! default 0.02), `LIKELAB_BENCH_OBS_SEEDS` (seeds, default 4),
//! `LIKELAB_BENCH_OBS_REPS` (sweep repetitions per state, default 3).

use likelab_core::{run_sweep, SweepConfig};
use likelab_sim::Exec;
use std::hint::black_box;
use std::time::Instant;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Best (minimum) wall-clock over the recorded reps. System noise is
/// strictly additive on wall-clock, so min-of-N is the robust estimator of
/// the true cost on shared hardware — medians still wobble by more than the
/// 5% budget being asserted.
fn best(times: &[f64]) -> f64 {
    times.iter().copied().fold(f64::INFINITY, f64::min)
}

/// One timed sweep under the current obs state.
fn time_sweep(config: &SweepConfig, exec: Exec) -> (f64, String) {
    likelab_obs::reset();
    let t = Instant::now();
    let report = run_sweep(config, exec);
    let wall = t.elapsed().as_secs_f64();
    (wall, report.to_json().expect("sweep report serializes"))
}

fn micro_cost(label: &str, iters: u64, f: impl Fn(u64)) {
    let t = Instant::now();
    for i in 0..iters {
        f(black_box(i));
    }
    let per_call = t.elapsed().as_nanos() as f64 / iters as f64;
    println!("{label:<44} {per_call:>8.1} ns/call");
}

fn main() {
    let scale = env_f64("LIKELAB_BENCH_OBS_SCALE", 0.02);
    let n_seeds = env_usize("LIKELAB_BENCH_OBS_SEEDS", 4);
    let reps = env_usize("LIKELAB_BENCH_OBS_REPS", 3).max(1);
    let config = SweepConfig {
        master_seed: 42,
        n_seeds,
        scales: vec![scale],
    };
    let exec = Exec::auto();
    println!(
        "obs overhead bench: {n_seeds} seeds at scale {scale}, {} workers, best of {reps}\n",
        exec.worker_count()
    );

    // Warm-up run so allocator and page-cache state don't bias the first
    // measured state.
    likelab_obs::disable();
    let _ = run_sweep(&config, exec);

    // Interleave the two states so slow drift (thermal, co-tenants) hits
    // both equally instead of biasing whichever state ran second.
    let mut off_times = Vec::with_capacity(reps);
    let mut on_times = Vec::with_capacity(reps);
    let mut json_off = String::new();
    let mut json_on = String::new();
    for _ in 0..reps {
        likelab_obs::disable();
        let (wall, json) = time_sweep(&config, exec);
        off_times.push(wall);
        json_off = json;
        likelab_obs::enable();
        let (wall, json) = time_sweep(&config, exec);
        on_times.push(wall);
        json_on = json;
    }
    likelab_obs::disable();
    let (t_off, t_on) = (best(&off_times), best(&on_times));

    assert_eq!(
        json_off, json_on,
        "observability must never perturb simulation output"
    );

    let overhead = (t_on - t_off) / t_off * 100.0;
    println!("{:>12}  {:>10}", "obs state", "wall");
    println!("{:>12}  {:>9.3}s", "disabled", t_off);
    println!("{:>12}  {:>9.3}s", "enabled", t_on);
    println!("\nenabled overhead: {overhead:+.2}% (budget: <5%)");
    let snap = likelab_obs::snapshot();
    println!(
        "collected while enabled: {} counters, {} histograms, {} span names, {} trace spans",
        snap.counters.len(),
        snap.histograms.len(),
        snap.span_stats.len(),
        snap.spans.len()
    );
    assert!(
        overhead < 5.0,
        "enabled observability overhead {overhead:.2}% exceeds the 5% budget"
    );

    println!("\nprimitive costs:");
    likelab_obs::reset();
    likelab_obs::disable();
    micro_cost("counter (disabled)", 50_000_000, |i| {
        likelab_obs::metrics::counter("bench.obs.counter", i & 1)
    });
    micro_cost("span enter+drop (disabled)", 50_000_000, |_| {
        let _s = likelab_obs::span::enter("bench.obs.span");
    });
    likelab_obs::enable();
    micro_cost("counter (enabled)", 5_000_000, |i| {
        likelab_obs::metrics::counter("bench.obs.counter", i & 1)
    });
    micro_cost("histogram record (enabled)", 5_000_000, |i| {
        likelab_obs::metrics::record_ns("bench.obs.hist", i)
    });
    micro_cost("span enter+drop (enabled)", 1_000_000, |_| {
        let _s = likelab_obs::span::enter("bench.obs.span");
    });
    likelab_obs::disable();
    likelab_obs::reset();
    println!("\noutput verified byte-identical with observability on and off");
}
