//! Sweep scaling bench: the same 8-seed study sweep run sequentially and
//! with a worker pool, reporting wall-clock times and the realized speedup.
//!
//! Because the sweep's determinism contract promises bit-identical output
//! for any worker count, this bench also *checks* it: the sequential and
//! parallel reports are compared byte-for-byte through JSON before any
//! timing is reported.
//!
//! ```text
//! cargo bench -p likelab-bench --bench sweep
//! ```
//!
//! Environment knobs: `LIKELAB_BENCH_SWEEP_SCALE` (world scale per run,
//! default 0.02), `LIKELAB_BENCH_SWEEP_SEEDS` (seeds, default 8). The
//! speedup column only becomes meaningful on a multi-core machine — on one
//! core the pool degenerates to the sequential path by design.

use likelab_core::{run_sweep, SweepConfig};
use likelab_sim::Exec;
use std::num::NonZeroUsize;
use std::time::Instant;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = env_f64("LIKELAB_BENCH_SWEEP_SCALE", 0.02);
    let n_seeds = env_usize("LIKELAB_BENCH_SWEEP_SEEDS", 8);
    let config = SweepConfig {
        master_seed: 42,
        n_seeds,
        scales: vec![scale],
    };
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    println!("sweep bench: {n_seeds} seeds at scale {scale}, {cores} cores available\n");

    let t = Instant::now();
    let sequential = run_sweep(&config, Exec::Sequential);
    let t_seq = t.elapsed();
    let seq_json = sequential.to_json().expect("sweep report serializes");

    println!("{:>10}  {:>10}  {:>8}", "workers", "wall", "speedup");
    println!(
        "{:>10}  {:>9.2}s  {:>8}",
        "1 (seq)",
        t_seq.as_secs_f64(),
        "1.00x"
    );

    let mut counts: Vec<usize> = [2, 4, 8]
        .into_iter()
        .filter(|w| *w <= cores.max(2))
        .collect();
    if !counts.contains(&cores) && cores > 1 {
        counts.push(cores);
    }
    for workers in counts {
        let t = Instant::now();
        let parallel = run_sweep(&config, Exec::workers(workers));
        let t_par = t.elapsed();
        let par_json = parallel.to_json().expect("sweep report serializes");
        assert_eq!(
            seq_json, par_json,
            "parallel sweep must be byte-identical to sequential"
        );
        println!(
            "{workers:>10}  {:>9.2}s  {:>7.2}x",
            t_par.as_secs_f64(),
            t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9),
        );
    }
    println!("\noutput verified byte-identical across all worker counts");
}
