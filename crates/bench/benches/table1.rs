//! Table 1 regeneration: campaign roster, like counts, monitoring windows,
//! and the month-later termination column. Prints paper-vs-measured rows
//! (paper counts scaled to the bench scale) and times the computation of
//! the full report from the dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use likelab_analysis::StudyReport;
use likelab_bench::{bench_scale, print_block, scaled, study};
use likelab_core::paper;
use std::fmt::Write as _;
use std::hint::black_box;

fn print_comparison() {
    let o = study();
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:8} {:>13} {:>10} {:>11} {:>10} {:>12} {:>10}",
        "Campaign", "paper likes*", "measured", "paper term", "measured", "paper mon.", "measured"
    );
    for row in paper::TABLE1 {
        let c = o.dataset.campaign(row.label).unwrap();
        let fmt = |v: Option<String>| v.unwrap_or_else(|| "-".into());
        let _ = writeln!(
            body,
            "{:8} {:>13} {:>10} {:>11} {:>10} {:>12} {:>10}",
            row.label,
            fmt(row.likes.map(|l| format!("{:.0}", scaled(l)))),
            fmt((!c.inactive).then(|| c.like_count().to_string())),
            fmt(row.terminated.map(|t| t.to_string())),
            fmt((!c.inactive).then(|| c.terminated_after_month.to_string())),
            fmt(row.monitoring_days.map(|d| format!("{d}d"))),
            fmt(c.monitoring_days.map(|d| format!("{d}d"))),
        );
    }
    let _ = writeln!(body, "(*paper like counts scaled by {})", bench_scale());
    let _ = writeln!(
        body,
        "totals: measured {} likes ({} farm / {} ads); paper {} ({} / {})",
        o.dataset.total_likes(),
        o.dataset.farm_likes(),
        o.dataset.ad_likes(),
        paper::TOTAL_CAMPAIGN_LIKES,
        paper::TOTAL_FARM_LIKES,
        paper::TOTAL_AD_LIKES
    );
    print_block("Table 1: campaigns and outcomes", &body);
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let o = study();
    c.bench_function("table1/report_compute", |b| {
        b.iter(|| black_box(StudyReport::compute(black_box(&o.dataset))))
    });
    c.bench_function("table1/dataset_totals", |b| {
        b.iter(|| {
            (
                black_box(o.dataset.total_likes()),
                o.dataset.farm_likes(),
                o.dataset.ad_likes(),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
