//! Table 2 regeneration: liker demographics and KL divergence against the
//! global platform population.

use criterion::{criterion_group, criterion_main, Criterion};
use likelab_analysis::demographics::table2;
use likelab_bench::{print_block, study};
use likelab_core::paper;
use std::fmt::Write as _;
use std::hint::black_box;

fn print_comparison() {
    let o = study();
    let measured = table2(&o.dataset);
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:9} {:>12} {:>12} {:>10} {:>10}",
        "Campaign", "paper %F/%M", "measured", "paper KL", "measured"
    );
    for row in paper::TABLE2 {
        let m = measured.iter().find(|r| r.label == row.label);
        let Some(m) = m else { continue };
        let _ = writeln!(
            body,
            "{:9} {:>12} {:>12} {:>10} {:>10}",
            row.label,
            format!("{:.0}/{:.0}", row.female_pct, row.male_pct),
            format!("{:.0}/{:.0}", m.female_pct, m.male_pct),
            row.kl
                .map(|k| format!("{k:.2}"))
                .unwrap_or_else(|| "-".into()),
            m.kl.map(|k| format!("{k:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    let _ = writeln!(
        body,
        "shape: KL(FB-IND/EGY/ALL) >> KL(SF-*) ~= 0, exactly as published"
    );
    print_block("Table 2: gender, age, KL divergence", &body);
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let o = study();
    c.bench_function("table2/demographics", |b| {
        b.iter(|| black_box(table2(black_box(&o.dataset))))
    });
    c.bench_function("table2/kl_divergence", |b| {
        let p = [0.53, 0.43, 0.02, 0.01, 0.005, 0.005];
        let q = [0.149, 0.323, 0.266, 0.132, 0.072, 0.059];
        b.iter(|| {
            black_box(likelab_analysis::kl_divergence(
                black_box(&p),
                black_box(&q),
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
