//! Table 3 regeneration: likers per provider, public friend lists, friend
//! counts, and direct/2-hop relations between likers.

use criterion::{criterion_group, criterion_main, Criterion};
use likelab_analysis::{ObservedSocial, Provider};
use likelab_bench::{bench_scale, print_block, study};
use likelab_core::paper;
use std::fmt::Write as _;
use std::hint::black_box;

fn print_comparison() {
    let o = study();
    let measured = &o.report.table3;
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:20} {:>11} {:>9} {:>11} {:>9} {:>11} {:>9} {:>11} {:>9}",
        "Provider",
        "p.likers*",
        "measured",
        "p.medFr",
        "measured",
        "p.#edges*",
        "measured",
        "p.#2hop*",
        "measured"
    );
    let s = bench_scale();
    for row in paper::TABLE3 {
        let m = measured
            .iter()
            .find(|r| r.provider.to_string() == row.provider)
            .unwrap();
        let _ = writeln!(
            body,
            "{:20} {:>11.0} {:>9} {:>11.0} {:>9.0} {:>11.1} {:>9} {:>11.1} {:>9}",
            row.provider,
            row.likers as f64 * s,
            m.likers,
            row.friends_median,
            m.friends.median,
            row.friendships as f64 * s,
            m.friendships_between_likers,
            row.two_hop as f64 * s,
            m.two_hop_between_likers,
        );
    }
    let _ = writeln!(
        body,
        "(*liker/edge counts scaled by {s}; friend medians are scale-invariant)"
    );
    let _ = writeln!(
        body,
        "shape: BL friend median >> everyone; BL in-group edges >> bot farms; ALMS group non-empty"
    );
    print_block("Table 3: likers and friendships", &body);
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let o = study();
    c.bench_function("table3/observed_social_build", |b| {
        b.iter(|| black_box(ObservedSocial::build(black_box(&o.dataset))))
    });
    let obs = ObservedSocial::build(&o.dataset);
    c.bench_function("table3/rows", |b| b.iter(|| black_box(obs.table3())));
    c.bench_function("table3/group_census_bl", |b| {
        b.iter(|| black_box(obs.group_census(Provider::BoostLikes)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
