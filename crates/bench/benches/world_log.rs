//! `world_log` — event-sourced world log benchmark.
//!
//! Measures the three numbers the event-sourcing work is judged by:
//!
//! 1. **append throughput** — study records encoded through the binary
//!    framing (length prefix, checksum, payload), in events per second;
//! 2. **replay time** — a full `replay_study` of the captured log back to
//!    the rendered report, byte-identical to the original run;
//! 3. **checkpoint size** — the `checkpoint.json` + pinned `world.log`
//!    bytes a checkpointed run leaves behind.
//!
//! Results go to stdout and to `BENCH_world_log.json` at the repository
//! root (override with `LIKELAB_BENCH_OUT`). The study is the paper
//! preset trimmed by `LIKELAB_BENCH_LOG_SCALE` (default 0.05 — CI-sized).
//! `LIKELAB_THREADS` governs the worker count as everywhere else.

use likelab_core::{replay_study, run_study_opts, ReplayOptions, RunOptions, StudyConfig};
use likelab_sim::Exec;
use std::path::PathBuf;
use std::time::Instant;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = env_f64("LIKELAB_BENCH_LOG_SCALE", 0.05);
    let seed = 42u64;
    let exec = Exec::auto();
    let out_path = std::env::var("LIKELAB_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_world_log.json")
        },
        PathBuf::from,
    );
    let scratch =
        std::env::temp_dir().join(format!("likelab-bench-world-log-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    // --- phase 1: logged run + binary append throughput -------------------
    let config = StudyConfig::paper(seed, scale);
    let outcome = run_study_opts(
        &config,
        &RunOptions {
            exec,
            capture_log: true,
            ..RunOptions::default()
        },
    )
    .expect("logged run");
    let log = outcome.log.as_ref().expect("log captured");
    let events = log.records().len();
    let t = Instant::now();
    let bytes = log.to_binary().expect("encode");
    let append_seconds = t.elapsed().as_secs_f64();
    let log_bytes = bytes.len();
    let append_events_per_sec = events as f64 / append_seconds;
    let log_path = scratch.join("study.log");
    std::fs::write(&log_path, &bytes).expect("write log");

    // --- phase 2: replay back to the rendered report ----------------------
    let t = Instant::now();
    let replayed = replay_study(
        &log_path,
        &ReplayOptions {
            exec,
            ..ReplayOptions::default()
        },
    )
    .expect("replay");
    let replay_seconds = t.elapsed().as_secs_f64();
    assert_eq!(
        replayed.report.render(),
        outcome.report.render(),
        "replay must be byte-identical to the run"
    );

    // --- phase 3: checkpointed run, measure what it leaves on disk --------
    let ckpt_dir = scratch.join("ckpt");
    run_study_opts(
        &config,
        &RunOptions {
            exec,
            checkpoint_dir: Some(ckpt_dir.clone()),
            checkpoint_every: 20_000,
            ..RunOptions::default()
        },
    )
    .expect("checkpointed run");
    let file_len = |name: &str| {
        std::fs::metadata(ckpt_dir.join(name))
            .map(|m| m.len())
            .unwrap_or(0)
    };
    let checkpoint_bytes = file_len("checkpoint.json");
    let checkpoint_log_bytes = file_len("world.log");

    println!("== world_log: paper preset at scale {scale} ==");
    println!("workers:            {}", exec.worker_count());
    println!("log records:        {events}");
    println!(
        "log size:           {:.1} MiB",
        log_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("append:             {append_seconds:.3} s ({append_events_per_sec:.0} events/s)");
    println!("replay:             {replay_seconds:.3} s (byte-identical)");
    println!(
        "checkpoint:         {:.1} KiB json + {:.1} MiB pinned log",
        checkpoint_bytes as f64 / 1024.0,
        checkpoint_log_bytes as f64 / (1024.0 * 1024.0),
    );

    // Flat JSON by hand: the bench crate has no serde dependency and the
    // record is a single object.
    let json = format!(
        "{{\n  \"bench\": \"world_log\",\n  \"scale\": {scale},\n  \"seed\": {seed},\n  \
         \"workers\": {},\n  \"events\": {events},\n  \"log_bytes\": {log_bytes},\n  \
         \"append_seconds\": {append_seconds:.6},\n  \
         \"append_events_per_sec\": {append_events_per_sec:.1},\n  \
         \"replay_seconds\": {replay_seconds:.6},\n  \
         \"checkpoint_bytes\": {checkpoint_bytes},\n  \
         \"checkpoint_log_bytes\": {checkpoint_log_bytes}\n}}\n",
        exec.worker_count(),
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("written: {}", out_path.display()),
        Err(e) => {
            eprintln!("error: write {}: {e}", out_path.display());
            std::process::exit(1);
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
}
