//! `world_scale` — million-account world build + report benchmark.
//!
//! Measures the three numbers the scale work is judged by:
//!
//! 1. **build time** — population synthesis alone (accounts, friendships,
//!    background like histories through the sharded ledger);
//! 2. **peak allocated bytes** — tracked by a counting global allocator
//!    (benchmark binary only; the library crates stay `forbid(unsafe_code)`);
//! 3. **end-to-end report time** — a full `run_study_with` on the same
//!    preset, campaigns through rendered report.
//!
//! Results go to stdout and to `BENCH_world_scale.json` at the repository
//! root (override with `LIKELAB_BENCH_OUT`). The world is the `scale`
//! preset trimmed by `LIKELAB_BENCH_WORLD_SCALE` (default 0.05 — CI-sized;
//! pass 1.0 for the full ~1M-account world). `LIKELAB_THREADS` governs the
//! worker count as everywhere else.

// The counting global allocator is the workspace's one sanctioned use of
// unsafe: a thin wrapper forwarding to `System` (see Cargo.toml's
// [workspace.lints] note).
#![allow(unsafe_code)]

use likelab_core::presets::scale_population;
use likelab_core::{run_study_with, StudyConfig};
use likelab_osn::population::synthesize_with;
use likelab_osn::OsnWorld;
use likelab_sim::{Exec, Rng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Bytes currently allocated.
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of `CURRENT`.
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`System`] wrapper that tracks live and peak allocation. Counts are
/// requested sizes (allocator slack is invisible), which is exactly the
/// number the data-structure work can influence.
struct CountingAlloc;

fn on_alloc(n: usize) {
    let live = CURRENT.fetch_add(n, Ordering::Relaxed) + n;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                on_alloc(new_size - layout.size());
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Worker counts for the matrix sweep: `LIKELAB_BENCH_WORKER_MATRIX` as a
/// comma-separated list (empty string disables the sweep, default `1,8`).
fn matrix_workers() -> Vec<usize> {
    let raw = std::env::var("LIKELAB_BENCH_WORKER_MATRIX").unwrap_or_else(|_| "1,8".into());
    raw.split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&w| w > 0)
        .collect()
}

/// Phase-1 world build at a given worker count; returns (seconds, likes).
/// The like count doubles as a worker-invariance check: synthesis is
/// deterministic, so every worker count must land on the same world.
fn timed_build(scale: f64, seed: u64, exec: Exec) -> (f64, usize) {
    let config = scale_population().scaled(scale);
    let mut world = OsnWorld::new();
    let mut rng = Rng::seed_from_u64(seed);
    let t = Instant::now();
    let population = synthesize_with(&mut world, &config, &mut rng, exec);
    let secs = t.elapsed().as_secs_f64();
    drop(population);
    let likes = world.likes().len();
    (secs, likes)
}

fn main() {
    let scale = env_f64("LIKELAB_BENCH_WORLD_SCALE", 0.05);
    let seed = 42u64;
    let exec = Exec::auto();
    let out_path = std::env::var("LIKELAB_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_world_scale.json")
        },
        PathBuf::from,
    );

    // --- phase 1: world build (population synthesis only) ----------------
    let config = scale_population().scaled(scale);
    let mut world = OsnWorld::new();
    let mut rng = Rng::seed_from_u64(seed);
    let t = Instant::now();
    let population = synthesize_with(&mut world, &config, &mut rng, exec);
    let build_seconds = t.elapsed().as_secs_f64();
    let build_peak = PEAK.load(Ordering::Relaxed);

    let accounts = world.account_count();
    let pages = world.page_count();
    let likes = world.likes().len();
    let edges = world.friends().edge_count();
    let shards = world.likes().shard_count();
    let distinct_profiles = world.account_store().distinct_profiles();
    let organic = population.organic.len();
    drop(population);
    drop(world);

    // --- phase 2: end-to-end study (build + campaigns + report) ----------
    // Span collection is on for this phase only, so the end-to-end wall
    // clock splits into the three stages the scale campaign optimizes
    // independently: population build, event loop, report.
    likelab_obs::reset();
    likelab_obs::enable();
    let t = Instant::now();
    let outcome = run_study_with(&StudyConfig::scale_world(seed, scale), exec);
    let rendered = outcome.report.render();
    let report_seconds = t.elapsed().as_secs_f64();
    likelab_obs::disable();
    let peak = PEAK.load(Ordering::Relaxed);
    assert!(rendered.contains("Table 1"), "report did not render");
    let snap = likelab_obs::snapshot();
    let phase_secs = |name: &str| {
        snap.span_stats
            .get(name)
            .map_or(0.0, |s| s.total_ns as f64 / 1e9)
    };
    let phase_build_seconds = phase_secs("study.population");
    let phase_event_loop_seconds = phase_secs("study.event_loop");
    let phase_report_seconds = phase_secs("study.report");

    println!("== world_scale: scale preset at scale {scale} ==");
    println!("workers:            {}", exec.worker_count());
    println!("accounts:           {accounts}");
    println!("pages:              {pages}");
    println!("likes:              {likes}");
    println!("friend edges:       {edges}");
    println!("ledger shards:      {shards}");
    println!("distinct profiles:  {distinct_profiles}");
    println!("build:              {build_seconds:.3} s");
    println!("end-to-end report:  {report_seconds:.3} s");
    println!(
        "  phase split:      build {phase_build_seconds:.3} s / event loop \
         {phase_event_loop_seconds:.3} s / report {phase_report_seconds:.3} s"
    );
    println!(
        "peak allocated:     {:.1} MiB (build phase {:.1} MiB)",
        peak as f64 / (1024.0 * 1024.0),
        build_peak as f64 / (1024.0 * 1024.0),
    );

    // --- phase 3: build-time worker matrix --------------------------------
    // Re-run phase 1 at fixed worker counts so one JSON carries the scaling
    // story. Runs after the peak snapshot above, so the matrix never
    // perturbs the gated allocation numbers.
    let mut matrix_rows = Vec::new();
    for w in matrix_workers() {
        let (secs, matrix_likes) = timed_build(scale, seed, Exec::workers(w));
        assert_eq!(
            matrix_likes, likes,
            "worker count {w} changed the world: {matrix_likes} likes vs {likes}"
        );
        println!("build @ {w} worker(s): {secs:.3} s");
        matrix_rows.push(format!(
            "{{ \"workers\": {w}, \"build_seconds\": {secs:.6}, \"likes\": {matrix_likes} }}"
        ));
    }
    let worker_matrix = matrix_rows.join(",\n    ");

    // Flat JSON by hand: the bench crate has no serde dependency and the
    // record is a single object. Field order and names are stable — the CI
    // scale-smoke gate and older baselines parse this by key.
    let json = format!(
        "{{\n  \"bench\": \"world_scale\",\n  \"scale\": {scale},\n  \"seed\": {seed},\n  \
         \"workers\": {},\n  \"accounts\": {accounts},\n  \"organic\": {organic},\n  \
         \"pages\": {pages},\n  \"likes\": {likes},\n  \"friend_edges\": {edges},\n  \
         \"ledger_shards\": {shards},\n  \"distinct_profiles\": {distinct_profiles},\n  \
         \"build_seconds\": {build_seconds:.6},\n  \"report_seconds\": {report_seconds:.6},\n  \
         \"phase_build_seconds\": {phase_build_seconds:.6},\n  \
         \"phase_event_loop_seconds\": {phase_event_loop_seconds:.6},\n  \
         \"phase_report_seconds\": {phase_report_seconds:.6},\n  \
         \"build_peak_alloc_bytes\": {build_peak},\n  \"peak_alloc_bytes\": {peak},\n  \
         \"worker_matrix\": [\n    {worker_matrix}\n  ]\n}}\n",
        exec.worker_count(),
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("written: {}", out_path.display()),
        Err(e) => {
            eprintln!("error: write {}: {e}", out_path.display());
            std::process::exit(1);
        }
    }
}
