//! `world_serve` — live scoring service benchmark.
//!
//! Measures the three numbers `likelab serve` is judged by (SERVING.md):
//!
//! 1. **ingest throughput** — study records folded through the tail
//!    decoder, the event fanout, and the online detector suite, in
//!    events per second;
//! 2. **ingest lag** — the backlog (in records) observed when queries are
//!    interleaved with ingest at a fixed cadence, i.e. how far behind the
//!    stream a mid-flight answer may be;
//! 3. **p99 query latency** — over a mixed query workload (status, score,
//!    page, campaign, lockstep, eval) fired between ingest chunks.
//!
//! The run ends with the bitwise online-vs-batch parity assertion on the
//! burst detector — a benchmark of a wrong answer is worthless.
//!
//! Results go to stdout and `BENCH_serve.json` at the repository root
//! (override with `LIKELAB_BENCH_OUT`). The study is the paper preset
//! trimmed by `LIKELAB_BENCH_SERVE_SCALE` (default 0.05 — CI-sized).

use likelab_core::serve::{ServeConfig, ServeEngine, ServeSession};
use likelab_core::{run_study_opts, RunOptions, StudyConfig};
use likelab_detect::BurstConfig;
use likelab_obs::Histogram;
use likelab_sim::tail::TailReader;
use likelab_sim::Exec;
use std::path::PathBuf;
use std::time::Instant;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = env_f64("LIKELAB_BENCH_SERVE_SCALE", 0.05);
    let seed = 42u64;
    let exec = Exec::auto();
    let chunk = 4_096usize;
    let out_path = std::env::var("LIKELAB_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_serve.json")
        },
        PathBuf::from,
    );

    // --- phase 1: produce the stream --------------------------------------
    let mut outcome = run_study_opts(
        &StudyConfig::paper(seed, scale),
        &RunOptions {
            exec,
            capture_log: true,
            ..RunOptions::default()
        },
    )
    .expect("logged run");
    let log = outcome.log.take().expect("log captured");
    let events = log.records().len();
    let bytes = log.to_binary().expect("encode");

    // --- phase 2: pure ingest throughput ----------------------------------
    let t = Instant::now();
    let mut tail = TailReader::new();
    tail.extend(&bytes);
    // The first next_record() call decodes the header and yields the
    // first frame in one step.
    let first = tail.next_record().expect("decode").expect("first frame");
    let header = tail.header().expect("header decoded").clone();
    let mut engine = ServeEngine::new(&header, ServeConfig::default()).expect("engine");
    engine.ingest_frame(&first).expect("ingest");
    while let Some(frame) = tail.next_record().expect("decode") {
        engine.ingest_frame(&frame).expect("ingest");
    }
    let ingest_seconds = t.elapsed().as_secs_f64();
    let ingest_events_per_sec = events as f64 / ingest_seconds;
    assert_eq!(engine.records_ingested() as usize, events);

    // --- phase 3: mixed query workload interleaved with ingest ------------
    // Re-ingest from scratch, chunked; after every chunk fire a query from
    // the rotating mix. The backlog at each query is the ingest lag the
    // protocol's `status.pending` field reports.
    let mut tail = TailReader::new();
    tail.extend(&bytes);
    let mut frames = Vec::with_capacity(events);
    while let Some(frame) = tail.next_record().expect("decode") {
        frames.push(frame);
    }
    let mut session =
        ServeSession::new(ServeEngine::new(&header, ServeConfig::default()).expect("engine"));
    let queries = [
        r#"{"v":1,"id":1,"op":"status"}"#,
        r#"{"v":1,"id":2,"op":"score","user":7}"#,
        r#"{"v":1,"id":3,"op":"page","page":0}"#,
        r#"{"v":1,"id":4,"op":"campaign","campaign":3}"#,
        r#"{"v":1,"id":5,"op":"lockstep"}"#,
        r#"{"v":1,"id":6,"op":"eval","threshold":0.5}"#,
    ];
    let mut lag = Histogram::default();
    let t = Instant::now();
    let mut fired = 0usize;
    for (i, batch) in frames.chunks(chunk).enumerate() {
        for frame in batch {
            session.engine_mut().ingest_frame(frame).expect("ingest");
        }
        let pending = events - (i * chunk + batch.len()).min(events);
        let (response, _) = session.handle_line(queries[i % queries.len()], pending);
        assert!(response.contains("\"ok\":true"), "query failed: {response}");
        lag.record(pending as u64);
        fired += 1;
    }
    let serve_seconds = t.elapsed().as_secs_f64();
    let stats = session.stats().clone();
    let p99_query_ns = stats.p99_query_ns();
    let mean_lag = lag.mean();
    let max_lag = lag.max();

    // --- phase 4: the answers must be right -------------------------------
    let engine = session.engine_mut();
    for &page in &outcome.honeypots {
        let batch = likelab_detect::judge_page(&outcome.world, page, None, &BurstConfig::default());
        let online = engine.detectors_mut().burst_mut().page_verdict(page);
        assert_eq!(
            online.peak_share.to_bits(),
            batch.peak_share.to_bits(),
            "parity violated for page {page:?}"
        );
        assert_eq!(
            (online.events, online.flagged),
            (batch.events, batch.flagged)
        );
    }

    println!("== world_serve: paper preset at scale {scale} ==");
    println!("workers:            {}", exec.worker_count());
    println!("stream records:     {events}");
    println!("ingest:             {ingest_seconds:.3} s ({ingest_events_per_sec:.0} events/s)");
    println!("interleaved:        {serve_seconds:.3} s, {fired} queries (chunk {chunk})");
    println!(
        "query latency:      p99 {:.3} ms (mean {:.3} ms)",
        p99_query_ns as f64 / 1e6,
        stats.query_ns.mean() / 1e6,
    );
    println!("ingest lag:         mean {mean_lag:.0} records, max {max_lag} (bounded by backlog)");
    println!(
        "parity:             online == batch bitwise ({} pages)",
        outcome.honeypots.len()
    );

    // Flat JSON by hand: the bench crate has no serde dependency and the
    // record is a single object.
    let json = format!(
        "{{\n  \"bench\": \"world_serve\",\n  \"scale\": {scale},\n  \"seed\": {seed},\n  \
         \"workers\": {},\n  \"events\": {events},\n  \"chunk\": {chunk},\n  \
         \"ingest_seconds\": {ingest_seconds:.6},\n  \
         \"ingest_events_per_sec\": {ingest_events_per_sec:.1},\n  \
         \"queries\": {fired},\n  \
         \"p99_query_ns\": {p99_query_ns},\n  \
         \"mean_lag_records\": {mean_lag:.1},\n  \
         \"max_lag_records\": {max_lag}\n}}\n",
        exec.worker_count(),
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("written: {}", out_path.display()),
        Err(e) => {
            eprintln!("error: write {}: {e}", out_path.display());
            std::process::exit(1);
        }
    }
}
