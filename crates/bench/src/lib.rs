//! Shared harness for the table/figure regeneration benches.
//!
//! Every bench target regenerates one of the paper's artifacts: it runs the
//! calibrated study once (cached across benches in the same process, scale
//! from `LIKELAB_BENCH_SCALE`, default 0.2), prints the paper-vs-measured
//! rows for EXPERIMENTS.md, and times the analysis that regenerates the
//! artifact from the dataset.

use likelab_core::{run_study, StudyConfig, StudyOutcome};
use std::sync::OnceLock;

/// The scale benches run at (override with `LIKELAB_BENCH_SCALE`).
pub fn bench_scale() -> f64 {
    std::env::var("LIKELAB_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2)
}

/// The cached study outcome all benches share.
pub fn study() -> &'static StudyOutcome {
    static SHARED: OnceLock<StudyOutcome> = OnceLock::new();
    SHARED.get_or_init(|| {
        let scale = bench_scale();
        eprintln!("[likelab-bench] running the study once (seed 42, scale {scale})...");
        let started = std::time::Instant::now();
        let outcome = run_study(&StudyConfig::paper(42, scale));
        eprintln!(
            "[likelab-bench] study ready in {:.1}s ({} campaign likes)",
            started.elapsed().as_secs_f64(),
            outcome.dataset.total_likes()
        );
        outcome
    })
}

/// Print a paper-vs-measured block, prefixed for easy grepping in bench
/// logs (these blocks are the source for EXPERIMENTS.md).
pub fn print_block(title: &str, body: &str) {
    // Printing IS this harness's job: bench logs are the source for
    // EXPERIMENTS.md, so stdout here is deliberate.
    // lint:allow(stdout-in-library)
    println!("\n==== {title} (scale {}) ====", bench_scale());
    for line in body.lines() {
        // lint:allow(stdout-in-library)
        println!("  {line}");
    }
    // lint:allow(stdout-in-library)
    println!();
}

/// Scale a paper count down to the bench scale for comparison.
pub fn scaled(paper_value: usize) -> f64 {
    paper_value as f64 * bench_scale()
}
