//! Checkpoint/resume: freeze a running study mid-event-loop and pick it
//! back up byte-identically after a crash or kill.
//!
//! A checkpoint is two files in the checkpoint directory:
//!
//! * `world.log` — the binary study log, appended continuously as the run
//!   executes. The world is *never* serialized directly; a resume rebuilds
//!   it by replaying the `World` records in the log prefix the checkpoint
//!   pinned.
//! * `checkpoint.json` — everything else the event loop carries
//!   (`CheckpointState`): the pending event queue, the page monitors,
//!   the crawl API and fraud-sweep engines (RNG positions included), the
//!   master RNG, the trace, and the byte offset + sequence number that pin
//!   the log prefix. Written atomically (tmp + rename), so a kill mid-write
//!   leaves the previous checkpoint intact.
//!
//! Because every consumer's state is either in the log or in the snapshot,
//! a resumed run continues the exact event stream the uninterrupted run
//! would have produced: same likes, same sweeps, same crawl faults, same
//! report, byte for byte.

use crate::record::{io_err, parse_records, write_atomic, StudyError, StudyLog, StudyRecord};
use crate::study::{
    collect, event_loop, Capture, Ev, LoopState, RunOptions, StudyConfig, StudyOutcome,
};
use likelab_graph::PageId;
use likelab_honeypot::PageMonitor;
use likelab_osn::population::Population;
use likelab_osn::{CrawlApi, FraudOps, OsnWorld};
use likelab_sim::event::decode_binary;
use likelab_sim::{Engine, EventQueue, Rng, SimTime, Trace};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Everything outside the world that a mid-loop study carries, serialized
/// to `checkpoint.json`. The world itself is rebuilt by replaying the
/// first `log_bytes` bytes of `world.log`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) struct CheckpointState {
    /// The run's full configuration (a resume ignores the caller's config
    /// in favor of this one).
    pub config: StudyConfig,
    /// Byte length of the `world.log` prefix this checkpoint pins.
    pub log_bytes: u64,
    /// The next log sequence number to be assigned after resume.
    pub next_seq: u64,
    /// Simulation clock at the checkpoint.
    pub now: SimTime,
    /// Events fired so far.
    pub fired: u64,
    /// The pending event queue as `(time, seq, event)` entries.
    pub queue: Vec<(SimTime, u64, Ev)>,
    /// The queue's next insertion sequence number.
    pub queue_next_seq: u64,
    /// Per-campaign page monitors (None for inactive campaigns).
    pub monitors: Vec<Option<PageMonitor>>,
    /// Per-campaign scam flags.
    pub inactive: Vec<bool>,
    /// Honeypot pages in campaign order.
    pub honeypots: Vec<PageId>,
    /// Campaign launch time.
    pub launch: SimTime,
    /// End of the study window.
    pub end: SimTime,
    /// The crawl API (fault regimes, RNG streams, stats).
    pub api: CrawlApi,
    /// The anti-fraud sweep engine (RNG stream included).
    pub fraud: FraudOps,
    /// The master RNG, positioned after the `fraud` fork (only the
    /// `baseline` fork remains to be drawn).
    pub rng: Rng,
    /// The run journal so far.
    pub trace: Trace,
    /// Sweep terminations so far.
    pub sweep_terminations: u64,
    /// Population handles (audiences, background catalogue).
    pub population: Population,
}

/// Pin the current log offset and snapshot the loop state into
/// `<dir>/checkpoint.json` (atomically).
pub(crate) fn write_checkpoint(
    dir: &Path,
    state: &LoopState,
    capture: &mut Capture,
) -> Result<(), StudyError> {
    let log = capture
        .log
        .as_mut()
        .expect("checkpointing runs always stream a log");
    log.flush()?;
    let queue = state
        .engine
        .queue()
        .entries()
        .into_iter()
        .map(|(t, s, ev)| (t, s, ev.clone()))
        .collect();
    let cp = CheckpointState {
        config: state.config.clone(),
        log_bytes: log.bytes_written(),
        next_seq: log.next_seq(),
        now: state.engine.now(),
        fired: state.engine.fired(),
        queue,
        queue_next_seq: state.engine.queue().pushed_total(),
        monitors: state.monitors.clone(),
        inactive: state.inactive.clone(),
        honeypots: state.honeypots.clone(),
        launch: state.launch,
        end: state.end,
        api: state.api.clone(),
        fraud: state.fraud.clone(),
        rng: state.rng.clone(),
        trace: state.trace.clone(),
        sweep_terminations: state.sweep_terminations as u64,
        population: state.population.clone(),
    };
    let json = serde_json::to_string_pretty(&cp)
        .map_err(|e| StudyError::Mismatch(format!("checkpoint serialization: {e}")))?;
    write_atomic(&dir.join("checkpoint.json"), &json)?;
    likelab_obs::metrics::counter("checkpoint.written", 1);
    Ok(())
}

/// Load a checkpoint directory and run the study to completion from it.
///
/// The world is rebuilt by replaying the pinned `world.log` prefix; any
/// bytes past the pin (frames appended after the checkpoint, before the
/// kill) are truncated away so appending continues from a consistent
/// state. The outcome is byte-identical to the uninterrupted run.
pub(crate) fn resume_study(opts: &RunOptions) -> Result<StudyOutcome, StudyError> {
    let dir = opts
        .checkpoint_dir
        .as_deref()
        .ok_or_else(|| StudyError::Mismatch("resume requires a checkpoint directory".into()))?;
    let cp_path = dir.join("checkpoint.json");
    let json = std::fs::read_to_string(&cp_path).map_err(|e| io_err(&cp_path, e))?;
    let cp: CheckpointState = serde_json::from_str(&json)
        .map_err(|e| StudyError::Mismatch(format!("{}: {e}", cp_path.display())))?;

    // Rebuild the world from the pinned log prefix.
    let log_path = dir.join("world.log");
    let bytes = std::fs::read(&log_path).map_err(|e| io_err(&log_path, e))?;
    if (bytes.len() as u64) < cp.log_bytes {
        return Err(StudyError::Mismatch(format!(
            "{} is {} bytes but the checkpoint pinned {}",
            log_path.display(),
            bytes.len(),
            cp.log_bytes
        )));
    }
    let (_header, raw) = decode_binary(&bytes[..cp.log_bytes as usize])?;
    let records = parse_records(raw)?;
    let mut world = OsnWorld::new();
    likelab_obs::metrics::timed("log.replay.ns", || {
        for (_seq, record) in &records {
            if let StudyRecord::World(ev) = record {
                world.apply_event(ev);
            }
        }
    });
    likelab_obs::metrics::counter("log.replay", records.len() as u64);
    world.set_recording(true);

    let log = StudyLog::resume_file(&cp.config, &log_path, cp.log_bytes, cp.next_seq)?;
    let mut capture = Capture {
        log: Some(log),
        jsonl_out: None,
    };
    let engine = Engine::from_parts(
        cp.now,
        cp.fired,
        EventQueue::from_entries(cp.queue, cp.queue_next_seq),
    );
    let mut state = LoopState {
        config: cp.config,
        world,
        population: cp.population,
        engine,
        monitors: cp.monitors,
        inactive: cp.inactive,
        honeypots: cp.honeypots,
        launch: cp.launch,
        end: cp.end,
        api: cp.api,
        fraud: cp.fraud,
        rng: cp.rng,
        trace: cp.trace,
        sweep_terminations: cp.sweep_terminations as usize,
    };
    event_loop(&mut state, &mut capture, opts)?;
    collect(state, capture, opts.exec)
}
