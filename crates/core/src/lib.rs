//! # likelab-core — the like-fraud laboratory, assembled
//!
//! Reproduction of **"Paying for Likes? Understanding Facebook Like Fraud
//! Using Honeypots"** (De Cristofaro et al., IMC 2014) as a deterministic
//! simulation study:
//!
//! - [`paper`] — the published tables, figures, and headline numbers as
//!   typed constants (calibration anchors + comparison column);
//! - [`presets`] — the 13 campaigns of Table 1 and the four-farm roster;
//! - [`study`] — [`run_study`]: the full protocol from population synthesis
//!   through crawling, collection, and the month-later termination check,
//!   producing a [`StudyReport`](likelab_analysis::StudyReport) with every
//!   table and figure;
//! - [`shape`] — the reproduction checklist (orderings and factors that
//!   must hold, since absolute numbers can't match a live 2014 platform);
//! - [`sweep`] — [`run_sweep`]: N-seed × M-scale study fan-out with
//!   per-metric mean/std/CI aggregation and deterministic per-run seeds.
//!
//! ```no_run
//! use likelab_core::{run_study, StudyConfig};
//!
//! let outcome = run_study(&StudyConfig::paper(42, 1.0));
//! println!("{}", outcome.report.render());
//! ```

pub mod checkpoint;
pub mod paper;
pub mod presets;
pub mod record;
pub mod replay;
pub mod serve;
pub mod shape;
pub mod study;
pub mod sweep;

pub use record::{read_study_log, StudyError, StudyLog, StudyRecord};
pub use replay::{replay_study, ReplayOptions, ReplayOutcome};
pub use serve::{
    serve, ServeConfig, ServeEngine, ServeOptions, ServeSession, ServeSummary, ServeTransport,
};
pub use shape::{checklist, render_checklist, ShapeCheck};
pub use study::{
    run_study, run_study_opts, run_study_with, LogFormat, RunOptions, StudyConfig, StudyOutcome,
};
pub use sweep::{run_sweep, MetricAggregate, SweepConfig, SweepReport};
