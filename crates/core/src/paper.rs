//! The paper's published numbers, as typed constants.
//!
//! Two uses: (i) calibration anchors for the generative models, and
//! (ii) the "paper" column of EXPERIMENTS.md — every bench prints its
//! measured value next to the matching constant from here.
//!
//! Source: De Cristofaro, Friedman, Jourjon, Kaafar, Shafiq. "Paying for
//! Likes? Understanding Facebook Like Fraud Using Honeypots", IMC 2014
//! (arXiv:1409.2097v2). Table and figure numbers refer to that text.

/// One row of the published Table 1.
#[derive(Clone, Copy, Debug)]
pub struct PaperTable1Row {
    /// Campaign label.
    pub label: &'static str,
    /// Provider.
    pub provider: &'static str,
    /// Location targeted.
    pub location: &'static str,
    /// Budget as printed.
    pub budget: &'static str,
    /// Duration as printed.
    pub duration: &'static str,
    /// Monitoring days (None = campaign never delivered).
    pub monitoring_days: Option<u64>,
    /// Likes garnered (None = inactive).
    pub likes: Option<usize>,
    /// Liker accounts terminated a month later (None = inactive).
    pub terminated: Option<usize>,
}

/// Table 1 as published.
pub const TABLE1: [PaperTable1Row; 13] = [
    PaperTable1Row {
        label: "FB-USA",
        provider: "Facebook.com",
        location: "USA",
        budget: "$6/day",
        duration: "15 days",
        monitoring_days: Some(22),
        likes: Some(32),
        terminated: Some(0),
    },
    PaperTable1Row {
        label: "FB-FRA",
        provider: "Facebook.com",
        location: "France",
        budget: "$6/day",
        duration: "15 days",
        monitoring_days: Some(22),
        likes: Some(44),
        terminated: Some(0),
    },
    PaperTable1Row {
        label: "FB-IND",
        provider: "Facebook.com",
        location: "India",
        budget: "$6/day",
        duration: "15 days",
        monitoring_days: Some(22),
        likes: Some(518),
        terminated: Some(2),
    },
    PaperTable1Row {
        label: "FB-EGY",
        provider: "Facebook.com",
        location: "Egypt",
        budget: "$6/day",
        duration: "15 days",
        monitoring_days: Some(22),
        likes: Some(691),
        terminated: Some(6),
    },
    PaperTable1Row {
        label: "FB-ALL",
        provider: "Facebook.com",
        location: "Worldwide",
        budget: "$6/day",
        duration: "15 days",
        monitoring_days: Some(22),
        likes: Some(484),
        terminated: Some(3),
    },
    PaperTable1Row {
        label: "BL-ALL",
        provider: "BoostLikes.com",
        location: "Worldwide",
        budget: "$70.00",
        duration: "15 days",
        monitoring_days: None,
        likes: None,
        terminated: None,
    },
    PaperTable1Row {
        label: "BL-USA",
        provider: "BoostLikes.com",
        location: "USA",
        budget: "$190.00",
        duration: "15 days",
        monitoring_days: Some(22),
        likes: Some(621),
        terminated: Some(1),
    },
    PaperTable1Row {
        label: "SF-ALL",
        provider: "SocialFormula.com",
        location: "Worldwide",
        budget: "$14.99",
        duration: "3 days",
        monitoring_days: Some(10),
        likes: Some(984),
        terminated: Some(11),
    },
    PaperTable1Row {
        label: "SF-USA",
        provider: "SocialFormula.com",
        location: "USA",
        budget: "$69.99",
        duration: "3 days",
        monitoring_days: Some(10),
        likes: Some(738),
        terminated: Some(9),
    },
    PaperTable1Row {
        label: "AL-ALL",
        provider: "AuthenticLikes.com",
        location: "Worldwide",
        budget: "$49.95",
        duration: "3-5 days",
        monitoring_days: Some(12),
        likes: Some(755),
        terminated: Some(8),
    },
    PaperTable1Row {
        label: "AL-USA",
        provider: "AuthenticLikes.com",
        location: "USA",
        budget: "$59.95",
        duration: "3-5 days",
        monitoring_days: Some(22),
        likes: Some(1038),
        terminated: Some(36),
    },
    PaperTable1Row {
        label: "MS-ALL",
        provider: "MammothSocials.com",
        location: "Worldwide",
        budget: "$20.00",
        duration: "-",
        monitoring_days: None,
        likes: None,
        terminated: None,
    },
    PaperTable1Row {
        label: "MS-USA",
        provider: "MammothSocials.com",
        location: "USA",
        budget: "$95.00",
        duration: "-",
        monitoring_days: Some(12),
        likes: Some(317),
        terminated: Some(9),
    },
];

/// One row of the published Table 2 (percentages).
#[derive(Clone, Copy, Debug)]
pub struct PaperTable2Row {
    /// Campaign label.
    pub label: &'static str,
    /// Percent female.
    pub female_pct: f64,
    /// Percent male.
    pub male_pct: f64,
    /// Percent per age bracket (13-17, 18-24, 25-34, 35-44, 45-54, 55+).
    pub age_pct: [f64; 6],
    /// KL divergence vs. the global platform (None for the global row).
    pub kl: Option<f64>,
}

/// Table 2 as published (the global row last).
pub const TABLE2: [PaperTable2Row; 12] = [
    PaperTable2Row {
        label: "FB-USA",
        female_pct: 54.0,
        male_pct: 46.0,
        age_pct: [54.0, 27.0, 6.8, 6.8, 1.4, 4.1],
        kl: Some(0.45),
    },
    PaperTable2Row {
        label: "FB-FRA",
        female_pct: 46.0,
        male_pct: 54.0,
        age_pct: [60.8, 20.8, 8.7, 2.6, 5.2, 1.7],
        kl: Some(0.54),
    },
    PaperTable2Row {
        label: "FB-IND",
        female_pct: 7.0,
        male_pct: 93.0,
        age_pct: [52.7, 43.5, 2.3, 0.7, 0.5, 0.3],
        kl: Some(1.12),
    },
    PaperTable2Row {
        label: "FB-EGY",
        female_pct: 18.0,
        male_pct: 82.0,
        age_pct: [54.6, 34.4, 6.4, 2.9, 0.8, 0.8],
        kl: Some(0.64),
    },
    PaperTable2Row {
        label: "FB-ALL",
        female_pct: 6.0,
        male_pct: 94.0,
        age_pct: [51.3, 44.4, 2.1, 1.1, 0.5, 0.6],
        kl: Some(1.04),
    },
    PaperTable2Row {
        label: "BL-USA",
        female_pct: 53.0,
        male_pct: 47.0,
        age_pct: [34.2, 54.5, 8.8, 1.5, 0.7, 0.5],
        kl: Some(0.60),
    },
    PaperTable2Row {
        label: "SF-ALL",
        female_pct: 37.0,
        male_pct: 63.0,
        age_pct: [19.8, 33.3, 21.0, 15.2, 7.2, 2.8],
        kl: Some(0.04),
    },
    PaperTable2Row {
        label: "SF-USA",
        female_pct: 37.0,
        male_pct: 63.0,
        age_pct: [22.3, 34.6, 22.9, 11.6, 5.4, 2.9],
        kl: Some(0.04),
    },
    PaperTable2Row {
        label: "AL-ALL",
        female_pct: 42.0,
        male_pct: 58.0,
        age_pct: [15.8, 52.8, 13.4, 9.7, 5.2, 3.0],
        kl: Some(0.12),
    },
    PaperTable2Row {
        label: "AL-USA",
        female_pct: 31.0,
        male_pct: 68.0,
        age_pct: [7.2, 41.0, 35.0, 10.0, 3.5, 2.8],
        kl: Some(0.09),
    },
    PaperTable2Row {
        label: "MS-USA",
        female_pct: 26.0,
        male_pct: 74.0,
        age_pct: [8.6, 46.9, 34.5, 6.4, 1.9, 1.4],
        kl: Some(0.17),
    },
    PaperTable2Row {
        label: "Facebook",
        female_pct: 46.0,
        male_pct: 54.0,
        age_pct: [14.9, 32.3, 26.6, 13.2, 7.2, 5.9],
        kl: None,
    },
];

/// One row of the published Table 3.
#[derive(Clone, Copy, Debug)]
pub struct PaperTable3Row {
    /// Provider group.
    pub provider: &'static str,
    /// Distinct likers.
    pub likers: usize,
    /// Likers with public friend lists.
    pub public_friend_lists: usize,
    /// Percent with public friend lists.
    pub public_pct: f64,
    /// Mean friend count over public profiles.
    pub friends_mean: f64,
    /// Std dev of friend counts.
    pub friends_std: f64,
    /// Median friend count.
    pub friends_median: f64,
    /// Friendships between likers involving this provider.
    pub friendships: usize,
    /// 2-hop friendship relations between likers involving this provider.
    pub two_hop: usize,
}

/// Table 3 as published.
pub const TABLE3: [PaperTable3Row; 6] = [
    PaperTable3Row {
        provider: "Facebook.com",
        likers: 1448,
        public_friend_lists: 261,
        public_pct: 18.0,
        friends_mean: 315.0,
        friends_std: 454.0,
        friends_median: 198.0,
        friendships: 6,
        two_hop: 169,
    },
    PaperTable3Row {
        provider: "BoostLikes.com",
        likers: 621,
        public_friend_lists: 161,
        public_pct: 25.9,
        friends_mean: 1171.0,
        friends_std: 1096.0,
        friends_median: 850.0,
        friendships: 540,
        two_hop: 2987,
    },
    PaperTable3Row {
        provider: "SocialFormula.com",
        likers: 1644,
        public_friend_lists: 954,
        public_pct: 58.0,
        friends_mean: 246.0,
        friends_std: 330.0,
        friends_median: 155.0,
        friendships: 50,
        two_hop: 1132,
    },
    PaperTable3Row {
        provider: "AuthenticLikes.com",
        likers: 1597,
        public_friend_lists: 680,
        public_pct: 42.6,
        friends_mean: 719.0,
        friends_std: 973.0,
        friends_median: 343.0,
        friendships: 64,
        two_hop: 1174,
    },
    PaperTable3Row {
        provider: "MammothSocials.com",
        likers: 121,
        public_friend_lists: 62,
        public_pct: 51.2,
        friends_mean: 250.0,
        friends_std: 585.0,
        friends_median: 68.0,
        friendships: 4,
        two_hop: 129,
    },
    PaperTable3Row {
        provider: "ALMS",
        likers: 213,
        public_friend_lists: 101,
        public_pct: 47.4,
        friends_mean: 426.0,
        friends_std: 961.0,
        friends_median: 46.0,
        friendships: 27,
        two_hop: 229,
    },
];

/// Figure 1 headline: FB-ALL's likes came almost exclusively from India.
pub const FB_ALL_INDIA_SHARE: f64 = 0.96;

/// Figure 1 headline: targeted FB campaigns stayed 87–99.8% in-country.
pub const FB_TARGETED_IN_COUNTRY_MIN: f64 = 0.87;

/// Figure 4: the baseline directory sample's median page-like count.
pub const BASELINE_MEDIAN_LIKES: f64 = 34.0;

/// Figure 4: mean page-like count of average users per the paper's ref.\[16\].
pub const BASELINE_MEAN_LIKES_LITERATURE: f64 = 40.0;

/// Figure 4: BL-USA's anomalously low liker median.
pub const BL_USA_MEDIAN_LIKES: f64 = 63.0;

/// Figure 4: FB-campaign liker medians ranged 600–1000.
pub const FB_CAMPAIGN_MEDIAN_LIKES: (f64, f64) = (600.0, 1000.0);

/// Figure 4: farm-campaign liker medians ranged 1200–1800 (except BL-USA).
pub const FARM_CAMPAIGN_MEDIAN_LIKES: (f64, f64) = (1200.0, 1800.0);

/// §3 totals: likes collected across all campaigns.
pub const TOTAL_CAMPAIGN_LIKES: usize = 6_292;
/// §3 totals: likes from farm campaigns.
pub const TOTAL_FARM_LIKES: usize = 4_523;
/// §3 totals: likes from the legitimate ad campaigns.
pub const TOTAL_AD_LIKES: usize = 1_769;
/// §3 totals: page likes observed across liker profiles (6.3 M).
pub const TOTAL_OBSERVED_PAGE_LIKES: usize = 6_300_000;
/// §3 totals: friendship relations observed (1 M+).
pub const TOTAL_OBSERVED_FRIENDSHIPS: usize = 1_000_000;

/// §5: terminated accounts per provider a month later.
pub const TERMINATED_FACEBOOK: usize = 11;
/// §5: BoostLikes terminations (the stealth farm survived).
pub const TERMINATED_BOOSTLIKES: usize = 1;
/// §5: SocialFormula terminations.
pub const TERMINATED_SOCIALFORMULA: usize = 20;
/// §5: AuthenticLikes terminations.
pub const TERMINATED_AUTHENTICLIKES: usize = 44;
/// §5: MammothSocials terminations.
pub const TERMINATED_MAMMOTHSOCIALS: usize = 9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_match_section3() {
        let farm: usize = TABLE1
            .iter()
            .filter(|r| r.provider != "Facebook.com")
            .filter_map(|r| r.likes)
            .sum();
        let ads: usize = TABLE1
            .iter()
            .filter(|r| r.provider == "Facebook.com")
            .filter_map(|r| r.likes)
            .sum();
        assert_eq!(ads, TOTAL_AD_LIKES);
        // The paper's §3 text says 4,523 farm likes, but its own Table 1
        // column sums to 4,453 — a 70-like discrepancy in the original.
        // We keep the published text constant and document the gap here.
        assert_eq!(farm, 4_453);
        assert_eq!(TOTAL_FARM_LIKES - farm, 70, "the paper's internal gap");
        assert_eq!(farm + ads, TOTAL_CAMPAIGN_LIKES - 70);
    }

    #[test]
    fn termination_constants_match_table1() {
        let by = |p: &str| -> usize {
            TABLE1
                .iter()
                .filter(|r| r.provider == p)
                .filter_map(|r| r.terminated)
                .sum()
        };
        assert_eq!(by("Facebook.com"), TERMINATED_FACEBOOK);
        assert_eq!(by("BoostLikes.com"), TERMINATED_BOOSTLIKES);
        assert_eq!(by("SocialFormula.com"), TERMINATED_SOCIALFORMULA);
        assert_eq!(by("AuthenticLikes.com"), TERMINATED_AUTHENTICLIKES);
        assert_eq!(by("MammothSocials.com"), TERMINATED_MAMMOTHSOCIALS);
    }

    #[test]
    fn table2_rows_sum_to_roughly_100() {
        for r in &TABLE2 {
            let sum: f64 = r.age_pct.iter().sum();
            assert!((sum - 100.0).abs() < 1.5, "{}: ages sum to {sum}", r.label);
            assert!((r.female_pct + r.male_pct - 100.0).abs() < 1.5);
        }
    }

    #[test]
    fn table3_public_pct_is_consistent() {
        for r in &TABLE3 {
            let pct = r.public_friend_lists as f64 / r.likers as f64 * 100.0;
            assert!(
                (pct - r.public_pct).abs() < 1.0,
                "{}: {pct} vs {}",
                r.provider,
                r.public_pct
            );
        }
    }

    #[test]
    fn sf_kl_is_the_smallest_fb_all_among_largest() {
        let kl = |l: &str| {
            TABLE2
                .iter()
                .find(|r| r.label == l)
                .and_then(|r| r.kl)
                .unwrap()
        };
        assert!(kl("SF-ALL") < kl("BL-USA"));
        assert!(kl("SF-ALL") < kl("FB-USA"));
        assert!(kl("FB-IND") > kl("AL-USA") * 10.0);
    }

    #[test]
    fn alms_arithmetic_is_internally_consistent() {
        // 1038 (AL-USA) + 317 (MS-USA) - 213 (ALMS) = 1142 distinct users
        // in the shared USA segment — the wraparound model's capacity.
        assert_eq!(1038 + 317 - 213, 1142);
        // SF: 984 + 738 - 1644 = 78 overlapping accounts.
        assert_eq!(984 + 738 - 1644, 78);
    }
}
