//! The 13 campaign presets of Table 1, the four-farm roster order, and the
//! million-account `scale` population.

use likelab_farms::{FarmSpec, Region};
use likelab_honeypot::{CampaignSpec, Promotion};
use likelab_osn::population::PopulationConfig;
use likelab_osn::{Country, Targeting};

/// Roster index of BoostLikes.
pub const BL: usize = 0;
/// Roster index of SocialFormula.
pub const SF: usize = 1;
/// Roster index of AuthenticLikes.
pub const AL: usize = 2;
/// Roster index of MammothSocials.
pub const MS: usize = 3;

/// The four farms, in roster order.
pub fn paper_farms() -> Vec<FarmSpec> {
    vec![
        FarmSpec::boostlikes(),
        FarmSpec::socialformula(),
        FarmSpec::authenticlikes(),
        FarmSpec::mammothsocials(),
    ]
}

/// Population model for the `scale` preset: a million organic accounts over
/// a 50k-page catalogue. Per-user appetites are trimmed relative to the
/// paper defaults (median 15 likes instead of 34, click-prone 120 instead
/// of 750) and the in-world friend-list share drops to 2%, so the full
/// world lands around 25–30M likes and ~1–2M friendship edges — big enough
/// to exercise the sharded ledger, the CSR graph, and the interned account
/// columns, while staying runnable on one machine. Distributional *shapes*
/// (country mix, Zipf catalogue, privacy rates) are the paper's.
pub fn scale_population() -> PopulationConfig {
    PopulationConfig {
        n_organic: 1_000_000,
        n_background_pages: 50_000,
        organic_like_median: 15.0,
        organic_like_sigma: 0.8,
        click_prone_like_median: 120.0,
        click_prone_like_sigma: 0.7,
        in_world_degree_fraction: 0.02,
        ..PopulationConfig::default()
    }
}

fn ads(label: &str, targeting: Targeting) -> CampaignSpec {
    CampaignSpec {
        label: label.into(),
        promotion: Promotion::PlatformAds {
            targeting,
            daily_budget_cents: 600.0,
            duration_days: 15,
        },
    }
}

fn farm(
    label: &str,
    farm: usize,
    region: Region,
    price_cents: u64,
    duration: &str,
) -> CampaignSpec {
    CampaignSpec {
        label: label.into(),
        promotion: Promotion::FarmOrder {
            farm,
            region,
            likes: 1_000,
            price_cents,
            advertised_duration: duration.into(),
        },
    }
}

/// The paper's 13 campaigns, in Table 1 order.
pub fn paper_campaigns() -> Vec<CampaignSpec> {
    vec![
        ads("FB-USA", Targeting::country(Country::Usa)),
        ads("FB-FRA", Targeting::country(Country::France)),
        ads("FB-IND", Targeting::country(Country::India)),
        ads("FB-EGY", Targeting::country(Country::Egypt)),
        ads("FB-ALL", Targeting::worldwide()),
        farm("BL-ALL", BL, Region::Worldwide, 7_000, "15 days"),
        farm(
            "BL-USA",
            BL,
            Region::Country(Country::Usa),
            19_000,
            "15 days",
        ),
        farm("SF-ALL", SF, Region::Worldwide, 1_499, "3 days"),
        farm("SF-USA", SF, Region::Country(Country::Usa), 6_999, "3 days"),
        farm("AL-ALL", AL, Region::Worldwide, 4_995, "3-5 days"),
        farm(
            "AL-USA",
            AL,
            Region::Country(Country::Usa),
            5_995,
            "3-5 days",
        ),
        farm("MS-ALL", MS, Region::Worldwide, 2_000, "-"),
        farm("MS-USA", MS, Region::Country(Country::Usa), 9_500, "-"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::TABLE1;

    #[test]
    fn labels_match_table1_order() {
        let campaigns = paper_campaigns();
        assert_eq!(campaigns.len(), 13);
        for (c, row) in campaigns.iter().zip(TABLE1.iter()) {
            assert_eq!(c.label, row.label);
        }
    }

    #[test]
    fn table1_columns_render_as_published() {
        let names: Vec<String> = paper_farms().into_iter().map(|f| f.name).collect();
        for (c, row) in paper_campaigns().iter().zip(TABLE1.iter()) {
            assert_eq!(c.provider(&names), row.provider, "{}", c.label);
            assert_eq!(c.location(), row.location, "{}", c.label);
            assert_eq!(c.budget(), row.budget, "{}", c.label);
            assert_eq!(c.duration(), row.duration, "{}", c.label);
        }
    }

    #[test]
    fn scam_orders_are_the_inactive_rows() {
        let farms = paper_farms();
        for c in paper_campaigns() {
            if let Promotion::FarmOrder { farm, region, .. } = &c.promotion {
                let scam = farms[*farm].is_scam(*region);
                let published_inactive = TABLE1
                    .iter()
                    .find(|r| r.label == c.label)
                    .unwrap()
                    .likes
                    .is_none();
                assert_eq!(scam, published_inactive, "{}", c.label);
            }
        }
    }
}
