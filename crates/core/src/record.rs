//! The study log: the record vocabulary and the append-side plumbing.
//!
//! A study run captured with logging on produces a time-ordered stream of
//! [`StudyRecord`]s — every world mutation (as
//! [`WorldEvent`]s), every RNG stream fork (the
//! per-stream provenance), and every measurement artifact the collection
//! pass produced. The stream, prefixed by a header embedding the full
//! [`StudyConfig`](crate::StudyConfig), is *sufficient*: replaying it with
//! [`replay`](crate::replay) reconstructs the final world and dataset
//! byte-for-byte without re-running any model code.
//!
//! [`StudyLog`] is the append side: it assigns monotone sequence numbers,
//! optionally streams frames to a binary sink on disk
//! ([`FrameWriter`]), and keeps an
//! in-memory copy for same-process replay. [`read_study_log`] is the read
//! side, accepting either codec (binary sniffed by magic, JSONL otherwise).

use likelab_graph::PageId;
use likelab_honeypot::{BaselineRecord, CrawlCoverage, LikerRecord, Observation};
use likelab_osn::WorldEvent;
use likelab_sim::event::{
    decode_binary, decode_jsonl, encode_binary, encode_jsonl, FrameWriter, LogError, LogHeader,
    LogRecord, MAGIC,
};
use likelab_sim::SimTime;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// One record in a study log, in stream order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum StudyRecord {
    /// A world mutation (account, page, friendship, like, termination).
    World(WorldEvent),
    /// RNG provenance: the master stream forked a named child here. Replay
    /// never consumes randomness, but the fork order on record is the
    /// ground truth a resumed run must honor.
    RngFork {
        /// The fork label (`population`, `farms`, `ads`, ...).
        label: String,
    },
    /// A campaign's honeypot page went live.
    CampaignLaunched {
        /// Campaign index (into the config's campaign list).
        campaign: usize,
        /// The honeypot page.
        page: PageId,
        /// Launch time.
        at: SimTime,
    },
    /// A campaign turned out to be a scam (charged, delivered nothing).
    CampaignInactive {
        /// Campaign index.
        campaign: usize,
    },
    /// One crawler poll of a campaign's page.
    CrawlObserved {
        /// Campaign index.
        campaign: usize,
        /// The observation.
        observation: Observation,
    },
    /// Monitoring of a campaign ended; final coverage accounting.
    MonitoringEnded {
        /// Campaign index.
        campaign: usize,
        /// Days monitored (None for inactive campaigns).
        monitoring_days: Option<u64>,
        /// Final crawl coverage (profile-side counters included).
        coverage: CrawlCoverage,
    },
    /// One liker profile collected for a campaign.
    ProfileCollected {
        /// Campaign index.
        campaign: usize,
        /// The collected record.
        record: LikerRecord,
    },
    /// The month-later termination probe of a campaign's likers.
    TerminationsProbed {
        /// Campaign index.
        campaign: usize,
        /// Accounts confirmed gone.
        terminated: usize,
        /// Probes that never got an answer.
        unknown: usize,
    },
    /// The directory baseline sample.
    BaselineSampled {
        /// The sampled records, in draw order.
        records: Vec<BaselineRecord>,
    },
}

impl StudyRecord {
    /// The campaign index this record is pinned to, if any — the unit of
    /// incremental re-analysis.
    pub fn campaign(&self) -> Option<usize> {
        match self {
            StudyRecord::CampaignLaunched { campaign, .. }
            | StudyRecord::CampaignInactive { campaign }
            | StudyRecord::CrawlObserved { campaign, .. }
            | StudyRecord::MonitoringEnded { campaign, .. }
            | StudyRecord::ProfileCollected { campaign, .. }
            | StudyRecord::TerminationsProbed { campaign, .. } => Some(*campaign),
            StudyRecord::World(_)
            | StudyRecord::RngFork { .. }
            | StudyRecord::BaselineSampled { .. } => None,
        }
    }
}

/// Why a logged, checkpointed, or replayed study failed.
#[derive(Debug)]
pub enum StudyError {
    /// A log codec failure (truncation, corruption, version skew...).
    Log(LogError),
    /// A filesystem failure, with the offending path.
    Io {
        /// What was being touched.
        path: PathBuf,
        /// The underlying error.
        error: String,
    },
    /// A record decoded but does not parse as a [`StudyRecord`].
    BadRecord {
        /// The record's sequence number.
        seq: u64,
        /// Why it failed to parse.
        reason: String,
    },
    /// A checkpoint or cache does not match the current run.
    Mismatch(String),
    /// The `--crash-after-checkpoints` test hook fired.
    SimulatedCrash {
        /// Checkpoints written before crashing.
        checkpoints: u64,
    },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Log(e) => write!(f, "study log: {e}"),
            StudyError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            StudyError::BadRecord { seq, reason } => {
                write!(f, "record seq {seq} is not a study record: {reason}")
            }
            StudyError::Mismatch(why) => write!(f, "mismatch: {why}"),
            StudyError::SimulatedCrash { checkpoints } => {
                write!(f, "simulated crash after {checkpoints} checkpoint(s)")
            }
        }
    }
}

impl std::error::Error for StudyError {}

impl From<LogError> for StudyError {
    fn from(e: LogError) -> Self {
        StudyError::Log(e)
    }
}

/// Tag an I/O error with the path it happened on.
pub(crate) fn io_err(path: &Path, e: impl fmt::Display) -> StudyError {
    StudyError::Io {
        path: path.to_path_buf(),
        error: e.to_string(),
    }
}

/// The header metadata a study log carries: enough to replay without any
/// out-of-band knowledge.
pub(crate) fn study_meta(config: &crate::StudyConfig) -> Value {
    Value::Object(vec![
        ("kind".into(), Value::Str("likelab-study-log".into())),
        ("seed".into(), Value::UInt(config.seed)),
        ("config".into(), config.to_value()),
    ])
}

/// Extract the [`StudyConfig`](crate::StudyConfig) embedded in a log header.
pub fn config_from_header(header: &LogHeader) -> Result<crate::StudyConfig, StudyError> {
    let config = header
        .meta
        .get("config")
        .ok_or_else(|| StudyError::Mismatch("log header has no `config`".into()))?;
    Deserialize::from_value(config)
        .map_err(|e| StudyError::Mismatch(format!("log header config: {e}")))
}

/// The append side of a study log: monotone sequence numbers, an optional
/// streaming binary sink, and an in-memory record copy for same-process
/// replay.
pub struct StudyLog {
    header: LogHeader,
    records: Vec<(u64, StudyRecord)>,
    next_seq: u64,
    sink: Option<FrameWriter<BufWriter<File>>>,
    sink_path: Option<PathBuf>,
}

impl StudyLog {
    /// An in-memory log for `config`.
    pub fn in_memory(config: &crate::StudyConfig) -> Self {
        StudyLog {
            header: LogHeader::new(study_meta(config)),
            records: Vec::new(),
            next_seq: 0,
            sink: None,
            sink_path: None,
        }
    }

    /// A log that also streams binary frames to `path` (created/truncated).
    pub fn to_file(config: &crate::StudyConfig, path: &Path) -> Result<Self, StudyError> {
        let header = LogHeader::new(study_meta(config));
        let file = File::create(path).map_err(|e| io_err(path, e))?;
        let sink = FrameWriter::new(BufWriter::new(file), &header)?;
        Ok(StudyLog {
            header,
            records: Vec::new(),
            next_seq: 0,
            sink: Some(sink),
            sink_path: Some(path.to_path_buf()),
        })
    }

    /// Reopen `path` for appending after a checkpoint: the file is
    /// truncated back to `bytes` (discarding any frames written after the
    /// checkpoint was pinned) and appending continues at `next_seq`.
    pub fn resume_file(
        config: &crate::StudyConfig,
        path: &Path,
        bytes: u64,
        next_seq: u64,
    ) -> Result<Self, StudyError> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.set_len(bytes).map_err(|e| io_err(path, e))?;
        let mut file = file;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(path, e))?;
        let sink = FrameWriter::resume(BufWriter::new(file), bytes, next_seq.checked_sub(1));
        Ok(StudyLog {
            header: LogHeader::new(study_meta(config)),
            records: Vec::new(),
            next_seq,
            sink: Some(sink),
            sink_path: Some(path.to_path_buf()),
        })
    }

    /// Append one record, returning its sequence number.
    pub fn append(&mut self, record: StudyRecord) -> Result<u64, StudyError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(sink) = &mut self.sink {
            sink.append(seq, &record.to_value())?;
        }
        self.records.push((seq, record));
        likelab_obs::metrics::counter("log.append", 1);
        Ok(seq)
    }

    /// Drain the world's buffered mutation events into the log.
    pub fn drain_world(&mut self, world: &mut likelab_osn::OsnWorld) -> Result<(), StudyError> {
        for ev in world.drain_events() {
            self.append(StudyRecord::World(ev))?;
        }
        Ok(())
    }

    /// Flush the sink (no-op for in-memory logs). Call before pinning a
    /// checkpoint offset.
    pub fn flush(&mut self) -> Result<(), StudyError> {
        if let Some(sink) = &mut self.sink {
            sink.flush()?;
        }
        Ok(())
    }

    /// The next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes written to the sink so far (0 for in-memory logs).
    pub fn bytes_written(&self) -> u64 {
        self.sink.as_ref().map_or(0, FrameWriter::bytes_written)
    }

    /// The sink path, when streaming to disk.
    pub fn sink_path(&self) -> Option<&Path> {
        self.sink_path.as_deref()
    }

    /// The log header.
    pub fn header(&self) -> &LogHeader {
        &self.header
    }

    /// Records captured by *this process* (a resumed run only holds the
    /// post-resume tail; the full stream lives in the sink file).
    pub fn records(&self) -> &[(u64, StudyRecord)] {
        &self.records
    }

    /// Render the captured records as a JSONL log (for diffing/grepping).
    pub fn to_jsonl(&self) -> Result<String, StudyError> {
        let records: Vec<LogRecord> = self
            .records
            .iter()
            .map(|(seq, r)| LogRecord {
                seq: *seq,
                payload: r.to_value(),
            })
            .collect();
        Ok(encode_jsonl(&self.header, &records)?)
    }

    /// Encode the captured records through the binary framing (header,
    /// length-prefixed checksummed frames) — the same bytes a streamed
    /// sink would hold. Used by the `world_log` bench to measure append
    /// throughput without a disk sink in the loop.
    pub fn to_binary(&self) -> Result<Vec<u8>, StudyError> {
        let records: Vec<LogRecord> = self
            .records
            .iter()
            .map(|(seq, r)| LogRecord {
                seq: *seq,
                payload: r.to_value(),
            })
            .collect();
        Ok(encode_binary(&self.header, &records)?)
    }
}

/// Parse decoded log records into study records; any failure names the
/// offending sequence number.
pub(crate) fn parse_records(
    records: Vec<LogRecord>,
) -> Result<Vec<(u64, StudyRecord)>, StudyError> {
    records
        .into_iter()
        .map(|r| {
            let parsed =
                Deserialize::from_value(&r.payload).map_err(|e| StudyError::BadRecord {
                    seq: r.seq,
                    reason: e.to_string(),
                })?;
            Ok((r.seq, parsed))
        })
        .collect()
}

/// Read a study log from disk: binary (sniffed by the `LLOG` magic) or
/// JSONL. Strict end to end — truncation, corruption, version skew, or an
/// unparseable record is a hard error, never a partial stream.
pub fn read_study_log(path: &Path) -> Result<(LogHeader, Vec<(u64, StudyRecord)>), StudyError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let (header, raw) = if bytes.starts_with(&MAGIC) {
        decode_binary(&bytes)?
    } else {
        let text = String::from_utf8(bytes)
            .map_err(|e| io_err(path, format!("not utf-8 (and not a binary log): {e}")))?;
        decode_jsonl(&text)?
    };
    Ok((header, parse_records(raw)?))
}

/// Write a text file atomically: write to a sibling `.tmp`, then rename.
pub(crate) fn write_atomic(path: &Path, content: &str) -> Result<(), StudyError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(content.as_bytes())
            .map_err(|e| io_err(&tmp, e))?;
        f.flush().map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    Ok(())
}
