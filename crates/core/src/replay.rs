//! Replay: rebuild a study's world, dataset, and report from a captured
//! log — no model code, no randomness, byte-identical output.
//!
//! A full replay applies every `World` record to a fresh
//! [`OsnWorld`] and reassembles the
//! [`Dataset`] from the measurement records
//! (observations, collected profiles, termination probes, the baseline
//! sample). Only the derived layers — per-page audience reports, the
//! global report, the study report — are recomputed, and those are pure
//! functions of the replayed world and dataset, so the rendered report and
//! checklist match the original run byte for byte at any worker count.
//!
//! Incremental re-analysis ([`ReplayOptions::from_seq`]) recomputes only
//! the campaigns touched by records past a sequence number, loading the
//! untouched campaigns' data from a cache directory populated by an
//! earlier replay.

use crate::record::{
    config_from_header, io_err, read_study_log, write_atomic, StudyError, StudyRecord,
};
use crate::study::StudyConfig;
use likelab_analysis::StudyReport;
use likelab_graph::{PageId, UserId};
use likelab_honeypot::{
    BaselineRecord, CampaignData, CrawlCoverage, Dataset, LikerRecord, Observation,
};
use likelab_osn::{AudienceReport, OsnWorld, WorldEvent};
use likelab_sim::event::LogHeader;
use likelab_sim::{Exec, SimTime};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Knobs for [`replay_study`].
#[derive(Clone, Debug)]
pub struct ReplayOptions {
    /// Execution policy for the recomputed report stages.
    pub exec: Exec,
    /// Incremental mode: only recompute campaigns touched by records with
    /// a sequence number strictly greater than this; load the rest from
    /// `cache_dir`.
    pub from_seq: Option<u64>,
    /// Campaign-data cache directory: written on a full replay, read (and
    /// refreshed for touched campaigns) in incremental mode.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            exec: Exec::auto(),
            from_seq: None,
            cache_dir: None,
        }
    }
}

/// What a replay produced.
pub struct ReplayOutcome {
    /// The configuration embedded in the log header.
    pub config: StudyConfig,
    /// The reassembled dataset — identical to the original run's.
    pub dataset: Dataset,
    /// The recomputed report — identical to the original run's.
    pub report: StudyReport,
    /// The replayed final world state.
    pub world: OsnWorld,
    /// Campaign indices recomputed this replay.
    pub recomputed: Vec<usize>,
    /// Campaign indices served from the cache.
    pub cached: Vec<usize>,
}

/// Per-campaign accumulators scraped from the record stream.
#[derive(Clone, Default)]
struct CampaignSlot {
    page: Option<PageId>,
    inactive: bool,
    observations: Vec<Observation>,
    likers: Vec<LikerRecord>,
    monitoring_days: Option<u64>,
    coverage: CrawlCoverage,
    terminated: usize,
    unknown: usize,
}

/// Replay a study log from disk. See the module docs.
pub fn replay_study(path: &Path, opts: &ReplayOptions) -> Result<ReplayOutcome, StudyError> {
    let (header, records) = read_study_log(path)?;
    replay_records(&header, records, opts)
}

/// Replay an already-decoded record stream.
pub fn replay_records(
    header: &LogHeader,
    records: Vec<(u64, StudyRecord)>,
    opts: &ReplayOptions,
) -> Result<ReplayOutcome, StudyError> {
    let config = config_from_header(header)?;
    let n = config.campaigns.len();
    let mut world = OsnWorld::new();
    let mut slots: Vec<CampaignSlot> = vec![CampaignSlot::default(); n];
    let mut baseline: Vec<BaselineRecord> = Vec::new();
    let mut launch: Option<SimTime> = None;

    // Touched-campaign tracking for incremental mode.
    let from_seq = opts.from_seq;
    let mut touched: BTreeSet<usize> = BTreeSet::new();
    let mut page_to_campaign: BTreeMap<PageId, usize> = BTreeMap::new();
    let mut late_terminated: BTreeSet<UserId> = BTreeSet::new();

    let record_count = records.len() as u64;
    let result: Result<(), StudyError> = likelab_obs::metrics::timed("log.replay.ns", || {
        for (seq, record) in records {
            let late = from_seq.is_some_and(|s| seq > s);
            if late {
                if let Some(c) = record.campaign() {
                    touched.insert(c);
                }
            }
            match record {
                StudyRecord::World(ev) => {
                    if late {
                        match &ev {
                            WorldEvent::Like { page, .. } => {
                                if let Some(c) = page_to_campaign.get(page) {
                                    touched.insert(*c);
                                }
                            }
                            WorldEvent::LikeBatch { likes } => {
                                for (_, page, _) in likes {
                                    if let Some(c) = page_to_campaign.get(page) {
                                        touched.insert(*c);
                                    }
                                }
                            }
                            WorldEvent::Terminated { user, .. }
                            | WorldEvent::Reinstated { user } => {
                                late_terminated.insert(*user);
                            }
                            _ => {}
                        }
                    }
                    world.apply_event(&ev);
                }
                StudyRecord::RngFork { .. } => {}
                StudyRecord::CampaignLaunched { campaign, page, at } => {
                    let slot = slot(&mut slots, campaign, seq)?;
                    slot.page = Some(page);
                    page_to_campaign.insert(page, campaign);
                    launch.get_or_insert(at);
                }
                StudyRecord::CampaignInactive { campaign } => {
                    slot(&mut slots, campaign, seq)?.inactive = true;
                }
                StudyRecord::CrawlObserved {
                    campaign,
                    observation,
                } => {
                    slot(&mut slots, campaign, seq)?
                        .observations
                        .push(observation);
                }
                StudyRecord::MonitoringEnded {
                    campaign,
                    monitoring_days,
                    coverage,
                } => {
                    let s = slot(&mut slots, campaign, seq)?;
                    s.monitoring_days = monitoring_days;
                    s.coverage = coverage;
                }
                StudyRecord::ProfileCollected { campaign, record } => {
                    slot(&mut slots, campaign, seq)?.likers.push(record);
                }
                StudyRecord::TerminationsProbed {
                    campaign,
                    terminated,
                    unknown,
                } => {
                    let s = slot(&mut slots, campaign, seq)?;
                    s.terminated = terminated;
                    s.unknown = unknown;
                }
                StudyRecord::BaselineSampled { records } => {
                    baseline = records;
                }
            }
        }
        Ok(())
    });
    result?;
    likelab_obs::metrics::counter("log.replay", record_count);

    // A termination/reinstatement past the cutoff touches every campaign
    // whose collected likers include that account (its audience report and
    // liker records change).
    if from_seq.is_some() {
        for (i, s) in slots.iter().enumerate() {
            if s.likers.iter().any(|l| late_terminated.contains(&l.user)) {
                touched.insert(i);
            }
        }
    } else {
        touched.extend(0..n);
    }

    let mut recomputed = Vec::new();
    let mut cached = Vec::new();
    let mut campaigns_data = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        if touched.contains(&i) {
            let page = slot.page.ok_or_else(|| {
                StudyError::Mismatch(format!("campaign #{i} never launched in this log"))
            })?;
            let data = CampaignData {
                spec: config.campaigns[i].clone(),
                page,
                observations: slot.observations,
                likers: slot.likers,
                report: AudienceReport::for_page(&world, page),
                monitoring_days: slot.monitoring_days,
                terminated_after_month: slot.terminated,
                termination_unknown: slot.unknown,
                inactive: slot.inactive,
                coverage: slot.coverage,
            };
            if let Some(dir) = &opts.cache_dir {
                write_cache_entry(dir, i, &data)?;
            }
            recomputed.push(i);
            campaigns_data.push(data);
        } else {
            let dir = opts.cache_dir.as_deref().ok_or_else(|| {
                StudyError::Mismatch("incremental replay needs a cache directory".into())
            })?;
            cached.push(i);
            campaigns_data.push(read_cache_entry(dir, i, &config)?);
        }
    }
    if let Some(dir) = &opts.cache_dir {
        write_cache_meta(dir, &config)?;
    }

    let dataset = Dataset {
        campaigns: campaigns_data,
        baseline,
        launch: launch.unwrap_or(SimTime::EPOCH),
        global_report: AudienceReport::global_with(&world, opts.exec),
    };
    let report = StudyReport::compute_with(&dataset, opts.exec);
    Ok(ReplayOutcome {
        config,
        dataset,
        report,
        world,
        recomputed,
        cached,
    })
}

/// Bounds-checked slot access: a campaign index past the config's campaign
/// list means the log and its header disagree.
fn slot(
    slots: &mut [CampaignSlot],
    campaign: usize,
    seq: u64,
) -> Result<&mut CampaignSlot, StudyError> {
    let n = slots.len();
    slots
        .get_mut(campaign)
        .ok_or_else(|| StudyError::BadRecord {
            seq,
            reason: format!("campaign index {campaign} out of range (config has {n})"),
        })
}

fn cache_entry_path(dir: &Path, campaign: usize) -> PathBuf {
    dir.join(format!("campaign_{campaign:02}.json"))
}

fn write_cache_entry(dir: &Path, campaign: usize, data: &CampaignData) -> Result<(), StudyError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let json = serde_json::to_string(data)
        .map_err(|e| StudyError::Mismatch(format!("cache serialization: {e}")))?;
    write_atomic(&cache_entry_path(dir, campaign), &json)
}

fn read_cache_entry(
    dir: &Path,
    campaign: usize,
    config: &StudyConfig,
) -> Result<CampaignData, StudyError> {
    check_cache_meta(dir, config)?;
    let path = cache_entry_path(dir, campaign);
    let json = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
    serde_json::from_str(&json)
        .map_err(|e| StudyError::Mismatch(format!("{}: {e}", path.display())))
}

fn cache_meta_json(config: &StudyConfig) -> Result<String, StudyError> {
    let meta = serde::Value::Object(vec![
        (
            "kind".into(),
            serde::Value::Str("likelab-replay-cache".into()),
        ),
        ("config".into(), config.to_value()),
    ]);
    serde_json::to_string_pretty(&meta)
        .map_err(|e| StudyError::Mismatch(format!("cache meta serialization: {e}")))
}

fn write_cache_meta(dir: &Path, config: &StudyConfig) -> Result<(), StudyError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    write_atomic(&dir.join("meta.json"), &cache_meta_json(config)?)
}

/// An incremental replay may only reuse cache entries produced under the
/// identical configuration.
fn check_cache_meta(dir: &Path, config: &StudyConfig) -> Result<(), StudyError> {
    let path = dir.join("meta.json");
    let found = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
    if found != cache_meta_json(config)? {
        return Err(StudyError::Mismatch(format!(
            "{} was written under a different study config",
            path.display()
        )));
    }
    Ok(())
}
