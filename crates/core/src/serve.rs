//! `likelab serve` — the long-running scoring service over a live study
//! log.
//!
//! Replay ([`crate::replay`]) answers "what happened" after a run is over;
//! serve answers "what is happening" while the log is still being written.
//! The engine tails a `world.log` stream (file-follow via
//! [`FollowReader`], or any already-decoded record feed), folds every
//! record into a live world replica through the acceptance-preserving
//! [`EventFanout`], routes the resulting
//! [`DetectorUpdate`](likelab_osn::DetectorUpdate)s into the
//! [`OnlineDetectors`] suite, and answers queries over a line-delimited
//! JSON protocol (stdin/stdout or TCP) with bounded latency: ingest
//! happens in chunks of [`ServeConfig::chunk`] records, and all pending
//! queries are answered between chunks, so a query never waits for the
//! whole backlog.
//!
//! The full architecture, the versioned protocol schema, windowing
//! semantics, and the online-vs-batch equivalence contract live in
//! `SERVING.md` at the repository root.

use crate::record::{io_err, StudyError, StudyRecord};
use crate::study::StudyConfig;
use likelab_detect::online::{organic_seeds, score_online, OnlineDetectors};
use likelab_detect::{BurstConfig, LockstepConfig, ScorerWeights, SybilRankConfig};
use likelab_graph::{PageId, UserId};
use likelab_honeypot::CrawlCoverage;
use likelab_obs::Histogram;
use likelab_osn::EventFanout;
use likelab_sim::event::{LogHeader, LogRecord};
use likelab_sim::{FollowReader, SimTime};
use serde::{Deserialize, Value};
use std::collections::VecDeque;
use std::io::{BufRead, Write as _};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

/// The protocol version this build speaks. Requests carrying any other
/// `v` are rejected; see `SERVING.md` for the compatibility policy.
pub const PROTOCOL_VERSION: u64 = 1;

/// Detector and service knobs for [`ServeEngine`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Burst-detector parameters (window, share threshold, min events).
    pub burst: BurstConfig,
    /// Lockstep-detector parameters.
    pub lockstep: LockstepConfig,
    /// SybilRank parameters.
    pub sybil: SybilRankConfig,
    /// Scorer weights for `score`/`eval` queries.
    pub weights: ScorerWeights,
    /// Trust-seed stride: every `seed_stride`-th ground-truth organic
    /// account seeds SybilRank (the batch evaluation convention).
    pub seed_stride: usize,
    /// Ingest chunk size: at most this many records are folded between
    /// query-service turns, which bounds query latency under backlog.
    pub chunk: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            burst: BurstConfig::default(),
            lockstep: LockstepConfig::default(),
            sybil: SybilRankConfig::default(),
            weights: ScorerWeights::default(),
            seed_stride: 500,
            chunk: 4_096,
        }
    }
}

/// Per-campaign accumulators scraped from the measurement records —
/// the streaming counterpart of replay's campaign slots.
#[derive(Clone, Default)]
struct ServeSlot {
    page: Option<PageId>,
    launched_at: Option<SimTime>,
    inactive: bool,
    observations: usize,
    likers: usize,
    monitoring_days: Option<u64>,
    coverage: CrawlCoverage,
    monitoring_ended: bool,
    terminated: usize,
    unknown: usize,
}

/// The incremental fold behind `likelab serve`: a live world replica, the
/// online detector suite, and per-campaign measurement accumulators, all
/// advanced one [`StudyRecord`] at a time.
///
/// ```
/// use likelab_core::serve::{ServeConfig, ServeEngine};
/// use likelab_core::{run_study_opts, RunOptions, StudyConfig};
///
/// let outcome = run_study_opts(
///     &StudyConfig::paper(42, 0.02),
///     &RunOptions { capture_log: true, ..RunOptions::default() },
/// )
/// .unwrap();
/// let log = outcome.log.unwrap();
/// let mut engine = ServeEngine::new(log.header(), ServeConfig::default()).unwrap();
/// for (seq, record) in log.records() {
///     engine.ingest(*seq, record.clone()).unwrap();
/// }
/// assert_eq!(engine.records_ingested(), log.records().len() as u64);
/// assert!(engine.world().likes().len() > 0);
/// ```
pub struct ServeEngine {
    config: StudyConfig,
    serve: ServeConfig,
    fanout: EventFanout,
    detectors: OnlineDetectors,
    slots: Vec<ServeSlot>,
    baseline_records: usize,
    launch: Option<SimTime>,
    records: u64,
    last_seq: Option<u64>,
}

impl ServeEngine {
    /// An engine for the study described by `header` (the log's embedded
    /// [`StudyConfig`] sizes the campaign table).
    pub fn new(header: &LogHeader, serve: ServeConfig) -> Result<Self, StudyError> {
        let config = crate::record::config_from_header(header)?;
        let n = config.campaigns.len();
        Ok(ServeEngine {
            config,
            detectors: OnlineDetectors::new(serve.burst, serve.lockstep, serve.sybil),
            serve,
            fanout: EventFanout::new(),
            slots: vec![ServeSlot::default(); n],
            baseline_records: 0,
            launch: None,
            records: 0,
            last_seq: None,
        })
    }

    /// Fold one study record into the live state.
    pub fn ingest(&mut self, seq: u64, record: StudyRecord) -> Result<(), StudyError> {
        match record {
            StudyRecord::World(ev) => {
                let detectors = &mut self.detectors;
                self.fanout.apply(&ev, |update| detectors.apply(update));
            }
            StudyRecord::RngFork { .. } => {}
            StudyRecord::CampaignLaunched { campaign, page, at } => {
                let slot = self.slot(campaign, seq)?;
                slot.page = Some(page);
                slot.launched_at = Some(at);
                self.launch.get_or_insert(at);
            }
            StudyRecord::CampaignInactive { campaign } => {
                self.slot(campaign, seq)?.inactive = true;
            }
            StudyRecord::CrawlObserved { campaign, .. } => {
                self.slot(campaign, seq)?.observations += 1;
            }
            StudyRecord::MonitoringEnded {
                campaign,
                monitoring_days,
                coverage,
            } => {
                let slot = self.slot(campaign, seq)?;
                slot.monitoring_days = monitoring_days;
                slot.coverage = coverage;
                slot.monitoring_ended = true;
            }
            StudyRecord::ProfileCollected { campaign, .. } => {
                self.slot(campaign, seq)?.likers += 1;
            }
            StudyRecord::TerminationsProbed {
                campaign,
                terminated,
                unknown,
            } => {
                let slot = self.slot(campaign, seq)?;
                slot.terminated = terminated;
                slot.unknown = unknown;
            }
            StudyRecord::BaselineSampled { records } => {
                self.baseline_records = records.len();
            }
        }
        self.records += 1;
        self.last_seq = Some(seq);
        likelab_obs::metrics::counter("serve.ingest.records", 1);
        Ok(())
    }

    /// Parse a decoded log frame and fold it in.
    pub fn ingest_frame(&mut self, frame: &LogRecord) -> Result<(), StudyError> {
        let record: StudyRecord =
            Deserialize::from_value(&frame.payload).map_err(|e| StudyError::BadRecord {
                seq: frame.seq,
                reason: e.to_string(),
            })?;
        self.ingest(frame.seq, record)
    }

    fn slot(&mut self, campaign: usize, seq: u64) -> Result<&mut ServeSlot, StudyError> {
        let n = self.slots.len();
        self.slots
            .get_mut(campaign)
            .ok_or_else(|| StudyError::BadRecord {
                seq,
                reason: format!("campaign index {campaign} out of range (config has {n})"),
            })
    }

    /// The study configuration embedded in the log header.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The live world replica.
    pub fn world(&self) -> &likelab_osn::OsnWorld {
        self.fanout.world()
    }

    /// The online detector suite (for direct, non-protocol access).
    pub fn detectors_mut(&mut self) -> &mut OnlineDetectors {
        &mut self.detectors
    }

    /// Records folded so far.
    pub fn records_ingested(&self) -> u64 {
        self.records
    }

    /// The highest sequence number folded so far.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// The stream watermark: the maximum event timestamp seen. Online
    /// feature extraction evaluates account age against this clock; at
    /// end-of-stream it equals the batch pipeline's study-end clock.
    pub fn watermark(&self) -> SimTime {
        self.fanout.watermark()
    }

    /// The online fraud score of one account at the current watermark,
    /// with this engine's configured weights. Splits the world/detector
    /// borrows internally so callers don't have to.
    pub fn online_score(&mut self, user: UserId) -> f64 {
        let now = self.fanout.watermark();
        score_online(
            self.fanout.world(),
            self.detectors.burst_mut(),
            user,
            now,
            &self.serve.weights,
        )
    }

    // --- query handlers ----------------------------------------------------

    /// Answer one parsed query. `pending` is the ingest backlog (records
    /// decoded but not yet folded) at the time the query is served; it is
    /// echoed in `status` responses as the instantaneous ingest lag.
    pub fn query(&mut self, op: &str, params: &Value, pending: usize) -> Result<Value, String> {
        match op {
            "status" => Ok(self.q_status(pending)),
            "score" => self.q_score(params),
            "page" => self.q_page(params),
            "campaign" => self.q_campaign(params),
            "lockstep" => Ok(self.q_lockstep()),
            "sybil" => self.q_sybil(params),
            "eval" => self.q_eval(params),
            other => Err(format!(
                "unknown op `{other}` (status|score|page|campaign|lockstep|sybil|eval|shutdown)"
            )),
        }
    }

    fn q_status(&self, pending: usize) -> Value {
        let world = self.fanout.world();
        let launched = self.slots.iter().filter(|s| s.page.is_some()).count();
        let ended = self.slots.iter().filter(|s| s.monitoring_ended).count();
        obj(vec![
            ("records", Value::UInt(self.records)),
            ("last_seq", opt_uint(self.last_seq)),
            ("pending", Value::UInt(pending as u64)),
            ("watermark_secs", Value::UInt(self.watermark().as_secs())),
            ("accounts", Value::UInt(world.account_count() as u64)),
            ("pages", Value::UInt(world.page_count() as u64)),
            ("likes", Value::UInt(world.likes().len() as u64)),
            ("edges", Value::UInt(world.friends().edge_count() as u64)),
            ("campaigns", Value::UInt(self.slots.len() as u64)),
            ("campaigns_launched", Value::UInt(launched as u64)),
            ("campaigns_ended", Value::UInt(ended as u64)),
            (
                "baseline_records",
                Value::UInt(self.baseline_records as u64),
            ),
        ])
    }

    fn q_score(&mut self, params: &Value) -> Result<Value, String> {
        let user = param_u64(params, "user")?;
        let world = self.fanout.world();
        if user >= world.account_count() as u64 {
            return Err(format!("unknown user {user}"));
        }
        let u = UserId(user as u32);
        let now = self.fanout.watermark();
        let score = score_online(
            self.fanout.world(),
            self.detectors.burst_mut(),
            u,
            now,
            &self.serve.weights,
        );
        let verdict = self.detectors.burst_mut().user_verdict(u);
        let world = self.fanout.world();
        Ok(obj(vec![
            ("user", Value::UInt(user)),
            ("score", Value::Float(score)),
            ("burst_share", Value::Float(verdict.peak_share)),
            ("burst_events", Value::UInt(verdict.events as u64)),
            ("burst_flagged", Value::Bool(verdict.flagged)),
            (
                "likes",
                Value::UInt(world.likes().user_like_count(u) as u64),
            ),
            ("friends", Value::UInt(world.total_friend_count(u) as u64)),
            ("active", Value::Bool(world.is_active(u))),
        ]))
    }

    fn q_page(&mut self, params: &Value) -> Result<Value, String> {
        let page = param_u64(params, "page")?;
        if page >= self.fanout.world().page_count() as u64 {
            return Err(format!("unknown page {page}"));
        }
        let p = PageId(page as u32);
        let verdict = self.detectors.burst_mut().page_verdict(p);
        Ok(obj(vec![
            ("page", Value::UInt(page)),
            (
                "likes",
                Value::UInt(self.fanout.world().likes().page_like_count(p) as u64),
            ),
            ("burst_share", Value::Float(verdict.peak_share)),
            ("burst_events", Value::UInt(verdict.events as u64)),
            ("burst_flagged", Value::Bool(verdict.flagged)),
        ]))
    }

    fn q_campaign(&mut self, params: &Value) -> Result<Value, String> {
        let i = param_u64(params, "campaign")? as usize;
        let label = self
            .config
            .campaigns
            .get(i)
            .map(|c| c.label.clone())
            .ok_or_else(|| format!("unknown campaign {i}"))?;
        // The campaigns check above implies a slot exists, but `i` came off
        // the wire: a malformed request must answer with an error, never
        // panic the service.
        let slot = self
            .slots
            .get(i)
            .cloned()
            .ok_or_else(|| format!("unknown campaign {i}"))?;
        let page_likes = slot
            .page
            .map(|p| self.fanout.world().likes().page_like_count(p))
            .unwrap_or(0);
        Ok(obj(vec![
            ("campaign", Value::UInt(i as u64)),
            ("label", Value::Str(label)),
            (
                "page",
                slot.page
                    .map(|p| Value::UInt(u64::from(p.0)))
                    .unwrap_or(Value::Null),
            ),
            ("launched", Value::Bool(slot.page.is_some())),
            ("inactive", Value::Bool(slot.inactive)),
            ("likes", Value::UInt(page_likes as u64)),
            ("observations", Value::UInt(slot.observations as u64)),
            ("likers_collected", Value::UInt(slot.likers as u64)),
            ("monitoring_ended", Value::Bool(slot.monitoring_ended)),
            ("monitoring_days", opt_uint(slot.monitoring_days)),
            (
                "poll_success_rate",
                Value::Float(slot.coverage.poll_success_rate()),
            ),
            (
                "profile_coverage",
                Value::Float(slot.coverage.profile_coverage()),
            ),
            ("terminated", Value::UInt(slot.terminated as u64)),
            ("termination_unknown", Value::UInt(slot.unknown as u64)),
        ]))
    }

    fn q_lockstep(&mut self) -> Value {
        let report = self.detectors.lockstep().report();
        let flagged = report.flagged().len();
        let largest = report.clusters.first().map_or(0, Vec::len);
        obj(vec![
            ("clusters", Value::UInt(report.clusters.len() as u64)),
            ("flagged", Value::UInt(flagged as u64)),
            ("largest", Value::UInt(largest as u64)),
        ])
    }

    fn q_sybil(&mut self, params: &Value) -> Result<Value, String> {
        let user = param_u64(params, "user")?;
        let world = self.fanout.world();
        if user >= world.account_count() as u64 {
            return Err(format!("unknown user {user}"));
        }
        let seeds = organic_seeds(world, self.serve.seed_stride);
        let sybil = self.detectors.sybilrank_mut();
        let was_dirty = sybil.is_dirty();
        let trust = sybil
            .refresh(world.friends(), &seeds)
            .trust(UserId(user as u32));
        Ok(obj(vec![
            ("user", Value::UInt(user)),
            ("trust", Value::Float(trust)),
            ("seeds", Value::UInt(seeds.len() as u64)),
            ("recomputed", Value::Bool(was_dirty)),
        ]))
    }

    /// Ground-truth precision/recall of the online scorer at a threshold.
    /// The one query allowed to peek at actor-class labels — the serve-side
    /// counterpart of the batch `eval` module.
    fn q_eval(&mut self, params: &Value) -> Result<Value, String> {
        let threshold = match params.get("threshold") {
            None | Some(Value::Null) => 0.5,
            Some(Value::Float(f)) => *f,
            Some(Value::UInt(n)) => *n as f64,
            Some(other) => return Err(format!("bad threshold: {}", other.kind())),
        };
        let now = self.fanout.watermark();
        let n = self.fanout.world().account_count() as u32;
        let (mut tp, mut fp, mut fn_, mut tn) = (0u64, 0u64, 0u64, 0u64);
        for i in 0..n {
            let u = UserId(i);
            let s = score_online(
                self.fanout.world(),
                self.detectors.burst_mut(),
                u,
                now,
                &self.serve.weights,
            );
            let predicted = s >= threshold;
            let actual = self.fanout.world().account(u).class.is_farm();
            match (predicted, actual) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => tn += 1,
            }
        }
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Ok(obj(vec![
            ("threshold", Value::Float(threshold)),
            ("accounts", Value::UInt(u64::from(n))),
            ("tp", Value::UInt(tp)),
            ("fp", Value::UInt(fp)),
            ("fn", Value::UInt(fn_)),
            ("tn", Value::UInt(tn)),
            ("precision", Value::Float(precision)),
            ("recall", Value::Float(recall)),
            ("f1", Value::Float(f1)),
        ]))
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn opt_uint(v: Option<u64>) -> Value {
    v.map(Value::UInt).unwrap_or(Value::Null)
}

fn param_u64(params: &Value, name: &str) -> Result<u64, String> {
    match params.get(name) {
        Some(Value::UInt(n)) => Ok(*n),
        Some(other) => Err(format!("`{name}` must be an integer, got {}", other.kind())),
        None => Err(format!("missing required param `{name}`")),
    }
}

/// The protocol layer: one JSON request line in, one JSON response line
/// out. See `SERVING.md` § protocol for the schema.
pub struct ServeSession {
    engine: ServeEngine,
    stats: ServeStats,
}

/// Service-side accounting, reported by [`serve`] and the bench.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Queries answered (including errors).
    pub queries: u64,
    /// Query-service latency histogram, nanoseconds.
    pub query_ns: Histogram,
    /// Largest ingest backlog observed at query time, in records.
    pub max_lag_records: u64,
}

impl ServeStats {
    /// Upper-bound p99 query latency in nanoseconds.
    pub fn p99_query_ns(&self) -> u64 {
        self.query_ns.quantile(0.99)
    }
}

impl ServeSession {
    /// Wrap an engine in the protocol layer.
    pub fn new(engine: ServeEngine) -> Self {
        ServeSession {
            engine,
            stats: ServeStats::default(),
        }
    }

    /// The engine, for direct ingest.
    pub fn engine_mut(&mut self) -> &mut ServeEngine {
        &mut self.engine
    }

    /// Accumulated service stats.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Handle one request line; always returns a well-formed response
    /// line (errors are `ok:false` responses, never panics). `pending` is
    /// the current ingest backlog in records. Returns the response plus
    /// whether the request asked the server to shut down.
    pub fn handle_line(&mut self, line: &str, pending: usize) -> (String, bool) {
        // lint:allow(ambient-time): wall-clock query latency feeds the
        // observability histograms only, never a simulation result
        let started = std::time::Instant::now();
        self.stats.queries += 1;
        self.stats.max_lag_records = self.stats.max_lag_records.max(pending as u64);
        likelab_obs::metrics::record_ns("serve.query.lag.records", pending as u64);
        let (response, shutdown) = self.handle_inner(line, pending);
        let elapsed = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.stats.query_ns.record(elapsed);
        likelab_obs::metrics::record_ns("serve.query.ns", elapsed);
        (response, shutdown)
    }

    fn handle_inner(&mut self, line: &str, pending: usize) -> (String, bool) {
        let request: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                return (
                    error_line(&Value::Null, &format!("bad request JSON: {e}")),
                    false,
                )
            }
        };
        let id = request.get("id").cloned().unwrap_or(Value::Null);
        match request.get("v") {
            Some(Value::UInt(PROTOCOL_VERSION)) => {}
            Some(other) => {
                let msg = format!(
                    "unsupported protocol version {other:?} (this server speaks v{PROTOCOL_VERSION})"
                );
                return (error_line(&id, &msg), false);
            }
            None => {
                return (
                    error_line(&id, "missing `v` (protocol version) field"),
                    false,
                )
            }
        }
        let Some(op) = request.get("op").and_then(Value::as_str) else {
            return (error_line(&id, "missing `op` field"), false);
        };
        if op == "shutdown" {
            let data = obj(vec![("stopping", Value::Bool(true))]);
            return (ok_line(&id, data), true);
        }
        let line = match self.engine.query(op, &request, pending) {
            Ok(data) => ok_line(&id, data),
            Err(e) => error_line(&id, &e),
        };
        (line, false)
    }
}

fn ok_line(id: &Value, data: Value) -> String {
    let response = Value::Object(vec![
        ("v".into(), Value::UInt(PROTOCOL_VERSION)),
        ("id".into(), id.clone()),
        ("ok".into(), Value::Bool(true)),
        ("data".into(), data),
    ]);
    serde_json::to_string(&response).unwrap_or_else(|e| {
        format!("{{\"v\":1,\"ok\":false,\"error\":\"response serialization: {e}\"}}")
    })
}

fn error_line(id: &Value, message: &str) -> String {
    let response = Value::Object(vec![
        ("v".into(), Value::UInt(PROTOCOL_VERSION)),
        ("id".into(), id.clone()),
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::Str(message.into())),
    ]);
    serde_json::to_string(&response).unwrap_or_else(|e| {
        format!("{{\"v\":1,\"ok\":false,\"error\":\"response serialization: {e}\"}}")
    })
}

/// Where [`serve`] listens for queries.
#[derive(Clone, Debug)]
pub enum ServeTransport {
    /// Line-delimited JSON on stdin/stdout (the default). The server
    /// exits when stdin closes and the log backlog is drained.
    Stdio,
    /// Line-delimited JSON over TCP on the given `host:port`. One client
    /// at a time; the server exits on a `shutdown` request.
    Tcp(String),
}

/// Knobs for [`serve`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// The study log to tail (binary framing, as written by `--log-out`
    /// or a checkpoint directory's `world.log`).
    pub log: PathBuf,
    /// Detector and service configuration.
    pub config: ServeConfig,
    /// Keep tailing after end-of-file (a run still writing the log).
    /// Without it the server still answers queries until the transport
    /// closes, but stops polling the file once fully ingested.
    pub follow: bool,
    /// Query transport.
    pub transport: ServeTransport,
    /// File poll interval while idle.
    pub poll_interval: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            log: PathBuf::from("world.log"),
            config: ServeConfig::default(),
            follow: false,
            transport: ServeTransport::Stdio,
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// What a serve session did, reported when the loop exits.
#[derive(Clone, Debug)]
pub struct ServeSummary {
    /// Records ingested.
    pub records: u64,
    /// Queries answered.
    pub queries: u64,
    /// Upper-bound p99 query latency, nanoseconds.
    pub p99_query_ns: u64,
    /// Largest ingest backlog observed at query time.
    pub max_lag_records: u64,
}

/// One query delivered by a transport pump: the raw line and a channel
/// the response line must be sent back on.
struct Request {
    line: String,
    reply: mpsc::Sender<String>,
}

fn spawn_stdio_pump(tx: mpsc::Sender<Request>) {
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let (reply_tx, reply_rx) = mpsc::channel::<String>();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if tx
                .send(Request {
                    line,
                    reply: reply_tx.clone(),
                })
                .is_err()
            {
                break;
            }
            let Ok(response) = reply_rx.recv() else { break };
            let mut out = std::io::stdout().lock();
            if writeln!(out, "{response}")
                .and_then(|()| out.flush())
                .is_err()
            {
                break;
            }
        }
    });
}

fn spawn_tcp_pump(listener: std::net::TcpListener, tx: mpsc::Sender<Request>) {
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let Ok(read_half) = stream.try_clone() else {
                continue;
            };
            let mut write_half = stream;
            let (reply_tx, reply_rx) = mpsc::channel::<String>();
            let reader = std::io::BufReader::new(read_half);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                if tx
                    .send(Request {
                        line,
                        reply: reply_tx.clone(),
                    })
                    .is_err()
                {
                    return;
                }
                let Ok(response) = reply_rx.recv() else { break };
                if writeln!(write_half, "{response}").is_err() {
                    break;
                }
            }
        }
    });
}

/// Run the serve loop: tail the log, fold records in bounded chunks, and
/// answer queries between chunks. Returns when the transport closes (or a
/// `shutdown` request arrives) and the backlog is drained.
pub fn serve(opts: &ServeOptions) -> Result<ServeSummary, StudyError> {
    likelab_obs::span!("serve.run");
    // Without --follow the log will never appear later: a missing file is
    // a hard error, not an empty stream served successfully.
    if !opts.follow && !opts.log.exists() {
        return Err(io_err(
            &opts.log,
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "no such log file (pass --follow to wait for a producer to create it)",
            ),
        ));
    }
    let (tx, rx) = mpsc::channel::<Request>();
    match &opts.transport {
        ServeTransport::Stdio => spawn_stdio_pump(tx),
        ServeTransport::Tcp(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| io_err(std::path::Path::new(addr), e))?;
            eprintln!(
                "serving on {}",
                listener
                    .local_addr()
                    .map_err(|e| io_err(std::path::Path::new(addr), e))?
            );
            spawn_tcp_pump(listener, tx);
        }
    }

    let mut follow = FollowReader::open(&opts.log);
    let mut session: Option<ServeSession> = None;
    let mut backlog: VecDeque<LogRecord> = VecDeque::new();
    let mut transport_closed = false;
    let mut shutdown = false;
    let mut eof_after_drain = false;

    loop {
        // Pull whatever the file has and decode it into the backlog.
        if opts.follow || !eof_after_drain {
            let polled = likelab_obs::metrics::timed("serve.poll.ns", || follow.poll())?;
            if polled.is_empty() && !opts.follow {
                // A static file is fully decoded once a poll comes back
                // empty with no partial frame pending.
                eof_after_drain = follow.tail().pending_bytes() == 0;
            }
            backlog.extend(polled);
        }
        // The header arrives with the first frame batch; the engine can
        // only be sized once the embedded config is readable.
        if session.is_none() {
            if let Some(header) = follow.tail().header() {
                let engine = ServeEngine::new(header, opts.config.clone())?;
                session = Some(ServeSession::new(engine));
            }
        }
        // Fold a bounded chunk so queries never wait on the full backlog.
        if let Some(s) = &mut session {
            let take = opts.config.chunk.min(backlog.len());
            if take > 0 {
                likelab_obs::metrics::timed("serve.ingest.chunk.ns", || {
                    for frame in backlog.drain(..take) {
                        s.engine_mut().ingest_frame(&frame)?;
                    }
                    Ok::<(), StudyError>(())
                })?;
            }
        }
        // Answer everything queued while we were ingesting.
        loop {
            match rx.try_recv() {
                Ok(request) => {
                    let pending = backlog.len();
                    let response = match &mut session {
                        Some(s) => {
                            let (response, stop) = s.handle_line(&request.line, pending);
                            shutdown |= stop;
                            response
                        }
                        None => error_line(
                            &Value::Null,
                            "log header not yet available; retry once the producer has written it",
                        ),
                    };
                    let _ = request.reply.send(response);
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    transport_closed = true;
                    break;
                }
            }
        }
        if shutdown || (transport_closed && (backlog.is_empty() || session.is_none())) {
            break;
        }
        if backlog.is_empty() {
            std::thread::sleep(opts.poll_interval);
        }
    }

    let (records, stats) = match session {
        Some(s) => (s.engine.records, s.stats),
        None => (0, ServeStats::default()),
    };
    Ok(ServeSummary {
        records,
        queries: stats.queries,
        p99_query_ns: stats.p99_query_ns(),
        max_lag_records: stats.max_lag_records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{run_study_opts, RunOptions};
    use crate::StudyLog;

    fn logged_outcome() -> &'static (crate::StudyOutcome, StudyLog) {
        static SHARED: std::sync::OnceLock<(crate::StudyOutcome, StudyLog)> =
            std::sync::OnceLock::new();
        SHARED.get_or_init(|| {
            let mut outcome = run_study_opts(
                &StudyConfig::paper(42, 0.03),
                &RunOptions {
                    capture_log: true,
                    ..RunOptions::default()
                },
            )
            .unwrap();
            let log = outcome.log.take().unwrap();
            (outcome, log)
        })
    }

    fn full_engine() -> ServeEngine {
        let (_, log) = logged_outcome();
        let mut engine = ServeEngine::new(log.header(), ServeConfig::default()).unwrap();
        for (seq, record) in log.records() {
            engine.ingest(*seq, record.clone()).unwrap();
        }
        engine
    }

    #[test]
    fn replica_matches_the_original_run() {
        let (outcome, _) = logged_outcome();
        let engine = full_engine();
        let world = engine.world();
        assert_eq!(world.account_count(), outcome.world.account_count());
        assert_eq!(world.page_count(), outcome.world.page_count());
        assert_eq!(world.likes().len(), outcome.world.likes().len());
        assert_eq!(
            world.friends().edge_count(),
            outcome.world.friends().edge_count()
        );
    }

    #[test]
    fn status_query_reports_live_state() {
        let mut session = ServeSession::new(full_engine());
        let (line, stop) = session.handle_line(r#"{"v":1,"id":1,"op":"status"}"#, 7);
        assert!(!stop);
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let data = v.get("data").unwrap();
        assert_eq!(data.get("pending"), Some(&Value::UInt(7)));
        assert_eq!(data.get("campaigns"), Some(&Value::UInt(13)));
        assert_eq!(data.get("campaigns_launched"), Some(&Value::UInt(13)));
        let Some(Value::UInt(likes)) = data.get("likes") else {
            panic!("likes missing")
        };
        assert!(*likes > 0);
    }

    #[test]
    fn score_and_eval_match_batch_detectors() {
        let (outcome, _) = logged_outcome();
        let mut engine = full_engine();
        // End-of-stream online burst verdict is bitwise-equal to the batch
        // judge on the original world, for every honeypot page.
        for &page in &outcome.honeypots {
            let batch =
                likelab_detect::judge_page(&outcome.world, page, None, &BurstConfig::default());
            let online = engine.detectors_mut().burst_mut().page_verdict(page);
            assert_eq!(online, batch, "page {page:?}");
        }
        // The eval query's confusion counts must partition the population,
        // and at threshold 0 everything is predicted positive so recall
        // is exactly 1 — properties that hold at any study scale.
        let resp = engine
            .query("eval", &obj(vec![("threshold", Value::Float(0.0))]), 0)
            .unwrap();
        let count = |k: &str| match resp.get(k) {
            Some(Value::UInt(n)) => *n,
            other => panic!("{k} missing or wrong type: {other:?}"),
        };
        let (tp, fp, fn_, tn) = (count("tp"), count("fp"), count("fn"), count("tn"));
        assert_eq!(
            tp + fp + fn_ + tn,
            outcome.world.account_count() as u64,
            "confusion counts must partition the account population"
        );
        assert_eq!((fn_, tn), (0, 0), "threshold 0 predicts everyone positive");
        assert!(tp > 0, "ground truth includes farm accounts");
        assert_eq!(resp.get("recall"), Some(&Value::Float(1.0)));
    }

    #[test]
    fn protocol_rejects_bad_requests_without_dying() {
        let mut session = ServeSession::new(full_engine());
        for (line, needle) in [
            ("not json", "bad request JSON"),
            (r#"{"op":"status"}"#, "missing `v`"),
            (r#"{"v":2,"op":"status"}"#, "unsupported protocol version"),
            (r#"{"v":1}"#, "missing `op`"),
            (r#"{"v":1,"op":"frobnicate"}"#, "unknown op"),
            (r#"{"v":1,"op":"score"}"#, "missing required param `user`"),
            (r#"{"v":1,"op":"score","user":99999999}"#, "unknown user"),
        ] {
            let (resp, stop) = session.handle_line(line, 0);
            assert!(!stop, "{line}");
            let v: Value = serde_json::from_str(&resp).unwrap();
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{line}");
            let err = v.get("error").and_then(Value::as_str).unwrap();
            assert!(err.contains(needle), "{line}: {err}");
        }
        // The session still works after all that abuse.
        let (resp, _) = session.handle_line(r#"{"v":1,"id":9,"op":"lockstep"}"#, 0);
        let v: Value = serde_json::from_str(&resp).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("id"), Some(&Value::UInt(9)));
    }

    #[test]
    fn shutdown_request_stops_the_session() {
        let mut session = ServeSession::new(full_engine());
        let (resp, stop) = session.handle_line(r#"{"v":1,"id":3,"op":"shutdown"}"#, 0);
        assert!(stop);
        let v: Value = serde_json::from_str(&resp).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn campaign_query_tracks_measurement_records() {
        let (outcome, _) = logged_outcome();
        let mut engine = full_engine();
        let resp = engine
            .query("campaign", &obj(vec![("campaign", Value::UInt(0))]), 0)
            .unwrap();
        assert_eq!(resp.get("launched"), Some(&Value::Bool(true)));
        let Some(Value::UInt(likers)) = resp.get("likers_collected") else {
            panic!("likers_collected missing")
        };
        assert_eq!(
            *likers as usize,
            outcome.dataset.campaigns[0].likers.len(),
            "collected-liker count must match the original dataset"
        );
        assert_eq!(resp.get("monitoring_ended"), Some(&Value::Bool(true)));
    }

    #[test]
    fn sybil_query_gates_recomputation() {
        let mut engine = full_engine();
        let first = engine
            .query("sybil", &obj(vec![("user", Value::UInt(0))]), 0)
            .unwrap();
        assert_eq!(first.get("recomputed"), Some(&Value::Bool(true)));
        let second = engine
            .query("sybil", &obj(vec![("user", Value::UInt(1))]), 0)
            .unwrap();
        assert_eq!(
            second.get("recomputed"),
            Some(&Value::Bool(false)),
            "no graph delta between the two queries"
        );
    }
}
