//! Shape comparison: does a measured study reproduce the paper's *shape*?
//!
//! Absolute numbers are not expected to match a live 2014 platform; the
//! reproduction criteria are orderings, dominant shares, and rough factors.
//! This module turns those criteria into a checklist that tests,
//! EXPERIMENTS.md, and the benches all share.

use crate::paper;
use likelab_analysis::{Provider, StudyReport};
use likelab_osn::GeoBucket;
use serde::{Deserialize, Serialize};

/// One shape criterion's outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShapeCheck {
    /// Which table/figure the criterion belongs to.
    pub artifact: String,
    /// Human-readable criterion.
    pub criterion: String,
    /// The paper's value/statement.
    pub paper: String,
    /// The measured value.
    pub measured: String,
    /// Whether the criterion holds.
    pub pass: bool,
}

fn check(
    artifact: &str,
    criterion: &str,
    paper: String,
    measured: String,
    pass: bool,
) -> ShapeCheck {
    ShapeCheck {
        artifact: artifact.into(),
        criterion: criterion.into(),
        paper,
        measured,
        pass,
    }
}

/// Run the full shape checklist against a measured report.
pub fn checklist(report: &StudyReport) -> Vec<ShapeCheck> {
    let mut out = Vec::new();

    // --- Table 1 / deliveries ------------------------------------------
    let likes = |label: &str| {
        report
            .table1
            .iter()
            .find(|r| r.label == label)
            .and_then(|r| r.likes)
            .unwrap_or(0)
    };
    out.push(check(
        "Table 1",
        "BL-ALL and MS-ALL remain inactive",
        "no likes delivered".into(),
        format!(
            "BL-ALL: {:?}, MS-ALL: {:?}",
            report
                .table1
                .iter()
                .find(|r| r.label == "BL-ALL")
                .and_then(|r| r.likes),
            report
                .table1
                .iter()
                .find(|r| r.label == "MS-ALL")
                .and_then(|r| r.likes)
        ),
        report
            .table1
            .iter()
            .filter(|r| r.label == "BL-ALL" || r.label == "MS-ALL")
            .all(|r| r.likes.is_none()),
    ));
    out.push(check(
        "Table 1",
        "cheap markets deliver far more ad likes (FB-IND ≫ FB-USA)",
        "518 vs 32 (16x)".into(),
        format!("{} vs {}", likes("FB-IND"), likes("FB-USA")),
        likes("FB-IND") > likes("FB-USA") * 6,
    ));
    out.push(check(
        "Table 1",
        "AL-USA is the largest campaign, FB-USA the smallest active",
        "1038 vs 32".into(),
        format!("{} vs {}", likes("AL-USA"), likes("FB-USA")),
        likes("AL-USA") >= likes("FB-USA") * 8,
    ));

    // --- Figure 1 --------------------------------------------------------
    let geo = |label: &str, bucket: GeoBucket| {
        report
            .figure1
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.share(bucket))
            .unwrap_or(0.0)
    };
    out.push(check(
        "Figure 1",
        "worldwide ad targeting collapses to India",
        format!("{:.0}%", paper::FB_ALL_INDIA_SHARE * 100.0),
        format!("{:.0}%", geo("FB-ALL", GeoBucket::India) * 100.0),
        geo("FB-ALL", GeoBucket::India) > 0.85,
    ));
    out.push(check(
        "Figure 1",
        "SocialFormula ships Turkey regardless of USA targeting",
        "Turkish-dominated".into(),
        format!("{:.0}% Turkey", geo("SF-USA", GeoBucket::Turkey) * 100.0),
        geo("SF-USA", GeoBucket::Turkey) > 0.7,
    ));
    for (label, bucket) in [
        ("FB-USA", GeoBucket::Usa),
        ("FB-FRA", GeoBucket::France),
        ("FB-IND", GeoBucket::India),
        ("FB-EGY", GeoBucket::Egypt),
    ] {
        out.push(check(
            "Figure 1",
            &format!("{label} stays in the targeted country"),
            "87–99.8%".into(),
            format!("{:.0}%", geo(label, bucket) * 100.0),
            geo(label, bucket) >= paper::FB_TARGETED_IN_COUNTRY_MIN - 0.05,
        ));
    }

    // --- Table 2 ----------------------------------------------------------
    let kl = |label: &str| {
        report
            .table2
            .iter()
            .find(|r| r.label == label)
            .and_then(|r| r.kl)
            .unwrap_or(f64::NAN)
    };
    out.push(check(
        "Table 2",
        "FB-IND/EGY/ALL diverge hard from the global population",
        "KL 1.12 / 0.64 / 1.04".into(),
        format!(
            "KL {:.2} / {:.2} / {:.2}",
            kl("FB-IND"),
            kl("FB-EGY"),
            kl("FB-ALL")
        ),
        kl("FB-IND") > 0.4 && kl("FB-EGY") > 0.3 && kl("FB-ALL") > 0.4,
    ));
    out.push(check(
        "Table 2",
        "SocialFormula mirrors the global population",
        "KL 0.04".into(),
        format!("KL {:.2} / {:.2}", kl("SF-ALL"), kl("SF-USA")),
        kl("SF-ALL") < 0.15 && kl("SF-USA") < 0.15,
    ));

    // --- Figure 2 ----------------------------------------------------------
    let series = |label: &str| report.figure2.iter().find(|s| s.label == label);
    let burst_ok = ["SF-ALL", "SF-USA", "AL-ALL", "AL-USA", "MS-USA"]
        .iter()
        .all(|l| series(l).map(|s| s.peak_2h_share > 0.25).unwrap_or(false));
    out.push(check(
        "Figure 2",
        "bot farms deliver in bursts (dense 2h windows)",
        "likes garnered within ~2 hours".into(),
        format!(
            "peak 2h shares: SF {:.0}%, AL {:.0}%, MS {:.0}%",
            series("SF-ALL")
                .map(|s| s.peak_2h_share * 100.0)
                .unwrap_or(0.0),
            series("AL-USA")
                .map(|s| s.peak_2h_share * 100.0)
                .unwrap_or(0.0),
            series("MS-USA")
                .map(|s| s.peak_2h_share * 100.0)
                .unwrap_or(0.0),
        ),
        burst_ok,
    ));
    let smooth_ok = ["BL-USA", "FB-IND", "FB-EGY", "FB-ALL"]
        .iter()
        .all(|l| series(l).map(|s| s.peak_2h_share < 0.15).unwrap_or(false));
    out.push(check(
        "Figure 2",
        "BoostLikes is indistinguishable from ad campaigns (steady climb)",
        "no abrupt changes; comparable to Facebook ads".into(),
        format!(
            "BL-USA t90 = {:.1}d, peak 2h {:.0}%",
            series("BL-USA").map(|s| s.days_to_90pct).unwrap_or(0.0),
            series("BL-USA")
                .map(|s| s.peak_2h_share * 100.0)
                .unwrap_or(0.0),
        ),
        smooth_ok
            && series("BL-USA")
                .map(|s| s.days_to_90pct > 8.0)
                .unwrap_or(false),
    ));

    // --- Table 3 / Figure 3 ------------------------------------------------
    let row = |p: Provider| {
        report
            .table3
            .iter()
            .find(|r| r.provider == p)
            .expect("table3 has a row per provider")
    };
    out.push(check(
        "Table 3",
        "BoostLikes likers have far more friends than anyone else",
        "median 850 vs 46–343".into(),
        format!(
            "BL median {:.0} vs SF {:.0} / AL {:.0} / MS {:.0} / FB {:.0}",
            row(Provider::BoostLikes).friends.median,
            row(Provider::SocialFormula).friends.median,
            row(Provider::AuthenticLikes).friends.median,
            row(Provider::MammothSocials).friends.median,
            row(Provider::Facebook).friends.median,
        ),
        {
            let bl = row(Provider::BoostLikes).friends.median;
            bl > row(Provider::SocialFormula).friends.median * 2.0
                && bl > row(Provider::Facebook).friends.median * 2.0
        },
    ));
    out.push(check(
        "Table 3",
        "BoostLikes likers are densely interconnected",
        "540 friendships among 621 likers".into(),
        format!(
            "BL {} edges / {} likers; SF {} / {}",
            row(Provider::BoostLikes).friendships_between_likers,
            row(Provider::BoostLikes).likers,
            row(Provider::SocialFormula).friendships_between_likers,
            row(Provider::SocialFormula).likers,
        ),
        row(Provider::BoostLikes).friendships_between_likers
            > row(Provider::SocialFormula).friendships_between_likers,
    ));
    out.push(check(
        "Table 3",
        "the ALMS overlap group exists (shared AL/MS operator)",
        "213 users liked both".into(),
        format!("{} users", row(Provider::Alms).likers),
        row(Provider::Alms).likers > 0,
    ));

    // --- Figure 4 -----------------------------------------------------------
    let median = |label: &str| {
        report
            .figure4
            .iter()
            .find(|c| c.label == label)
            .map(|c| c.median())
            .unwrap_or(f64::NAN)
    };
    out.push(check(
        "Figure 4",
        "baseline sample median stays tiny",
        format!("{}", paper::BASELINE_MEDIAN_LIKES),
        format!("{:.0}", median("Facebook")),
        (15.0..=70.0).contains(&median("Facebook")),
    ));
    out.push(check(
        "Figure 4",
        "honeypot likers like orders of magnitude more pages",
        "medians 600–1800 vs 34".into(),
        format!(
            "FB-IND {:.0}, SF-ALL {:.0}, baseline {:.0}",
            median("FB-IND"),
            median("SF-ALL"),
            median("Facebook")
        ),
        median("FB-IND") > median("Facebook") * 5.0 && median("SF-ALL") > median("Facebook") * 10.0,
    ));
    out.push(check(
        "Figure 4",
        "BL-USA keeps a small count of likes per user",
        format!("median {}", paper::BL_USA_MEDIAN_LIKES),
        format!("median {:.0}", median("BL-USA")),
        median("BL-USA") < median("SF-ALL") / 5.0,
    ));

    // --- Figure 5 -----------------------------------------------------------
    let users = &report.figure5_users;
    out.push(check(
        "Figure 5",
        "same-farm campaigns reuse accounts (SF pair bright)",
        "SF-ALL ↔ SF-USA relatively large".into(),
        format!("{:.1}", users.get("SF-ALL", "SF-USA")),
        users.get("SF-ALL", "SF-USA") > 1.0
            && users.get("SF-ALL", "SF-USA") > users.get("SF-ALL", "BL-USA") + 0.5,
    ));
    out.push(check(
        "Figure 5",
        "AL and MS share profiles (same operator)",
        "AL-USA ↔ MS-USA relatively large".into(),
        format!("{:.1}", users.get("AL-USA", "MS-USA")),
        users.get("AL-USA", "MS-USA") > 5.0,
    ));
    let pages = &report.figure5_pages;
    out.push(check(
        "Figure 5",
        "FB-IND/EGY/ALL page sets resemble each other",
        "relatively large pairwise similarity".into(),
        format!(
            "IND-EGY {:.1}, IND-ALL {:.1}, IND vs AL {:.1}",
            pages.get("FB-IND", "FB-EGY"),
            pages.get("FB-IND", "FB-ALL"),
            pages.get("FB-IND", "AL-USA")
        ),
        pages.get("FB-IND", "FB-ALL") > pages.get("FB-IND", "AL-USA"),
    ));

    // --- §5 terminations ------------------------------------------------------
    let term = &report.termination;
    out.push(check(
        "§5",
        "bot farms lose far more accounts than the stealth farm",
        "44+20+9 vs 1".into(),
        format!(
            "AL {} + SF {} + MS {} vs BL {}",
            term.provider(Provider::AuthenticLikes),
            term.provider(Provider::SocialFormula),
            term.provider(Provider::MammothSocials),
            term.provider(Provider::BoostLikes),
        ),
        term.provider(Provider::AuthenticLikes)
            + term.provider(Provider::SocialFormula)
            + term.provider(Provider::MammothSocials)
            > term.provider(Provider::BoostLikes) * 3,
    ));

    out
}

/// Render the checklist as an aligned text block.
pub fn render_checklist(checks: &[ShapeCheck]) -> String {
    let mut rows = vec![vec![
        "Artifact".to_string(),
        "Criterion".to_string(),
        "Paper".to_string(),
        "Measured".to_string(),
        "OK".to_string(),
    ]];
    for c in checks {
        rows.push(vec![
            c.artifact.clone(),
            c.criterion.clone(),
            c.paper.clone(),
            c.measured.clone(),
            if c.pass { "yes" } else { "NO" }.to_string(),
        ]);
    }
    likelab_analysis::render::table(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_failures_loudly() {
        let checks = vec![ShapeCheck {
            artifact: "T1".into(),
            criterion: "x".into(),
            paper: "1".into(),
            measured: "2".into(),
            pass: false,
        }];
        let text = render_checklist(&checks);
        assert!(text.contains("NO"));
        assert!(text.contains("Criterion"));
    }
}
