//! The study runner: the full IMC 2014 protocol, end to end.
//!
//! One call to [`run_study`] executes everything the paper did:
//!
//! 1. synthesize the platform population (with a pre-launch history window);
//! 2. deploy 13 empty "Virtual Electricity" honeypot pages;
//! 3. launch all campaigns on the same day — 5 legitimate ad buys, 8 farm
//!    orders (two of which turn out to be scams);
//! 4. drive the event loop: timed likes land, the crawler polls every page
//!    every 2 hours (daily after campaigns, stopping after a quiet week),
//!    farm accounts keep doing camouflage jobs, organic users keep liking,
//!    and the platform's anti-fraud sweep runs weekly;
//! 5. collect liker profiles through the privacy-enforcing crawl API, pull
//!    admin reports, sample the 2000-user directory baseline;
//! 6. a month after the campaigns, recheck which likers were terminated;
//! 7. compute every table and figure.
//!
//! Deterministic: a `(seed, scale)` pair reproduces the identical study.
//!
//! The run is event-sourced: with logging enabled (see [`RunOptions`]),
//! every world mutation and measurement artifact is appended to a
//! [`StudyLog`], and [`replay`](crate::replay) rebuilds the identical
//! outcome from the log alone. Checkpointing freezes the run mid-loop and
//! [resumes](crate::checkpoint) byte-identically.

use crate::presets::{paper_campaigns, paper_farms};
use crate::record::{io_err, StudyError, StudyLog, StudyRecord};
use likelab_analysis::StudyReport;
use likelab_farms::{DeliveryStyle, FarmOrder, FarmRoster, FarmSpec, TimedLike};
use likelab_graph::PageId;
use likelab_honeypot::{
    check_terminations, collect_profiles, deploy_honeypot, BaselineRecord, CampaignData,
    CampaignSpec, CollectionConfig, CrawlOutcome, CrawlerConfig, Dataset, PageMonitor, Promotion,
};
use likelab_osn::ads::{plan_campaign, AdCampaignSpec};
use likelab_osn::organic::plan_background_activity;
use likelab_osn::population::{synthesize_with, Population, PopulationConfig};
use likelab_osn::{
    AdMarket, AudienceReport, CrawlApi, CrawlConfig, FraudOps, FraudOpsConfig, LikeColumns,
    OsnWorld,
};
use likelab_sim::{Engine, Exec, Rng, SimDuration, SimTime, Trace};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Everything a study run is parameterized by.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Master seed; the whole run is a pure function of it (plus the rest
    /// of this config).
    pub seed: u64,
    /// World scale: 1.0 reproduces paper-sized campaigns; smaller values
    /// shrink the world and all campaign volumes together so percentages
    /// and distributions survive.
    pub scale: f64,
    /// Population model (scaled internally by `scale`).
    pub population: PopulationConfig,
    /// Ad-market pricing.
    pub market: AdMarket,
    /// Anti-fraud sweep parameters.
    pub fraud: FraudOpsConfig,
    /// Crawler cadence.
    pub crawler: CrawlerConfig,
    /// Crawl-surface fault injection.
    pub crawl: CrawlConfig,
    /// Profile-collection retry/backoff policy and request budget.
    pub collection: CollectionConfig,
    /// Ad-campaign geo leakage.
    pub ad_leakage: f64,
    /// Baseline directory sample size (scaled; the paper used 2000).
    pub baseline_sample: usize,
    /// How long after the campaigns the termination recheck happens.
    pub termination_check_after: SimDuration,
    /// Interval between anti-fraud sweeps.
    pub sweep_interval: SimDuration,
    /// Whether organic background activity runs during the study.
    pub organic_activity: bool,
    /// The campaigns to run.
    pub campaigns: Vec<CampaignSpec>,
    /// The farm roster (indexed by `Promotion::FarmOrder::farm`).
    pub farms: Vec<FarmSpec>,
}

impl StudyConfig {
    /// The paper's setup at the given scale.
    pub fn paper(seed: u64, scale: f64) -> Self {
        StudyConfig {
            seed,
            scale,
            population: PopulationConfig::default(),
            market: AdMarket::default(),
            fraud: FraudOpsConfig::default(),
            crawler: CrawlerConfig::default(),
            crawl: CrawlConfig::default(),
            collection: CollectionConfig::default(),
            ad_leakage: 0.02,
            baseline_sample: 2_000,
            termination_check_after: SimDuration::days(30),
            sweep_interval: SimDuration::days(7),
            organic_activity: true,
            campaigns: paper_campaigns(),
            farms: paper_farms(),
        }
    }

    /// The million-account `scale` preset: the paper's protocol over the
    /// [`scale_population`][crate::presets::scale_population] world
    /// (~1M accounts / 50k pages at `scale` 1.0). Same campaigns, farms,
    /// and measurement pipeline — only the world is bigger.
    pub fn scale_world(seed: u64, scale: f64) -> Self {
        StudyConfig {
            population: crate::presets::scale_population(),
            ..StudyConfig::paper(seed, scale)
        }
    }

    /// The `chaos` preset: the paper's world run against a heavily faulted
    /// crawl surface — elevated transient noise, tight rate-limit windows,
    /// multi-hour outages (see `CrawlConfig::chaos`). The study must still
    /// complete end to end; the robustness comparison quantifies the drift.
    pub fn chaos(seed: u64, scale: f64) -> Self {
        StudyConfig {
            crawl: CrawlConfig::chaos(0.75),
            ..StudyConfig::paper(seed, scale)
        }
    }

    /// Replace the crawl fault profile with a named one
    /// (`CrawlConfig::named` vocabulary: `none`, `default`, `throttled`,
    /// `flaky`, `chaos`). Returns None for an unknown name.
    pub fn with_fault_profile(mut self, name: &str) -> Option<Self> {
        self.crawl = CrawlConfig::named(name)?;
        Some(self)
    }

    /// The same configuration with a perfectly clean crawl surface — the
    /// twin run the robustness comparison measures against.
    pub fn clean_twin(&self) -> Self {
        StudyConfig {
            crawl: CrawlConfig::clean(),
            ..self.clone()
        }
    }
}

/// The outcome of a study run.
pub struct StudyOutcome {
    /// The crawled dataset (what the authors' disk held).
    pub dataset: Dataset,
    /// Every table and figure, computed.
    pub report: StudyReport,
    /// The final platform state (ground truth — for detection work).
    pub world: OsnWorld,
    /// Population handles (audiences, background catalogue).
    pub population: Population,
    /// Campaign launch time.
    pub launch: SimTime,
    /// Honeypot pages, one per campaign in campaign order.
    pub honeypots: Vec<PageId>,
    /// Run journal (scam notes, sweep counts, crawl stats).
    pub trace: Trace,
    /// The captured study log, when the run was logging (see
    /// [`RunOptions::capture_log`]). For a resumed run this holds only the
    /// records appended after the resume point; the full stream lives in
    /// the checkpoint directory's `world.log`.
    pub log: Option<StudyLog>,
}

/// An event-loop entry. Serializable so checkpointing can freeze the
/// pending queue mid-run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) enum Ev {
    /// A scheduled like lands.
    Like(TimedLike),
    /// The crawler polls campaign `i`'s page.
    Poll(usize),
    /// A platform anti-fraud sweep.
    Sweep,
}

/// On-disk framing for `--log-out` (see [`RunOptions::log_format`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LogFormat {
    /// Checksummed binary frames (`LLOG` magic) — streamed to disk as the
    /// run progresses, resumable, the format checkpoints and `serve` tail.
    #[default]
    Binary,
    /// Line-delimited JSON — human-greppable. Buffered in memory and
    /// written atomically at the end of the run, so a crash mid-run leaves
    /// no partial file. [`read_study_log`](crate::read_study_log) sniffs
    /// and accepts both formats.
    Jsonl,
}

impl LogFormat {
    /// Parse a CLI argument (`binary` | `jsonl`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "binary" => Ok(LogFormat::Binary),
            "jsonl" => Ok(LogFormat::Jsonl),
            other => Err(format!("unknown log format `{other}` (binary|jsonl)")),
        }
    }
}

/// Knobs for [`run_study_opts`]: execution policy, log capture, and
/// checkpoint/resume.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Execution policy for the parallel stages (see [`run_study_with`]).
    pub exec: Exec,
    /// Capture a [`StudyLog`] in memory, returned on
    /// [`StudyOutcome::log`].
    pub capture_log: bool,
    /// Stream the log to this file (framing per `log_format`). Implies
    /// capture.
    pub log_out: Option<PathBuf>,
    /// On-disk framing for `log_out`. JSONL is buffered and written once
    /// at the end of the run; binary streams as it goes.
    pub log_format: LogFormat,
    /// Checkpoint directory. Enables checkpointing: the log streams to
    /// `<dir>/world.log` and consumer state snapshots to
    /// `<dir>/checkpoint.json`. Mutually exclusive with `log_out`.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence, in fired events (0 disables checkpoint writes).
    pub checkpoint_every: u64,
    /// Resume from `checkpoint_dir` instead of starting fresh. The
    /// checkpointed config wins; the config passed to
    /// [`run_study_opts`] is ignored.
    pub resume: bool,
    /// Test hook: abort with [`StudyError::SimulatedCrash`] after this
    /// many checkpoints have been written. Lets CI exercise the
    /// kill-and-resume path deterministically.
    pub crash_after_checkpoints: Option<u64>,
    /// Drain consecutive like events as one columnar batch instead of
    /// dispatching them one at a time (default on). Likes draw no RNG and
    /// a run of them is broken only by polls/sweeps, so the batched loop
    /// produces a byte-identical world; the invariance tier pins the
    /// equivalence. Off = the historical per-event loop, kept for that
    /// differential test.
    pub coalesce_likes: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            exec: Exec::auto(),
            capture_log: false,
            log_out: None,
            log_format: LogFormat::default(),
            checkpoint_dir: None,
            checkpoint_every: 5_000,
            resume: false,
            crash_after_checkpoints: None,
            coalesce_likes: true,
        }
    }
}

/// The optional log-capture side channel threaded through a run. All
/// methods are no-ops when the run is not logging.
pub(crate) struct Capture {
    pub(crate) log: Option<StudyLog>,
    /// Set when `log_out` asked for JSONL framing: the log is buffered in
    /// memory and rendered to this path atomically at the end of the run.
    pub(crate) jsonl_out: Option<PathBuf>,
}

impl Capture {
    fn open(config: &StudyConfig, opts: &RunOptions) -> Result<Self, StudyError> {
        let mut jsonl_out = None;
        let log = if let Some(dir) = &opts.checkpoint_dir {
            if opts.log_out.is_some() {
                return Err(StudyError::Mismatch(
                    "log-out and checkpoint-dir are mutually exclusive; \
                     the checkpoint dir already owns <dir>/world.log"
                        .into(),
                ));
            }
            if opts.log_format != LogFormat::Binary {
                return Err(StudyError::Mismatch(
                    "checkpointing requires the binary log format; \
                     <dir>/world.log must stay resumable and tailable"
                        .into(),
                ));
            }
            std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
            Some(StudyLog::to_file(config, &dir.join("world.log"))?)
        } else if let Some(path) = &opts.log_out {
            match opts.log_format {
                LogFormat::Binary => Some(StudyLog::to_file(config, path)?),
                LogFormat::Jsonl => {
                    jsonl_out = Some(path.clone());
                    Some(StudyLog::in_memory(config))
                }
            }
        } else if opts.capture_log {
            Some(StudyLog::in_memory(config))
        } else {
            None
        };
        Ok(Capture { log, jsonl_out })
    }

    fn on(&self) -> bool {
        self.log.is_some()
    }

    fn rng_fork(&mut self, label: &str) -> Result<(), StudyError> {
        if let Some(log) = &mut self.log {
            log.append(StudyRecord::RngFork {
                label: label.into(),
            })?;
        }
        Ok(())
    }

    fn world(&mut self, world: &mut OsnWorld) -> Result<(), StudyError> {
        if let Some(log) = &mut self.log {
            log.drain_world(world)?;
        }
        Ok(())
    }

    fn record(&mut self, f: impl FnOnce() -> StudyRecord) -> Result<(), StudyError> {
        if let Some(log) = &mut self.log {
            log.append(f())?;
        }
        Ok(())
    }
}

/// Everything the event loop carries between steps. Checkpointing
/// serializes all of it except the world, which is rebuilt from the log.
pub(crate) struct LoopState {
    pub(crate) config: StudyConfig,
    pub(crate) world: OsnWorld,
    pub(crate) population: Population,
    pub(crate) engine: Engine<Ev>,
    pub(crate) monitors: Vec<Option<PageMonitor>>,
    pub(crate) inactive: Vec<bool>,
    pub(crate) honeypots: Vec<PageId>,
    pub(crate) launch: SimTime,
    pub(crate) end: SimTime,
    pub(crate) api: CrawlApi,
    pub(crate) fraud: FraudOps,
    pub(crate) rng: Rng,
    pub(crate) trace: Trace,
    pub(crate) sweep_terminations: usize,
}

/// How long a campaign's paid promotion runs (drives the crawler cadence
/// switch).
fn campaign_days(spec: &CampaignSpec, farms: &[FarmSpec]) -> u64 {
    match &spec.promotion {
        Promotion::PlatformAds { duration_days, .. } => *duration_days,
        Promotion::FarmOrder { farm, .. } => match farms[*farm].style {
            DeliveryStyle::Burst { days, .. } => days,
            DeliveryStyle::Trickle { days } => days,
        },
    }
}

/// Run the study. See the module docs for the protocol.
///
/// Parallelizable stages (population synthesis, report assembly) use
/// [`Exec::auto`]; the outcome is bit-identical for any worker count — see
/// [`run_study_with`].
///
/// ```
/// use likelab_core::{run_study, StudyConfig};
///
/// // Scale 0.01 keeps the doc test fast; 1.0 is paper-sized.
/// let outcome = run_study(&StudyConfig::paper(42, 0.01));
/// assert_eq!(outcome.dataset.campaigns.len(), 13);
/// let text = outcome.report.render();
/// assert!(text.contains("Table 1"));
/// ```
pub fn run_study(config: &StudyConfig) -> StudyOutcome {
    run_study_with(config, Exec::auto())
}

/// Run the study under an explicit execution policy.
///
/// `exec` governs the two embarrassingly parallel stages — per-user like
/// history synthesis and per-section report assembly. The event loop itself
/// is inherently serial and untouched. Every parallel stage derives its
/// randomness from index-split streams and reassembles results in index
/// order, so the returned outcome is bit-identical for every `exec`.
pub fn run_study_with(config: &StudyConfig, exec: Exec) -> StudyOutcome {
    run_study_opts(
        config,
        &RunOptions {
            exec,
            ..RunOptions::default()
        },
    )
    .expect("a study without logging or checkpointing cannot fail")
}

/// Run the study with full control over logging and checkpointing.
///
/// This is the event-sourced entry point: with [`RunOptions::capture_log`]
/// (or `log_out`/`checkpoint_dir`) set, every world mutation and
/// measurement artifact is appended to a [`StudyLog`] as the run executes,
/// and [`replay`](crate::replay::replay_study) reproduces the identical
/// dataset and report from the log alone. With `checkpoint_dir` set the
/// run can be killed and [resumed](RunOptions::resume) byte-identically.
pub fn run_study_opts(config: &StudyConfig, opts: &RunOptions) -> Result<StudyOutcome, StudyError> {
    likelab_obs::span!("study.run");
    if opts.resume {
        return crate::checkpoint::resume_study(opts);
    }
    let mut capture = Capture::open(config, opts)?;
    let mut state = setup(config, opts.exec, &mut capture)?;
    event_loop(&mut state, &mut capture, opts)?;
    collect(state, capture, opts.exec)
}

/// Phases 1–3: population, honeypots, promotions, organic plan, and the
/// initial event queue.
fn setup(config: &StudyConfig, exec: Exec, capture: &mut Capture) -> Result<LoopState, StudyError> {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut trace = Trace::with_capacity(10_000);
    let mut world = OsnWorld::new();
    world.set_recording(capture.on());

    // --- population -----------------------------------------------------
    let population_span = likelab_obs::span::enter("study.population");
    let pop_config = config.population.clone().scaled(config.scale);
    capture.rng_fork("population")?;
    let population = synthesize_with(&mut world, &pop_config, &mut rng.fork("population"), exec);
    let launch = population.launch;
    trace.note(
        launch,
        format!(
            "population ready: {} accounts, {} pages, {} likes",
            world.account_count(),
            world.page_count(),
            world.likes().len()
        ),
    );
    capture.world(&mut world)?;

    drop(population_span);

    // --- honeypots and promotions ----------------------------------------
    let promotions_span = likelab_obs::span::enter("study.promotions");
    // Farm camouflage draws from the globally popular head of the
    // catalogue: farm accounts mimic generic users, not locals.
    capture.rng_fork("farms")?;
    let mut roster = FarmRoster::new(
        config.farms.clone(),
        population.global_pages.clone(),
        config.scale,
        rng.fork("farms"),
    );
    let mut honeypots = Vec::with_capacity(config.campaigns.len());
    let mut monitors: Vec<Option<PageMonitor>> = Vec::with_capacity(config.campaigns.len());
    let mut inactive: Vec<bool> = Vec::with_capacity(config.campaigns.len());
    let mut engine: Engine<Ev> = Engine::new();
    let mut max_campaign_end = launch;

    // Each campaign plans its ads from `ads_rng.split(campaign_index)`: the
    // stream is a pure function of (seed, index), so adding draws to one
    // campaign — or planning campaigns out of order, or in parallel — never
    // perturbs another campaign's stream.
    capture.rng_fork("ads")?;
    let ads_rng = rng.fork("ads");
    for (campaign_index, spec) in config.campaigns.iter().enumerate() {
        let (page, _owner) = deploy_honeypot(&mut world, launch);
        honeypots.push(page);
        let days = campaign_days(spec, &config.farms);
        let campaign_end = launch + SimDuration::days(days);
        max_campaign_end = max_campaign_end.max(campaign_end);
        let mut is_scam = false;
        match &spec.promotion {
            Promotion::PlatformAds {
                targeting,
                daily_budget_cents,
                duration_days,
            } => {
                let _ads_span = likelab_obs::span::enter("promotions.ads");
                let plan = plan_campaign(
                    &world,
                    &population,
                    &config.market,
                    &AdCampaignSpec {
                        page,
                        targeting: targeting.clone(),
                        daily_budget_cents: daily_budget_cents * config.scale,
                        duration_days: *duration_days,
                        leakage: config.ad_leakage,
                    },
                    launch,
                    &mut ads_rng.split(campaign_index as u64),
                );
                trace.note(
                    launch,
                    format!("{}: ad plan of {} likes", spec.label, plan.len()),
                );
                for p in plan {
                    engine.schedule(
                        p.at,
                        Ev::Like(TimedLike {
                            user: p.user,
                            page,
                            at: p.at,
                        }),
                    );
                }
            }
            Promotion::FarmOrder {
                farm,
                region,
                likes,
                ..
            } => {
                let _farm_span = likelab_obs::span::enter("promotions.farm");
                let delivery = roster.fulfill(
                    &mut world,
                    &FarmOrder {
                        farm: *farm,
                        page,
                        region: *region,
                        likes: *likes,
                        placed_at: launch,
                    },
                );
                if delivery.scam {
                    is_scam = true;
                    trace.note(
                        launch,
                        format!(
                            "{}: campaign remained inactive (charged in advance)",
                            spec.label
                        ),
                    );
                } else {
                    trace.note(
                        launch,
                        format!(
                            "{}: farm delivery of {} likes, {} future camouflage events",
                            spec.label,
                            delivery.likes.len(),
                            delivery.future_camouflage.len()
                        ),
                    );
                    for l in delivery.likes.into_iter().chain(delivery.future_camouflage) {
                        engine.schedule(l.at, Ev::Like(l));
                    }
                }
            }
        }
        inactive.push(is_scam);
        monitors
            .push((!is_scam).then(|| PageMonitor::new(page, launch, campaign_end, config.crawler)));
        capture.world(&mut world)?;
        capture.record(|| StudyRecord::CampaignLaunched {
            campaign: campaign_index,
            page,
            at: launch,
        })?;
        if is_scam {
            capture.record(|| StudyRecord::CampaignInactive {
                campaign: campaign_index,
            })?;
        }
    }

    let end = max_campaign_end + config.termination_check_after;

    // --- organic background activity --------------------------------------
    if config.organic_activity {
        let window = end.since(launch);
        capture.rng_fork("organic")?;
        let plan = plan_background_activity(
            &world,
            &population,
            &pop_config,
            launch,
            window,
            &mut rng.fork("organic"),
        );
        trace.note(
            launch,
            format!("organic activity: {} likes planned", plan.len()),
        );
        for l in plan {
            engine.schedule(
                l.at,
                Ev::Like(TimedLike {
                    user: l.user,
                    page: l.page,
                    at: l.at,
                }),
            );
        }
    }

    drop(promotions_span);

    // --- crawler polls and fraud sweeps -----------------------------------
    for (i, m) in monitors.iter().enumerate() {
        if m.is_some() {
            engine.schedule(launch, Ev::Poll(i));
        }
    }
    engine.schedule(launch + SimDuration::days(3), Ev::Sweep);

    capture.rng_fork("crawl")?;
    let api = CrawlApi::new(config.crawl, rng.fork("crawl"));
    capture.rng_fork("fraud")?;
    let fraud = FraudOps::new(config.fraud.clone(), rng.fork("fraud"));

    Ok(LoopState {
        config: config.clone(),
        world,
        population,
        engine,
        monitors,
        inactive,
        honeypots,
        launch,
        end,
        api,
        fraud,
        rng,
        trace,
        sweep_terminations: 0,
    })
}

/// Phase 4: drive the event loop to exhaustion, checkpointing on cadence
/// when a checkpoint directory is configured.
pub(crate) fn event_loop(
    state: &mut LoopState,
    capture: &mut Capture,
    opts: &RunOptions,
) -> Result<(), StudyError> {
    let event_loop_span = likelab_obs::span::enter("study.event_loop");
    let mut checkpoints = 0u64;
    // Checkpoint on bucket crossings of the fired counter rather than exact
    // multiples: a coalesced batch advances `fired` by its whole length, so
    // the counter may step over a multiple without landing on it. For
    // single-event steps this is the same cadence as the historical
    // `fired % every == 0` check (a resume never re-checkpoints its own
    // resume point — the bucket starts at the resumed counter).
    let every = opts.checkpoint_every;
    let mut cp_bucket = state.engine.fired().checked_div(every).unwrap_or(0);
    // Reused columnar buffer for coalesced like runs. Runs are capped so a
    // quiet stretch of millions of likes neither starves the checkpoint
    // cadence nor holds an unbounded batch in memory.
    const LIKE_RUN_CAP: usize = 8_192;
    let mut like_run = LikeColumns::with_capacity(0);
    while let Some((now, ev)) = state.engine.step() {
        match ev {
            Ev::Like(l) => {
                if opts.coalesce_likes {
                    // Drain the maximal run of consecutive like events (up
                    // to the cap) and ingest them as one columnar batch.
                    // Equivalent to per-event dispatch: likes draw no RNG,
                    // account status only changes at sweep events (which end
                    // the run), and `ingest_like_columns` documents
                    // per-item `record_like` equivalence.
                    like_run.clear();
                    like_run.push(l.user, l.page, l.at);
                    while like_run.len() < LIKE_RUN_CAP {
                        match state.engine.step_if(|_, e| matches!(e, Ev::Like(_))) {
                            Some((_, Ev::Like(next))) => {
                                like_run.push(next.user, next.page, next.at);
                            }
                            Some(_) => unreachable!("predicate admits only likes"),
                            None => break,
                        }
                    }
                    state.world.ingest_like_columns(&like_run, Exec::Sequential);
                } else {
                    state.world.record_like(l.user, l.page, l.at);
                }
            }
            Ev::Poll(i) => {
                let _poll_span = likelab_obs::span::enter("study.poll");
                let monitor = state.monitors[i].as_mut().expect("poll only for active");
                if let Some(next) = monitor.poll(&state.world, &mut state.api, now) {
                    state.engine.schedule(next, Ev::Poll(i));
                } else {
                    state
                        .trace
                        .note(now, format!("stopped monitoring campaign #{i}"));
                }
            }
            Ev::Sweep => {
                let _sweep_span = likelab_obs::span::enter("study.sweep");
                let terminated = state.fraud.sweep(&mut state.world, now);
                state.sweep_terminations += terminated.len();
                state
                    .trace
                    .count("fraud.terminated", terminated.len() as u64);
                if now + state.config.sweep_interval <= state.end {
                    state
                        .engine
                        .schedule(now + state.config.sweep_interval, Ev::Sweep);
                }
            }
        }
        capture.world(&mut state.world)?;
        if let Some(dir) = &opts.checkpoint_dir {
            let bucket = state.engine.fired().checked_div(every).unwrap_or(0);
            if bucket > cp_bucket {
                cp_bucket = bucket;
                crate::checkpoint::write_checkpoint(dir, state, capture)?;
                checkpoints += 1;
                if opts
                    .crash_after_checkpoints
                    .is_some_and(|k| checkpoints >= k)
                {
                    return Err(StudyError::SimulatedCrash { checkpoints });
                }
            }
        }
    }
    state.trace.note(
        state.end,
        format!(
            "event loop drained: {} events, {} sweep terminations, {} crawl requests ({} failed)",
            state.engine.fired(),
            state.sweep_terminations,
            state.api.requests(),
            state.api.failures()
        ),
    );
    if !state.config.crawl.faults.is_quiet() {
        let s = state.api.stats();
        state.trace.note(
            state.end,
            format!(
                "crawl faults during monitoring: {} rate-limited, {} outage, {} transient",
                s.rate_limited, s.outage, s.transient
            ),
        );
    }

    drop(event_loop_span);
    likelab_obs::metrics::counter("study.events.fired", state.engine.fired());
    Ok(())
}

/// Phases 5–7: profile collection, the termination recheck, the baseline
/// sample, and report computation.
pub(crate) fn collect(
    state: LoopState,
    mut capture: Capture,
    exec: Exec,
) -> Result<StudyOutcome, StudyError> {
    let LoopState {
        config,
        world,
        population,
        engine: _,
        monitors,
        inactive,
        honeypots,
        launch,
        end,
        mut api,
        fraud: _,
        mut rng,
        trace,
        sweep_terminations: _,
    } = state;

    let collection_span = likelab_obs::span::enter("study.collection");
    let mut campaigns_data = Vec::with_capacity(config.campaigns.len());
    // The collection passes run on a virtual crawl clock starting at the
    // study's end; backoff waits and rate-limit hints advance it. With
    // fault regimes disabled nothing reads the cursor, so outcomes match
    // the pre-regime pipeline draw for draw.
    let mut crawl_at = end;
    for (i, spec) in config.campaigns.iter().enumerate() {
        let page = honeypots[i];
        let (likers, observations, monitoring_days, mut coverage) = match &monitors[i] {
            Some(m) => (
                collect_profiles(&world, &mut api, m, &mut crawl_at, &config.collection),
                m.observations().to_vec(),
                m.monitoring_days(),
                m.coverage(),
            ),
            None => (Vec::new(), Vec::new(), None, Default::default()),
        };
        for l in &likers {
            match l.crawl_outcome {
                CrawlOutcome::Complete => coverage.profiles_complete += 1,
                CrawlOutcome::Gone => coverage.profiles_gone += 1,
                CrawlOutcome::GaveUp => coverage.profiles_gave_up += 1,
            }
        }
        likelab_obs::metrics::counter(
            &format!("crawl.coverage{{campaign={}}}", spec.label),
            (coverage.profile_coverage() * 10_000.0) as u64,
        );
        let liker_ids: Vec<_> = likers.iter().map(|l| l.user).collect();
        let probe = check_terminations(
            &world,
            &mut api,
            &liker_ids,
            &mut crawl_at,
            &config.collection.retry,
        );
        for o in &observations {
            capture.record(|| StudyRecord::CrawlObserved {
                campaign: i,
                observation: *o,
            })?;
        }
        for l in &likers {
            capture.record(|| StudyRecord::ProfileCollected {
                campaign: i,
                record: l.clone(),
            })?;
        }
        capture.record(|| StudyRecord::TerminationsProbed {
            campaign: i,
            terminated: probe.terminated,
            unknown: probe.unknown,
        })?;
        capture.record(|| StudyRecord::MonitoringEnded {
            campaign: i,
            monitoring_days,
            coverage,
        })?;
        campaigns_data.push(CampaignData {
            spec: spec.clone(),
            page,
            observations,
            likers,
            report: AudienceReport::for_page(&world, page),
            monitoring_days,
            terminated_after_month: probe.terminated,
            termination_unknown: probe.unknown,
            inactive: inactive[i],
            coverage,
        });
    }

    capture.rng_fork("baseline")?;
    let n_baseline = ((config.baseline_sample as f64 * config.scale).round() as usize).max(50);
    let baseline: Vec<BaselineRecord> =
        likelab_osn::directory::random_sample(&world, n_baseline, &mut rng.fork("baseline"))
            .into_iter()
            .map(|user| BaselineRecord {
                user,
                like_count: world.likes().user_like_count(user),
            })
            .collect();
    capture.record(|| StudyRecord::BaselineSampled {
        records: baseline.clone(),
    })?;

    let dataset = Dataset {
        campaigns: campaigns_data,
        baseline,
        launch,
        global_report: AudienceReport::global_with(&world, exec),
    };
    drop(collection_span);
    let report = {
        let _s = likelab_obs::span::enter("study.report");
        StudyReport::compute_with(&dataset, exec)
    };

    if let Some(log) = &mut capture.log {
        log.flush()?;
        if let Some(path) = &capture.jsonl_out {
            crate::record::write_atomic(path, &log.to_jsonl()?)?;
        }
    }

    Ok(StudyOutcome {
        dataset,
        report,
        world,
        population,
        launch,
        honeypots,
        trace,
        log: capture.log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but representative study, shared across tests (runs once).
    fn outcome() -> &'static StudyOutcome {
        static SHARED: std::sync::OnceLock<StudyOutcome> = std::sync::OnceLock::new();
        SHARED.get_or_init(|| run_study(&StudyConfig::paper(42, 0.12)))
    }

    #[test]
    fn thirteen_campaigns_two_inactive() {
        let o = outcome();
        assert_eq!(o.dataset.campaigns.len(), 13);
        let inactive: Vec<&str> = o
            .dataset
            .campaigns
            .iter()
            .filter(|c| c.inactive)
            .map(|c| c.spec.label.as_str())
            .collect();
        assert_eq!(inactive, vec!["BL-ALL", "MS-ALL"]);
    }

    #[test]
    fn like_counts_scale_with_table1() {
        let o = outcome();
        let scale = 0.12;
        // Each active campaign should land within a factor-2 band of the
        // scaled Table 1 count (stochastic delivery fractions included).
        for row in crate::paper::TABLE1 {
            let Some(published) = row.likes else { continue };
            let got = o.dataset.campaign(row.label).unwrap().like_count() as f64;
            let expected = published as f64 * scale;
            assert!(
                got > expected * 0.45 && got < expected * 2.2,
                "{}: got {got}, expected ~{expected}",
                row.label
            );
        }
    }

    #[test]
    fn fb_all_is_india_dominated() {
        let o = outcome();
        let fig1 = &o.report.figure1;
        let all = fig1.iter().find(|r| r.label == "FB-ALL").unwrap();
        assert!(
            all.share(likelab_osn::GeoBucket::India) > 0.85,
            "India share {}",
            all.share(likelab_osn::GeoBucket::India)
        );
        let sf = fig1.iter().find(|r| r.label == "SF-USA").unwrap();
        assert!(
            sf.share(likelab_osn::GeoBucket::Turkey) > 0.8,
            "SF ships Turkey: {}",
            sf.share(likelab_osn::GeoBucket::Turkey)
        );
    }

    #[test]
    fn burst_farms_burst_trickles_trickle() {
        let o = outcome();
        let series = |l: &str| o.report.figure2.iter().find(|s| s.label == l).unwrap();
        assert!(
            series("AL-USA").peak_2h_share > 0.3,
            "{}",
            series("AL-USA").peak_2h_share
        );
        assert!(series("SF-ALL").peak_2h_share > 0.3);
        assert!(series("BL-USA").peak_2h_share < 0.1);
        assert!(series("FB-IND").peak_2h_share < 0.1);
        assert!(series("BL-USA").days_to_90pct > 9.0);
        assert!(series("AL-USA").days_to_90pct < 5.0);
    }

    #[test]
    fn kl_ordering_matches_table2() {
        let o = outcome();
        let kl = |l: &str| {
            o.report
                .table2
                .iter()
                .find(|r| r.label == l)
                .and_then(|r| r.kl)
                .unwrap()
        };
        assert!(kl("FB-IND") > 0.5, "FB-IND young+male: {}", kl("FB-IND"));
        assert!(kl("FB-ALL") > 0.5);
        assert!(kl("SF-ALL") < 0.15, "SF mirrors global: {}", kl("SF-ALL"));
        assert!(kl("FB-IND") > kl("SF-ALL") * 4.0);
    }

    #[test]
    fn boostlikes_social_structure_stands_out() {
        let o = outcome();
        let row = |p: likelab_analysis::Provider| {
            o.report.table3.iter().find(|r| r.provider == p).unwrap()
        };
        use likelab_analysis::Provider as P;
        let bl = row(P::BoostLikes);
        let sf = row(P::SocialFormula);
        let fb = row(P::Facebook);
        assert!(
            bl.friends.median > sf.friends.median * 3.0,
            "BL median {} vs SF {}",
            bl.friends.median,
            sf.friends.median
        );
        assert!(
            bl.friendships_between_likers > sf.friendships_between_likers,
            "BL edges {} vs SF {}",
            bl.friendships_between_likers,
            sf.friendships_between_likers
        );
        assert!(fb.likers > 0 && bl.likers > 0);
        // ALMS exists: shared operator.
        assert!(row(P::Alms).likers > 0, "ALMS overlap group must appear");
    }

    #[test]
    fn honeypot_likers_like_far_more_pages_than_baseline() {
        let o = outcome();
        let median = |l: &str| {
            o.report
                .figure4
                .iter()
                .find(|c| c.label == l)
                .unwrap()
                .median()
        };
        let baseline = median("Facebook");
        assert!(
            (20.0..=60.0).contains(&baseline),
            "baseline median ~34, got {baseline}"
        );
        assert!(median("SF-ALL") > baseline * 10.0);
        assert!(median("FB-IND") > baseline * 5.0);
        // BL-USA is the exception: deliberately small like counts.
        assert!(median("BL-USA") < baseline * 5.0);
    }

    #[test]
    fn similarity_hotspots_match_figure5() {
        let o = outcome();
        let users = &o.report.figure5_users;
        let sf_pair = users.get("SF-ALL", "SF-USA");
        let alms = users.get("AL-USA", "MS-USA");
        let cross = users.get("SF-ALL", "AL-USA");
        assert!(sf_pair > 1.0, "SF reuse: {sf_pair}");
        assert!(alms > 10.0, "shared operator: {alms}");
        assert!(cross < 1.0, "distinct operators: {cross}");
        let pages = &o.report.figure5_pages;
        assert!(
            pages.get("AL-USA", "MS-USA") > pages.get("SF-ALL", "AL-USA"),
            "same-operator page overlap beats cross-operator"
        );
        assert!(
            pages.get("FB-IND", "FB-EGY") > pages.get("FB-IND", "AL-USA"),
            "FB campaigns resemble each other more than farms"
        );
    }

    #[test]
    fn termination_ordering_matches_section5() {
        let o = outcome();
        use likelab_analysis::Provider as P;
        let t = &o.report.termination;
        let likers = |p: P| {
            o.report
                .table3
                .iter()
                .find(|r| r.provider == p)
                .unwrap()
                .likers
        };
        let rate = |p: P| t.rate(p, likers(p).max(1));
        assert!(
            rate(P::BoostLikes) < rate(P::AuthenticLikes) + 0.02,
            "stealth farm survives: BL {} vs AL {}",
            rate(P::BoostLikes),
            rate(P::AuthenticLikes)
        );
        assert!(
            t.provider(P::AuthenticLikes) + t.provider(P::SocialFormula)
                > t.provider(P::BoostLikes),
            "bot farms purged more than stealth"
        );
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let a = run_study(&StudyConfig::paper(7, 0.03));
        let b = run_study(&StudyConfig::paper(7, 0.03));
        assert_eq!(
            a.report.to_json().unwrap(),
            b.report.to_json().unwrap(),
            "a (seed, scale) pair must regenerate the identical study"
        );
        let c = run_study(&StudyConfig::paper(8, 0.03));
        assert_ne!(a.report.to_json().unwrap(), c.report.to_json().unwrap());
    }

    #[test]
    fn logged_run_matches_unlogged_run() {
        let config = StudyConfig::paper(11, 0.03);
        let plain = run_study(&config);
        let logged = run_study_opts(
            &config,
            &RunOptions {
                capture_log: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            plain.report.to_json().unwrap(),
            logged.report.to_json().unwrap(),
            "capturing the log must not perturb the run"
        );
        let log = logged.log.expect("log captured");
        assert!(log.records().len() > 1_000, "log is non-trivial");
    }

    #[test]
    fn jsonl_log_out_round_trips() {
        let dir = std::env::temp_dir().join(format!("likelab-jsonl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.jsonl");
        let config = StudyConfig::paper(11, 0.03);
        let outcome = run_study_opts(
            &config,
            &RunOptions {
                log_out: Some(path.clone()),
                log_format: LogFormat::Jsonl,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().next().unwrap().contains("likelab"),
            "first line is the JSON header"
        );
        // The sniffing reader accepts the JSONL file, and replay rebuilds
        // the same study from it.
        let (header, records) = crate::read_study_log(&path).unwrap();
        assert_eq!(
            crate::record::config_from_header(&header).unwrap().seed,
            config.seed
        );
        assert!(records.len() > 1_000);
        let replayed =
            crate::replay::replay_study(&path, &crate::ReplayOptions::default()).unwrap();
        assert_eq!(
            replayed.report.to_json().unwrap(),
            outcome.report.to_json().unwrap(),
            "JSONL framing must replay to the identical report"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_format_rejected_with_checkpointing() {
        let dir = std::env::temp_dir().join(format!("likelab-jsonl-ckpt-{}", std::process::id()));
        let result = run_study_opts(
            &StudyConfig::paper(11, 0.02),
            &RunOptions {
                checkpoint_dir: Some(dir.clone()),
                log_format: LogFormat::Jsonl,
                ..RunOptions::default()
            },
        );
        let Err(err) = result else {
            panic!("jsonl + checkpointing must be rejected")
        };
        assert!(err.to_string().contains("binary log format"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn monitoring_windows_are_plausible() {
        let o = outcome();
        for c in &o.dataset.campaigns {
            if c.inactive {
                assert!(c.monitoring_days.is_none());
            } else {
                let days = c.monitoring_days.expect("active campaigns stop eventually");
                assert!((8..=40).contains(&days), "{}: {} days", c.spec.label, days);
            }
        }
    }

    #[test]
    fn report_renders_non_trivially() {
        let o = outcome();
        let text = o.report.render();
        assert!(text.contains("FB-USA"));
        assert!(text.contains("MS-USA"));
        assert!(text.contains("ALMS"));
        assert!(text.len() > 2_000);
    }
}
