//! Multi-seed, multi-scale study sweeps.
//!
//! One simulated study is a single draw from the generative model; the
//! paper's claims are about *distributions* (Table 2's demographics skews,
//! Figure 2's burst timing, §5's termination counts). A sweep runs the full
//! study protocol for `n_seeds` independent seeds at each requested world
//! scale, extracts a fixed set of headline metrics per run, and aggregates
//! them into per-scale mean / standard deviation / 95% confidence intervals —
//! the numbers a reproduction should actually be judged against.
//!
//! ## Determinism
//!
//! Run `k` draws its seed from
//! [`derive_stream_seed`]`(master_seed, k)` — a pure function, so the same
//! master seed regenerates the same sweep forever, regardless of how many
//! workers execute it or in what order runs finish. The same `n_seeds` seeds
//! are reused across scales, pairing runs so cross-scale comparisons cancel
//! seed noise. [`run_sweep`] fans runs out via
//! [`parallel_map`], whose output is position-stable: a parallel sweep is
//! byte-identical (through JSON) to a sequential one.

use crate::study::{run_study, StudyConfig};
use likelab_analysis::StudyReport;
use likelab_sim::{derive_stream_seed, parallel_map, Exec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What to sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Master seed; per-run seeds derive from it via [`derive_stream_seed`].
    pub master_seed: u64,
    /// Independent seeds per scale.
    pub n_seeds: usize,
    /// World scales to sweep (1.0 = paper-sized campaigns).
    pub scales: Vec<f64>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            master_seed: 42,
            n_seeds: 8,
            scales: vec![0.1],
        }
    }
}

impl SweepConfig {
    /// The seed of run `k` (shared across scales, so runs pair up).
    pub fn seed_of_run(&self, k: usize) -> u64 {
        derive_stream_seed(self.master_seed, k as u64)
    }
}

/// One study run's extracted metrics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRecord {
    /// The derived per-run seed the study ran with.
    pub seed: u64,
    /// Headline metrics, keyed by stable metric name.
    pub metrics: BTreeMap<String, f64>,
}

/// Mean/spread summary of one metric across the runs of one scale.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MetricAggregate {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single run).
    pub std_dev: f64,
    /// Half-width of the normal-approximation 95% CI (`1.96·sd/√n`).
    pub ci95: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of runs aggregated.
    pub n: usize,
}

impl MetricAggregate {
    /// Aggregate a non-empty sample.
    pub fn of(values: &[f64]) -> MetricAggregate {
        assert!(!values.is_empty(), "aggregating an empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in values {
            min = min.min(*v);
            max = max.max(*v);
        }
        MetricAggregate {
            mean,
            std_dev,
            ci95: 1.96 * std_dev / (n as f64).sqrt(),
            min,
            max,
            n,
        }
    }
}

/// All runs and aggregates at one world scale.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepCell {
    /// The world scale these runs used.
    pub scale: f64,
    /// Per-run records, in run (= derived-seed) order.
    pub runs: Vec<RunRecord>,
    /// Per-metric aggregates over the runs.
    pub aggregates: BTreeMap<String, MetricAggregate>,
}

/// The aggregated result of a sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepReport {
    /// The configuration that produced this report.
    pub config: SweepConfig,
    /// One cell per scale, in configuration order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Render a compact per-scale summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            out.push_str(&format!(
                "== scale {} ({} runs) ==\n",
                cell.scale,
                cell.runs.len()
            ));
            out.push_str(&format!(
                "{:26} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                "metric", "mean", "std", "ci95", "min", "max"
            ));
            for (name, a) in &cell.aggregates {
                out.push_str(&format!(
                    "{:26} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}\n",
                    name, a.mean, a.std_dev, a.ci95, a.min, a.max
                ));
            }
            out.push('\n');
        }
        out
    }
}

/// Extract the headline metrics of one study report.
///
/// Names are part of the JSON surface — append, never rename.
pub fn study_metrics(report: &StudyReport) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    m.insert("campaign_likes".into(), report.totals.campaign_likes as f64);
    m.insert("farm_likes".into(), report.totals.farm_likes as f64);
    m.insert("ad_likes".into(), report.totals.ad_likes as f64);
    m.insert(
        "observed_page_likes".into(),
        report.totals.observed_page_likes as f64,
    );
    m.insert(
        "observed_friendships".into(),
        report.totals.observed_friendships as f64,
    );
    m.insert(
        "terminated_accounts".into(),
        report.termination.total as f64,
    );
    m.insert(
        "active_campaigns".into(),
        report.table1.iter().filter(|r| r.likes.is_some()).count() as f64,
    );
    let kls: Vec<f64> = report.table2.iter().filter_map(|r| r.kl).collect();
    if !kls.is_empty() {
        m.insert(
            "mean_kl_divergence".into(),
            kls.iter().sum::<f64>() / kls.len() as f64,
        );
    }
    m
}

/// Run the full sweep under an explicit execution policy.
///
/// The `n_seeds × scales` cross product fans out as one flat work list, so
/// a tall sweep (many seeds, one scale) parallelizes as well as a wide one.
/// Each run's own parallel stages keep their [`Exec::auto`] policy; since
/// every stage is exec-independent by construction, nesting affects thread
/// counts only, never results.
///
/// ```
/// use likelab_core::{run_sweep, SweepConfig};
/// use likelab_sim::Exec;
///
/// let config = SweepConfig { master_seed: 42, n_seeds: 2, scales: vec![0.01] };
/// let report = run_sweep(&config, Exec::auto());
/// assert_eq!(report.cells.len(), 1);
/// let cell = &report.cells[0];
/// assert_eq!(cell.runs.len(), 2);
/// assert!(cell.aggregates.contains_key("campaign_likes"));
/// ```
pub fn run_sweep(config: &SweepConfig, exec: Exec) -> SweepReport {
    assert!(config.n_seeds > 0, "sweep needs at least one seed");
    assert!(!config.scales.is_empty(), "sweep needs at least one scale");
    for s in &config.scales {
        assert!(*s > 0.0, "scale must be positive, got {s}");
    }

    likelab_obs::span!("sweep.run");
    let work: Vec<(f64, u64)> = config
        .scales
        .iter()
        .flat_map(|scale| (0..config.n_seeds).map(|k| (*scale, config.seed_of_run(k))))
        .collect();
    let records = parallel_map(exec, &work, |_, &(scale, seed)| {
        let outcome = run_study(&StudyConfig::paper(seed, scale));
        likelab_obs::metrics::counter("sweep.jobs.completed", 1);
        RunRecord {
            seed,
            metrics: study_metrics(&outcome.report),
        }
    });
    likelab_obs::span!("sweep.aggregate");

    let mut cells = Vec::with_capacity(config.scales.len());
    for (i, scale) in config.scales.iter().enumerate() {
        let runs: Vec<RunRecord> = records[i * config.n_seeds..(i + 1) * config.n_seeds].to_vec();
        let names: Vec<String> = runs
            .first()
            .map(|r| r.metrics.keys().cloned().collect())
            .unwrap_or_default();
        let aggregates = names
            .into_iter()
            .filter_map(|name| {
                let values: Vec<f64> = runs
                    .iter()
                    .filter_map(|r| r.metrics.get(&name).copied())
                    .collect();
                (!values.is_empty()).then(|| (name, MetricAggregate::of(&values)))
            })
            .collect();
        cells.push(SweepCell {
            scale: *scale,
            runs,
            aggregates,
        });
    }
    SweepReport {
        config: config.clone(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_math_is_right() {
        let a = MetricAggregate::of(&[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.mean, 5.0);
        assert!((a.std_dev - 2.581_988_897_471_611).abs() < 1e-12);
        assert!((a.ci95 - 1.96 * a.std_dev / 2.0).abs() < 1e-12);
        assert_eq!(a.min, 2.0);
        assert_eq!(a.max, 8.0);
        assert_eq!(a.n, 4);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let a = MetricAggregate::of(&[7.5]);
        assert_eq!(a.mean, 7.5);
        assert_eq!(a.std_dev, 0.0);
        assert_eq!(a.ci95, 0.0);
        assert_eq!(a.n, 1);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        let _ = MetricAggregate::of(&[]);
    }

    #[test]
    fn run_seeds_are_distinct_and_stable() {
        let config = SweepConfig {
            master_seed: 42,
            n_seeds: 16,
            scales: vec![0.05],
        };
        let seeds: Vec<u64> = (0..16).map(|k| config.seed_of_run(k)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 16);
        // Stable across calls and config clones.
        assert_eq!(config.clone().seed_of_run(3), seeds[3]);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_rejected() {
        let config = SweepConfig {
            n_seeds: 0,
            ..SweepConfig::default()
        };
        let _ = run_sweep(&config, Exec::Sequential);
    }

    // Full-study sweep runs live in tests/sweep_determinism.rs (they are
    // integration-scale); here we only exercise the pure plumbing.

    #[test]
    fn report_json_round_trips() {
        let report = SweepReport {
            config: SweepConfig {
                master_seed: 1,
                n_seeds: 1,
                scales: vec![0.5],
            },
            cells: vec![SweepCell {
                scale: 0.5,
                runs: vec![RunRecord {
                    seed: 99,
                    metrics: [("campaign_likes".to_string(), 123.0)]
                        .into_iter()
                        .collect(),
                }],
                aggregates: [("campaign_likes".to_string(), MetricAggregate::of(&[123.0]))]
                    .into_iter()
                    .collect(),
            }],
        };
        let json = report.to_json().unwrap();
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.to_json().unwrap(), json);
        assert_eq!(back.cells[0].runs[0].seed, 99);
    }
}
