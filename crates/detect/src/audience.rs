//! Page-audience divergence detection — Table 2's signal as a detector.
//!
//! The paper shows that boosted pages attract audiences whose demographics
//! diverge hard from the platform's (FB-IND at KL 1.12) or — for the
//! sneakiest farm — mirror it suspiciously well while arriving all at once.
//! This detector scores a page by the KL divergence of its liker
//! demographics from the global population, combined with geographic
//! concentration (a "worldwide" page liked 96% from one country is a flag).

use likelab_analysis::kl_divergence;
use likelab_graph::PageId;
use likelab_osn::{AudienceReport, OsnWorld};
use serde::{Deserialize, Serialize};

/// Audience-divergence verdict for one page.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AudienceVerdict {
    /// KL divergence of the liker age distribution vs. the global one.
    pub age_kl: f64,
    /// Largest single-geo-bucket share of the audience.
    pub geo_concentration: f64,
    /// Absolute gender skew: |female share − global female share|.
    pub gender_skew: f64,
    /// Number of likers behind the verdict.
    pub likers: usize,
    /// Combined suspicion score in [0, 1).
    pub score: f64,
}

/// Audience-detector parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AudienceConfig {
    /// Ignore pages with fewer likers than this.
    pub min_likers: usize,
    /// Weight of the age-KL term.
    pub kl_weight: f64,
    /// Weight of the geo-concentration term.
    pub geo_weight: f64,
    /// Weight of the gender-skew term.
    pub gender_weight: f64,
}

impl Default for AudienceConfig {
    fn default() -> Self {
        AudienceConfig {
            min_likers: 30,
            kl_weight: 1.2,
            geo_weight: 1.0,
            gender_weight: 2.0,
        }
    }
}

/// Score a page's audience against a global reference report.
pub fn judge_audience(
    world: &OsnWorld,
    page: PageId,
    global: &AudienceReport,
    config: &AudienceConfig,
) -> AudienceVerdict {
    let report = AudienceReport::for_page(world, page);
    if report.total < config.min_likers {
        return AudienceVerdict {
            age_kl: 0.0,
            geo_concentration: 0.0,
            gender_skew: 0.0,
            likers: report.total,
            score: 0.0,
        };
    }
    let age_kl = kl_divergence(&report.age_distribution(), &global.age_distribution());
    let geo = report.geo_distribution();
    let geo_concentration = geo.iter().cloned().fold(0.0, f64::max);
    let gender_skew = (report.female_fraction() - global.female_fraction()).abs();
    let z = config.kl_weight * age_kl
        + config.geo_weight * geo_concentration.powi(2)
        + config.gender_weight * gender_skew;
    // Squash to [0, 1): 1 - exp(-z) keeps small signals small.
    let score = 1.0 - (-z).exp();
    AudienceVerdict {
        age_kl,
        geo_concentration,
        gender_skew,
        likers: report.total,
        score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_graph::UserId;
    use likelab_osn::demographics::{Blueprint, GLOBAL_AGE_DIST};
    use likelab_osn::{ActorClass, Country, PageCategory, PrivacySettings};
    use likelab_sim::{Rng, SimTime};

    fn add_from(world: &mut OsnWorld, bp: &Blueprint, n: usize, rng: &mut Rng) -> Vec<UserId> {
        (0..n)
            .map(|_| {
                world.create_account(
                    bp.sample(rng),
                    ActorClass::Organic,
                    PrivacySettings {
                        friend_list_public: true,
                        likes_public: true,
                        searchable: true,
                    },
                    SimTime::EPOCH,
                )
            })
            .collect()
    }

    fn global_bp() -> Blueprint {
        Blueprint::global_with_countries(vec![
            (Country::Usa, 0.3),
            (Country::Brazil, 0.3),
            (Country::India, 0.2),
            (Country::Uk, 0.2),
        ])
    }

    fn young_male_india_bp() -> Blueprint {
        Blueprint {
            female_fraction: 0.07,
            age_weights: [0.53, 0.43, 0.02, 0.01, 0.005, 0.005],
            country_weights: vec![(Country::India, 1.0)],
        }
    }

    #[test]
    fn skewed_audience_scores_far_above_balanced() {
        let mut world = OsnWorld::new();
        let mut rng = Rng::seed_from_u64(3);
        let normals = add_from(&mut world, &global_bp(), 400, &mut rng);
        let clickers = add_from(&mut world, &young_male_india_bp(), 200, &mut rng);
        let normal_page =
            world.create_page("n", "", None, PageCategory::Background, SimTime::EPOCH);
        let boosted_page = world.create_page("b", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        for u in normals.iter().take(200) {
            world.record_like(*u, normal_page, SimTime::at_day(1));
        }
        for u in &clickers {
            world.record_like(*u, boosted_page, SimTime::at_day(1));
        }
        let global = AudienceReport::global(&world);
        let cfg = AudienceConfig::default();
        let normal = judge_audience(&world, normal_page, &global, &cfg);
        let boosted = judge_audience(&world, boosted_page, &global, &cfg);
        assert!(
            boosted.score > normal.score + 0.3,
            "boosted {:.2} vs normal {:.2}",
            boosted.score,
            normal.score
        );
        assert!(boosted.age_kl > 0.4, "age KL {}", boosted.age_kl);
        assert!(boosted.geo_concentration > 0.95);
        // The clicker block itself drags the global reference toward male,
        // so the skew is measured against a polluted baseline — still large.
        assert!(boosted.gender_skew > 0.2, "{}", boosted.gender_skew);
    }

    #[test]
    fn small_pages_are_not_judged() {
        let mut world = OsnWorld::new();
        let mut rng = Rng::seed_from_u64(4);
        let users = add_from(&mut world, &young_male_india_bp(), 5, &mut rng);
        let page = world.create_page("p", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        for u in users {
            world.record_like(u, page, SimTime::EPOCH);
        }
        let global = AudienceReport::global(&world);
        let v = judge_audience(&world, page, &global, &AudienceConfig::default());
        assert_eq!(v.score, 0.0);
        assert_eq!(v.likers, 5);
    }

    #[test]
    fn mirror_demographics_score_low_on_this_detector() {
        // SocialFormula's trick: a near-global audience stays under THIS
        // radar (geo concentration still gives some signal).
        let mut world = OsnWorld::new();
        let mut rng = Rng::seed_from_u64(5);
        let mirror_bp = Blueprint {
            female_fraction: 0.46,
            age_weights: GLOBAL_AGE_DIST,
            country_weights: vec![(Country::Turkey, 1.0)],
        };
        let base = add_from(&mut world, &global_bp(), 600, &mut rng);
        let sf = add_from(&mut world, &mirror_bp, 150, &mut rng);
        let page = world.create_page("sf", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        for u in &sf {
            world.record_like(*u, page, SimTime::EPOCH);
        }
        let _ = base;
        let global = AudienceReport::global(&world);
        let v = judge_audience(&world, page, &global, &AudienceConfig::default());
        assert!(v.age_kl < 0.1, "mirrored ages: {}", v.age_kl);
        assert!(v.gender_skew < 0.05);
        // Only the geographic concentration betrays it.
        assert!(v.geo_concentration > 0.9);
        assert!(v.score < 0.75, "harder case scores moderate: {}", v.score);
    }
}
