//! Burst detection — the paper's most obvious exploitable signal.
//!
//! "Likes were garnered within a short period of time of two hours":
//! a page whose like stream concentrates in a tiny window was almost
//! certainly farm-boosted; an account whose own like stream does the same
//! is almost certainly a bot. Both detectors share one statistic: the share
//! of events inside the densest window.

use likelab_graph::{PageId, UserId};
use likelab_osn::OsnWorld;
use likelab_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Burst-detector parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BurstConfig {
    /// Window length.
    pub window: SimDuration,
    /// Flag when the densest window holds at least this share of events.
    pub share_threshold: f64,
    /// Ignore streams with fewer events than this.
    pub min_events: usize,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            window: SimDuration::hours(2),
            share_threshold: 0.4,
            min_events: 20,
        }
    }
}

/// A burst verdict.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BurstVerdict {
    /// Share of events inside the densest window.
    pub peak_share: f64,
    /// Number of events examined.
    pub events: usize,
    /// Whether the stream is flagged as bursty.
    pub flagged: bool,
}

/// The densest-window share of a sorted-or-not time stream.
///
/// Sorts `times` in place, then slides a two-pointer window. This is the
/// single statistic both the batch judges and the online detector
/// ([`crate::online::OnlineBurst`]) are defined in terms of, which is what
/// makes their parity contract bitwise rather than approximate.
///
/// ```
/// use likelab_detect::burst::peak_share;
/// use likelab_sim::{SimDuration, SimTime};
///
/// let mut times = vec![
///     SimTime::at_day(9),
///     SimTime::at_day(1),
///     SimTime::at_day(1) + SimDuration::minutes(30),
/// ];
/// // 2 of 3 events fall inside one 2-hour window.
/// let share = peak_share(&mut times, SimDuration::hours(2));
/// assert!((share - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn peak_share(times: &mut [SimTime], window: SimDuration) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    times.sort_unstable();
    let mut best = 1usize;
    let mut lo = 0usize;
    for hi in 0..times.len() {
        // lint:allow(panic-reachable-from-serve): lo <= hi < times.len() throughout the sweep
        while times[hi].since(times[lo]) > window {
            lo += 1;
        }
        best = best.max(hi - lo + 1);
    }
    best as f64 / times.len() as f64
}

/// Judge a time stream.
///
/// Streams shorter than [`BurstConfig::min_events`] are never flagged and
/// report `peak_share` 0.0.
///
/// ```
/// use likelab_detect::burst::{judge, BurstConfig};
/// use likelab_sim::{SimDuration, SimTime};
///
/// let config = BurstConfig { min_events: 4, ..BurstConfig::default() };
/// // 4 likes within minutes of each other: a full-share burst.
/// let times: Vec<SimTime> = (0..4)
///     .map(|i| SimTime::at_day(2) + SimDuration::minutes(i))
///     .collect();
/// let v = judge(times, &config);
/// assert!(v.flagged);
/// assert_eq!(v.peak_share, 1.0);
/// assert_eq!(v.events, 4);
/// ```
pub fn judge(mut times: Vec<SimTime>, config: &BurstConfig) -> BurstVerdict {
    let events = times.len();
    if events < config.min_events {
        return BurstVerdict {
            peak_share: 0.0,
            events,
            flagged: false,
        };
    }
    let share = peak_share(&mut times, config.window);
    BurstVerdict {
        peak_share: share,
        events,
        flagged: share >= config.share_threshold,
    }
}

/// Judge a page's incoming like stream, optionally only counting likes
/// after `since` (so pre-existing organic history doesn't dilute a fresh
/// boost).
pub fn judge_page(
    world: &OsnWorld,
    page: PageId,
    since: Option<SimTime>,
    config: &BurstConfig,
) -> BurstVerdict {
    let times: Vec<SimTime> = world
        .likes()
        .page_times(page)
        .filter(|t| since.is_none_or(|s| *t >= s))
        .collect();
    judge(times, config)
}

/// Judge an account's outgoing like stream.
pub fn judge_account(world: &OsnWorld, user: UserId, config: &BurstConfig) -> BurstVerdict {
    let times: Vec<SimTime> = world.likes().user_times(user).collect();
    judge(times, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_osn::{ActorClass, Country, Gender, PageCategory, PrivacySettings, Profile};

    fn mk_world(n_users: u32, n_pages: u32) -> OsnWorld {
        let mut w = OsnWorld::new();
        for _ in 0..n_users {
            w.create_account(
                Profile {
                    gender: Gender::Male,
                    age: 20,
                    country: Country::Turkey,
                    home_region: 0,
                },
                ActorClass::Bot(1),
                PrivacySettings {
                    friend_list_public: true,
                    likes_public: true,
                    searchable: true,
                },
                SimTime::EPOCH,
            );
        }
        for i in 0..n_pages {
            w.create_page(
                format!("p{i}"),
                "",
                None,
                PageCategory::Background,
                SimTime::EPOCH,
            );
        }
        w
    }

    #[test]
    fn bursty_page_is_flagged_smooth_is_not() {
        let mut w = mk_world(120, 2);
        // Page 0: 100 likes within 1 hour. Page 1: 100 likes over 100 days.
        for i in 0..100u32 {
            w.record_like(
                UserId(i),
                PageId(0),
                SimTime::at_day(5) + SimDuration::secs(36 * u64::from(i)),
            );
            w.record_like(UserId(i), PageId(1), SimTime::at_day(u64::from(i)));
        }
        let cfg = BurstConfig::default();
        let v0 = judge_page(&w, PageId(0), None, &cfg);
        let v1 = judge_page(&w, PageId(1), None, &cfg);
        assert!(v0.flagged && v0.peak_share > 0.99);
        assert!(!v1.flagged && v1.peak_share < 0.05);
    }

    #[test]
    fn since_filter_isolates_the_boost() {
        let mut w = mk_world(120, 1);
        // 60 organic likes over 60 days, then 50 likes in one hour.
        for i in 0..60u32 {
            w.record_like(UserId(i), PageId(0), SimTime::at_day(u64::from(i)));
        }
        for i in 60..110u32 {
            w.record_like(
                UserId(i),
                PageId(0),
                SimTime::at_day(100) + SimDuration::secs(u64::from(i)),
            );
        }
        let cfg = BurstConfig::default();
        let all = judge_page(&w, PageId(0), None, &cfg);
        let fresh = judge_page(&w, PageId(0), Some(SimTime::at_day(99)), &cfg);
        assert!(all.peak_share < fresh.peak_share);
        assert!(fresh.flagged && fresh.peak_share > 0.99);
        assert!(all.flagged, "50/110 in one window still crosses 0.4");
    }

    #[test]
    fn small_streams_are_ignored() {
        let mut w = mk_world(5, 1);
        for i in 0..5u32 {
            w.record_like(UserId(i), PageId(0), SimTime::at_day(1));
        }
        let v = judge_page(&w, PageId(0), None, &BurstConfig::default());
        assert!(!v.flagged, "below min_events");
        assert_eq!(v.events, 5);
    }

    #[test]
    fn account_stream_burstiness() {
        let mut w = mk_world(1, 60);
        // Account 0 likes 30 pages in 30 minutes, then 30 pages monthly.
        for i in 0..30u32 {
            w.record_like(
                UserId(0),
                PageId(i),
                SimTime::at_day(3) + SimDuration::minutes(u64::from(i)),
            );
        }
        for i in 30..60u32 {
            w.record_like(
                UserId(0),
                PageId(i),
                SimTime::at_day(10 + 30 * u64::from(i)),
            );
        }
        let v = judge_account(&w, UserId(0), &BurstConfig::default());
        assert!(v.flagged);
        assert!((v.peak_share - 0.5).abs() < 0.02);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let times = vec![
            SimTime::at_day(9),
            SimTime::at_day(1),
            SimTime::at_day(1) + SimDuration::minutes(5),
        ];
        let v = judge(
            times,
            &BurstConfig {
                min_events: 2,
                ..BurstConfig::default()
            },
        );
        assert!((v.peak_share - 2.0 / 3.0).abs() < 1e-12);
    }
}
