//! Detector evaluation against the simulator's ground truth.
//!
//! This is the one place allowed to read [`ActorClass`] — the labels a
//! platform operator would hold. Produces precision/recall/F1 at a
//! threshold and a full ROC sweep with AUC.

use likelab_graph::UserId;
use likelab_osn::{ActorClass, OsnWorld};
use serde::{Deserialize, Serialize};

/// What counts as a "fake" account for evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PositiveClass {
    /// Farm accounts only (bots + stealth sybils).
    FarmOnly,
    /// Farm accounts and the click-prone segment (the paper argues even
    /// legitimate-ad likers are "significantly different from typical
    /// Facebook users").
    FarmAndClickProne,
}

impl PositiveClass {
    /// The label of one account.
    pub fn is_positive(self, class: ActorClass) -> bool {
        match self {
            PositiveClass::FarmOnly => class.is_farm(),
            PositiveClass::FarmAndClickProne => class.is_farm() || class == ActorClass::ClickProne,
        }
    }
}

/// Confusion-matrix summary at one threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Precision (1 when nothing was flagged).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (0 when there are no positives).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False-positive rate.
    pub fn fpr(&self) -> f64 {
        if self.fp + self.tn == 0 {
            0.0
        } else {
            self.fp as f64 / (self.fp + self.tn) as f64
        }
    }
}

/// Evaluate scored accounts at one threshold.
pub fn confusion_at(
    world: &OsnWorld,
    scored: &[(UserId, f64)],
    threshold: f64,
    positive: PositiveClass,
) -> Confusion {
    let mut c = Confusion::default();
    for (u, s) in scored {
        let truth = positive.is_positive(world.account(*u).class);
        let flagged = *s >= threshold;
        match (truth, flagged) {
            (true, true) => c.tp += 1,
            (true, false) => c.fn_ += 1,
            (false, true) => c.fp += 1,
            (false, false) => c.tn += 1,
        }
    }
    c
}

/// A ROC curve: `(fpr, tpr)` points, threshold-descending, plus AUC.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Roc {
    /// `(false-positive rate, true-positive rate)` points from (0,0) to (1,1).
    pub points: Vec<(f64, f64)>,
    /// Area under the curve.
    pub auc: f64,
}

/// Compute the ROC by sweeping the threshold over every distinct score.
pub fn roc(world: &OsnWorld, scored: &[(UserId, f64)], positive: PositiveClass) -> Roc {
    let mut labeled: Vec<(f64, bool)> = scored
        .iter()
        .map(|(u, s)| (*s, positive.is_positive(world.account(*u).class)))
        .collect();
    labeled.sort_by(|a, b| b.0.total_cmp(&a.0));
    let pos = labeled.iter().filter(|(_, t)| *t).count();
    let neg = labeled.len() - pos;
    if pos == 0 || neg == 0 {
        return Roc {
            points: vec![(0.0, 0.0), (1.0, 1.0)],
            auc: 0.5,
        };
    }
    let mut points = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < labeled.len() {
        // Step over ties together.
        let s = labeled[i].0;
        while i < labeled.len() && labeled[i].0 == s {
            if labeled[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push((fp as f64 / neg as f64, tp as f64 / pos as f64));
    }
    // Trapezoidal AUC.
    let auc = points
        .windows(2)
        .map(|w| (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0)
        .sum();
    Roc { points, auc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_osn::{Country, Gender, PrivacySettings, Profile};
    use likelab_sim::SimTime;

    fn world_with_classes(classes: &[ActorClass]) -> OsnWorld {
        let mut w = OsnWorld::new();
        for c in classes {
            w.create_account(
                Profile {
                    gender: Gender::Male,
                    age: 20,
                    country: Country::Usa,
                    home_region: 0,
                },
                *c,
                PrivacySettings {
                    friend_list_public: true,
                    likes_public: true,
                    searchable: true,
                },
                SimTime::EPOCH,
            );
        }
        w
    }

    #[test]
    fn confusion_counts() {
        let w = world_with_classes(&[
            ActorClass::Bot(1),
            ActorClass::Bot(1),
            ActorClass::Organic,
            ActorClass::Organic,
        ]);
        let scored = vec![
            (UserId(0), 0.9), // TP
            (UserId(1), 0.2), // FN
            (UserId(2), 0.8), // FP
            (UserId(3), 0.1), // TN
        ];
        let c = confusion_at(&w, &scored, 0.5, PositiveClass::FarmOnly);
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.5).abs() < 1e-12);
        assert!((c.fpr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn positive_class_widens_with_clickprone() {
        let w = world_with_classes(&[ActorClass::ClickProne]);
        let scored = vec![(UserId(0), 0.9)];
        let narrow = confusion_at(&w, &scored, 0.5, PositiveClass::FarmOnly);
        assert_eq!(narrow.fp, 1);
        let wide = confusion_at(&w, &scored, 0.5, PositiveClass::FarmAndClickProne);
        assert_eq!(wide.tp, 1);
    }

    #[test]
    fn perfect_separation_gives_auc_one() {
        let w = world_with_classes(&[
            ActorClass::Bot(1),
            ActorClass::Bot(1),
            ActorClass::Organic,
            ActorClass::Organic,
        ]);
        let scored = vec![
            (UserId(0), 0.9),
            (UserId(1), 0.8),
            (UserId(2), 0.2),
            (UserId(3), 0.1),
        ];
        let r = roc(&w, &scored, PositiveClass::FarmOnly);
        assert!((r.auc - 1.0).abs() < 1e-12, "auc {}", r.auc);
        assert_eq!(r.points.first(), Some(&(0.0, 0.0)));
        assert_eq!(r.points.last(), Some(&(1.0, 1.0)));
    }

    #[test]
    fn random_scores_give_auc_half() {
        let n = 2_000;
        let classes: Vec<ActorClass> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    ActorClass::Bot(1)
                } else {
                    ActorClass::Organic
                }
            })
            .collect();
        let w = world_with_classes(&classes);
        let mut rng = likelab_sim::Rng::seed_from_u64(5);
        let scored: Vec<(UserId, f64)> = (0..n).map(|i| (UserId(i as u32), rng.f64())).collect();
        let r = roc(&w, &scored, PositiveClass::FarmOnly);
        assert!((r.auc - 0.5).abs() < 0.05, "auc {}", r.auc);
    }

    #[test]
    fn degenerate_labels_fall_back() {
        let w = world_with_classes(&[ActorClass::Organic]);
        let r = roc(&w, &[(UserId(0), 0.5)], PositiveClass::FarmOnly);
        assert_eq!(r.auc, 0.5);
    }

    #[test]
    fn empty_flagging_has_unit_precision_zero_recall() {
        let w = world_with_classes(&[ActorClass::Bot(1)]);
        let c = confusion_at(&w, &[(UserId(0), 0.1)], 0.9, PositiveClass::FarmOnly);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    /// Every metric stays defined (no NaN) on the degenerate inputs a
    /// detector can legitimately produce.
    fn assert_all_finite(c: &Confusion) {
        for (name, v) in [
            ("precision", c.precision()),
            ("recall", c.recall()),
            ("f1", c.f1()),
            ("fpr", c.fpr()),
        ] {
            assert!(v.is_finite(), "{name} = {v} on {c:?}");
            assert!((0.0..=1.0).contains(&v), "{name} = {v} out of range");
        }
    }

    #[test]
    fn empty_score_list_is_fully_defined() {
        let w = world_with_classes(&[]);
        let c = confusion_at(&w, &[], 0.5, PositiveClass::FarmOnly);
        assert_eq!(
            c,
            Confusion {
                tp: 0,
                fp: 0,
                tn: 0,
                fn_: 0
            }
        );
        assert_all_finite(&c);
        assert_eq!(c.precision(), 1.0, "vacuous flagging is precise");
        assert_eq!(c.recall(), 0.0);
        let r = roc(&w, &[], PositiveClass::FarmOnly);
        assert_eq!(r.auc, 0.5, "no labels -> chance fallback");
        assert_eq!(r.points, vec![(0.0, 0.0), (1.0, 1.0)]);
    }

    #[test]
    fn all_tied_scores_collapse_to_one_roc_step() {
        // Half bots, half organics, every score identical: the sweep must
        // step over the tie block as one unit, not interleave arbitrarily.
        let w = world_with_classes(&[
            ActorClass::Bot(1),
            ActorClass::Bot(1),
            ActorClass::Organic,
            ActorClass::Organic,
        ]);
        let scored: Vec<(UserId, f64)> = (0..4).map(|i| (UserId(i), 0.7)).collect();
        let r = roc(&w, &scored, PositiveClass::FarmOnly);
        assert_eq!(
            r.points,
            vec![(0.0, 0.0), (1.0, 1.0)],
            "a single tie block is one diagonal step"
        );
        assert!((r.auc - 0.5).abs() < 1e-12, "ties give chance auc");
        for threshold in [0.0, 0.7, 1.0] {
            assert_all_finite(&confusion_at(
                &w,
                &scored,
                threshold,
                PositiveClass::FarmOnly,
            ));
        }
    }

    #[test]
    fn single_class_worlds_stay_defined() {
        // All-positive world: fpr has an empty denominator.
        let all_bots = world_with_classes(&[ActorClass::Bot(1); 3]);
        let scored: Vec<(UserId, f64)> = vec![(UserId(0), 0.9), (UserId(1), 0.5), (UserId(2), 0.1)];
        let c = confusion_at(&all_bots, &scored, 0.5, PositiveClass::FarmOnly);
        assert_all_finite(&c);
        assert_eq!(c.fpr(), 0.0, "no negatives -> fpr 0");
        assert_eq!(roc(&all_bots, &scored, PositiveClass::FarmOnly).auc, 0.5);

        // All-negative world: recall has an empty denominator.
        let all_organic = world_with_classes(&[ActorClass::Organic; 3]);
        let c = confusion_at(&all_organic, &scored, 0.5, PositiveClass::FarmOnly);
        assert_all_finite(&c);
        assert_eq!(c.recall(), 0.0, "no positives -> recall 0");
        assert_eq!(roc(&all_organic, &scored, PositiveClass::FarmOnly).auc, 0.5);
    }

    #[test]
    fn roc_is_monotone_and_bounded() {
        // A messy mixed case: duplicates, ties, inversions.
        let classes = [
            ActorClass::Bot(1),
            ActorClass::Organic,
            ActorClass::Bot(2),
            ActorClass::Organic,
            ActorClass::StealthSybil(1),
            ActorClass::Organic,
            ActorClass::ClickProne,
        ];
        let w = world_with_classes(&classes);
        let scored: Vec<(UserId, f64)> = vec![
            (UserId(0), 0.9),
            (UserId(1), 0.9), // tie across classes
            (UserId(2), 0.3),
            (UserId(3), 0.8),
            (UserId(4), 0.3), // tie across classes
            (UserId(5), 0.1),
            (UserId(6), 0.5),
        ];
        for positive in [PositiveClass::FarmOnly, PositiveClass::FarmAndClickProne] {
            let r = roc(&w, &scored, positive);
            assert!((0.0..=1.0).contains(&r.auc), "auc {} out of range", r.auc);
            assert_eq!(r.points.first(), Some(&(0.0, 0.0)));
            assert_eq!(r.points.last(), Some(&(1.0, 1.0)));
            for pair in r.points.windows(2) {
                assert!(pair[1].0 >= pair[0].0, "fpr not monotone: {:?}", r.points);
                assert!(pair[1].1 >= pair[0].1, "tpr not monotone: {:?}", r.points);
            }
        }
    }
}
