//! Per-account feature extraction — the signals the paper says detection
//! "can and should" exploit: burstiness, friend counts, like volume,
//! account age, and social embedding.

use crate::burst::{judge_account, BurstConfig};
use likelab_graph::UserId;
use likelab_osn::OsnWorld;
use likelab_sim::SimTime;
use serde::{Deserialize, Serialize};

/// The feature vector of one account.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct AccountFeatures {
    /// Share of the account's likes inside its densest 2-hour window.
    pub burstiness: f64,
    /// Total friend count (in-world + off-network, as the profile shows).
    pub friend_count: f64,
    /// Total page-like count.
    pub like_count: f64,
    /// Account age in days at evaluation time.
    pub age_days: f64,
    /// Local clustering coefficient of the in-world neighborhood — farm
    /// pairs/triplets and hub-stars cluster very differently from organic
    /// communities.
    pub clustering: f64,
}

/// Extract features for one account at time `now`.
///
/// ```
/// use likelab_detect::features::extract;
/// use likelab_detect::BurstConfig;
/// use likelab_osn::{
///     ActorClass, Country, Gender, OsnWorld, PrivacySettings, Profile,
/// };
/// use likelab_sim::SimTime;
///
/// let mut world = OsnWorld::new();
/// let u = world.create_account(
///     Profile { gender: Gender::Male, age: 30, country: Country::Usa, home_region: 0 },
///     ActorClass::Organic,
///     PrivacySettings { friend_list_public: true, likes_public: true, searchable: true },
///     SimTime::EPOCH,
/// );
/// world.set_off_network_friends(u, 40);
/// let f = extract(&world, u, SimTime::at_day(10), &BurstConfig::default());
/// assert_eq!(f.age_days, 10.0);
/// assert_eq!(f.friend_count, 40.0);
/// assert_eq!(f.like_count, 0.0);
/// ```
pub fn extract(
    world: &OsnWorld,
    user: UserId,
    now: SimTime,
    burst: &BurstConfig,
) -> AccountFeatures {
    let acct = world.account(user);
    AccountFeatures {
        burstiness: judge_account(world, user, burst).peak_share,
        friend_count: world.total_friend_count(user) as f64,
        like_count: world.likes().user_like_count(user) as f64,
        age_days: now.saturating_since(acct.created_at).as_days_f64(),
        clustering: likelab_graph::metrics::local_clustering(world.friends(), user),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_graph::PageId;
    use likelab_osn::{ActorClass, Country, Gender, PageCategory, PrivacySettings, Profile};
    use likelab_sim::SimDuration;

    #[test]
    fn features_reflect_account_shape() {
        let mut w = OsnWorld::new();
        let mk = |w: &mut OsnWorld, created: SimTime| {
            w.create_account(
                Profile {
                    gender: Gender::Female,
                    age: 30,
                    country: Country::Usa,
                    home_region: 0,
                },
                ActorClass::Organic,
                PrivacySettings {
                    friend_list_public: true,
                    likes_public: true,
                    searchable: true,
                },
                created,
            )
        };
        let bot = mk(&mut w, SimTime::at_day(98));
        let a = mk(&mut w, SimTime::EPOCH);
        let b = mk(&mut w, SimTime::EPOCH);
        let c = mk(&mut w, SimTime::EPOCH);
        // Triangle around `a`.
        w.add_friendship(a, b);
        w.add_friendship(a, c);
        w.add_friendship(b, c);
        w.set_off_network_friends(a, 100);
        // Bot: 30 likes in 30 minutes.
        for i in 0..30 {
            let p = w.create_page(
                format!("p{i}"),
                "",
                None,
                PageCategory::Background,
                SimTime::EPOCH,
            );
            w.record_like(bot, p, SimTime::at_day(100) + SimDuration::minutes(i));
        }
        // `a`: 3 likes spread out.
        for i in 0..3u32 {
            w.record_like(a, PageId(i), SimTime::at_day(10 * u64::from(i)));
        }
        let now = SimTime::at_day(101);
        let cfg = BurstConfig {
            min_events: 3,
            ..BurstConfig::default()
        };
        let fb = extract(&w, bot, now, &cfg);
        let fa = extract(&w, a, now, &cfg);
        assert!(fb.burstiness > 0.99);
        assert!(fa.burstiness < 0.4);
        assert!((fb.age_days - 3.0).abs() < 1e-9);
        assert!((fa.age_days - 101.0).abs() < 1e-9);
        assert_eq!(fa.friend_count, 102.0, "2 in-world + 100 off-network");
        assert_eq!(fb.friend_count, 0.0);
        assert_eq!(fb.like_count, 30.0);
        assert!((fa.clustering - 1.0).abs() < 1e-12, "triangle");
    }
}
