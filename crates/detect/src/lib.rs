//! # likelab-detect — like-fraud detection against ground truth
//!
//! The paper closes by arguing that fake likes "exhibit some peculiar
//! characteristics — including demographics, likes, temporal and social
//! graph patterns — that can and should be exploited by like fraud
//! detection algorithms". This crate builds those detectors and scores them
//! against the simulator's labels:
//!
//! - [`burst`] — densest-window share of page and account like streams;
//! - [`lockstep`] — CopyCatch-style co-liking clusters;
//! - [`audience`] — page-audience demographic divergence (Table 2's signal
//!   turned into a detector);
//! - [`features`] / [`scorer`] — a combined per-account model, with a
//!   logistic-regression trainer in [`train`];
//! - [`sybilrank`] — SybilRank-style trust propagation, the graph-defense
//!   baseline family the paper's related work discusses;
//! - [`eval`] — precision/recall/F1 and ROC/AUC against [`ActorClass`]
//!   ground truth (the one module allowed to peek at labels);
//! - [`online`] — streaming variants of burst/lockstep/SybilRank/features
//!   for the `likelab serve` engine, each carrying a bitwise
//!   online-vs-batch equivalence contract (see `SERVING.md`).
//!
//! The expected (and reproduced) punchline: bot-burst farm accounts are
//! easy; BoostLikes-style stealth accounts score near-organic.
//!
//! [`ActorClass`]: likelab_osn::ActorClass

pub mod audience;
pub mod burst;
pub mod eval;
pub mod features;
pub mod lockstep;
pub mod online;
pub mod scorer;
pub mod sybilrank;
pub mod train;

pub use audience::{judge_audience, AudienceConfig, AudienceVerdict};
pub use burst::{judge_account, judge_page, BurstConfig, BurstVerdict};
pub use eval::{confusion_at, roc, Confusion, PositiveClass, Roc};
pub use features::{extract, AccountFeatures};
pub use lockstep::{detect, detect_from_buckets, LockstepConfig, LockstepReport};
pub use online::{OnlineBurst, OnlineDetectors, OnlineLockstep, OnlineSybilRank};
pub use scorer::{score, ScorerWeights};
pub use sybilrank::{sybil_rank, SybilRankConfig, TrustScores};
pub use train::{fit, TrainConfig};
