//! Lockstep co-liking detection, in the spirit of CopyCatch (Beutel et al.,
//! WWW 2013), which the paper cites as the state of the art it complements.
//!
//! Farm accounts work through job lists together: the same set of accounts
//! likes the same set of pages inside the same short windows. The detector
//! buckets every like by `(page, time-window)`, counts how often each pair
//! of users co-occurs in a bucket, and unions pairs with enough shared
//! buckets into suspicious clusters.

use likelab_graph::UserId;
use likelab_osn::OsnWorld;
use likelab_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Lockstep-detector parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LockstepConfig {
    /// Width of the co-occurrence time window.
    pub window: SimDuration,
    /// Pairs must share at least this many `(page, window)` buckets.
    pub min_shared_buckets: usize,
    /// Buckets smaller than this are skipped (no evidence of coordination).
    pub min_bucket_size: usize,
    /// Buckets larger than this are subsampled to bound the pair blow-up
    /// (a mega-popular page's window says little about coordination anyway).
    pub max_bucket_size: usize,
}

impl Default for LockstepConfig {
    fn default() -> Self {
        LockstepConfig {
            window: SimDuration::hours(2),
            min_shared_buckets: 3,
            min_bucket_size: 5,
            max_bucket_size: 400,
        }
    }
}

/// The detector's output: clusters of lockstep accounts, largest first.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LockstepReport {
    /// Suspicious clusters (each sorted, list sorted by size descending).
    pub clusters: Vec<Vec<UserId>>,
}

impl LockstepReport {
    /// All flagged users.
    pub fn flagged(&self) -> Vec<UserId> {
        let mut v: Vec<UserId> = self.clusters.iter().flatten().copied().collect();
        v.sort_unstable();
        v
    }
}

/// The `(page, window index)` key a like at time `at` buckets under.
pub(crate) fn bucket_key(page: u32, at_secs: u64, config: &LockstepConfig) -> (u32, u64) {
    (page, at_secs / config.window.as_secs().max(1))
}

/// Run lockstep detection over the whole like ledger.
///
/// ```
/// use likelab_detect::lockstep::{detect, LockstepConfig};
/// use likelab_osn::OsnWorld;
///
/// // An empty world has no co-liking evidence.
/// let world = OsnWorld::new();
/// let report = detect(&world, &LockstepConfig::default());
/// assert!(report.clusters.is_empty());
/// ```
pub fn detect(world: &OsnWorld, config: &LockstepConfig) -> LockstepReport {
    // Bucket likes by (page, window index).
    // BTree maps throughout: every aggregation here is commutative, but
    // deterministic iteration keeps intermediate vectors (and anything a
    // future change derives from them) reproducible by construction.
    let mut buckets: BTreeMap<(u32, u64), Vec<UserId>> = BTreeMap::new();
    for r in world.likes().records() {
        buckets
            .entry(bucket_key(r.page.0, r.at.as_secs(), config))
            .or_default()
            .push(r.user);
    }
    detect_from_buckets(&buckets, config)
}

/// The pair-counting / clustering kernel behind [`detect`], over
/// already-bucketed likes.
///
/// This is the shared tail of the batch and online paths: the online
/// detector ([`crate::online::OnlineLockstep`]) maintains the bucket map
/// incrementally and calls this exact kernel on demand, which is what makes
/// its end-of-stream report **bitwise identical** to [`detect`]'s. The
/// kernel sorts and dedups each bucket before counting, so the insertion
/// order of a bucket's members is irrelevant to the output.
pub fn detect_from_buckets(
    buckets: &BTreeMap<(u32, u64), Vec<UserId>>,
    config: &LockstepConfig,
) -> LockstepReport {
    // Count co-occurrences per user pair.
    let mut pair_counts: BTreeMap<(UserId, UserId), u32> = BTreeMap::new();
    for users in buckets.values() {
        if users.len() < config.min_bucket_size {
            continue;
        }
        let mut users: Vec<UserId> = users.clone();
        users.sort_unstable();
        users.dedup();
        // Deterministic subsample: evenly strided.
        let sampled: Vec<UserId> = if users.len() > config.max_bucket_size {
            let stride = users.len() as f64 / config.max_bucket_size as f64;
            (0..config.max_bucket_size)
                // lint:allow(panic-reachable-from-serve): i * stride < len since stride = len / max and i < max
                .map(|i| users[(i as f64 * stride) as usize])
                .collect()
        } else {
            users
        };
        for i in 0..sampled.len() {
            for j in (i + 1)..sampled.len() {
                // lint:allow(panic-reachable-from-serve): i, j < sampled.len() by the loop bounds
                *pair_counts.entry((sampled[i], sampled[j])).or_insert(0) += 1;
            }
        }
    }
    // Union pairs that cross the evidence threshold.
    let strong: Vec<(UserId, UserId)> = pair_counts
        .into_iter()
        .filter(|(_, c)| *c as usize >= config.min_shared_buckets)
        .map(|(p, _)| p)
        .collect();
    let mut members: Vec<UserId> = strong.iter().flat_map(|(a, b)| [*a, *b]).collect();
    members.sort_unstable();
    members.dedup();
    let mut uf = likelab_graph::UnionFind::new(&members);
    for (a, b) in &strong {
        uf.union(*a, *b);
    }
    let mut groups: BTreeMap<UserId, Vec<UserId>> = BTreeMap::new();
    for m in &members {
        groups.entry(uf.find(*m)).or_default().push(*m);
    }
    let mut clusters: Vec<Vec<UserId>> = groups.into_values().collect();
    for c in &mut clusters {
        c.sort_unstable();
    }
    // lint:allow(panic-reachable-from-serve): every cluster holds >= 1 member by construction
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    LockstepReport { clusters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_graph::PageId;
    use likelab_osn::{ActorClass, Country, Gender, PageCategory, PrivacySettings, Profile};
    use likelab_sim::{Rng, SimTime};

    fn mk_world(n_users: u32, n_pages: u32) -> OsnWorld {
        let mut w = OsnWorld::new();
        for i in 0..n_users {
            let class = if i < 20 {
                ActorClass::Bot(1)
            } else {
                ActorClass::Organic
            };
            w.create_account(
                Profile {
                    gender: Gender::Male,
                    age: 25,
                    country: Country::Usa,
                    home_region: 0,
                },
                class,
                PrivacySettings {
                    friend_list_public: true,
                    likes_public: true,
                    searchable: true,
                },
                SimTime::EPOCH,
            );
        }
        for i in 0..n_pages {
            w.create_page(
                format!("p{i}"),
                "",
                None,
                PageCategory::Background,
                SimTime::EPOCH,
            );
        }
        w
    }

    /// 20 bots sweep pages 0..6 together in tight windows; 80 organic users
    /// like random pages at random times.
    fn scenario() -> OsnWorld {
        let mut w = mk_world(100, 50);
        let mut rng = Rng::seed_from_u64(7);
        for (job, page) in (0..6u32).enumerate() {
            let start = SimTime::at_day(10 + 3 * job as u64);
            for bot in 0..20u32 {
                w.record_like(
                    UserId(bot),
                    PageId(page),
                    start + SimDuration::minutes(rng.below(90)),
                );
            }
        }
        for organic in 20..100u32 {
            for _ in 0..10 {
                let page = PageId(rng.below(50) as u32);
                let at = SimTime::from_secs(rng.below(100 * 86_400));
                w.record_like(UserId(organic), page, at);
            }
        }
        w
    }

    #[test]
    fn lockstep_ring_is_caught_organics_are_not() {
        let w = scenario();
        let report = detect(&w, &LockstepConfig::default());
        assert!(!report.clusters.is_empty(), "the bot ring must be found");
        let biggest = &report.clusters[0];
        let bots_in = biggest.iter().filter(|u| u.0 < 20).count();
        assert!(bots_in >= 18, "most bots clustered: {bots_in}");
        let organics_flagged = report.flagged().iter().filter(|u| u.0 >= 20).count();
        assert!(
            organics_flagged <= 4,
            "few organic false positives: {organics_flagged}"
        );
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let w = scenario();
        let strict = detect(
            &w,
            &LockstepConfig {
                min_shared_buckets: 100,
                ..LockstepConfig::default()
            },
        );
        assert!(strict.clusters.is_empty(), "nobody shares 100 buckets");
    }

    #[test]
    fn empty_world_is_clean() {
        let w = mk_world(5, 5);
        let report = detect(&w, &LockstepConfig::default());
        assert!(report.clusters.is_empty());
        assert!(report.flagged().is_empty());
    }

    #[test]
    fn single_shared_burst_is_insufficient() {
        // One co-liked page is normal (a viral post); 3+ is coordination.
        let mut w = mk_world(30, 5);
        for u in 0..30u32 {
            w.record_like(UserId(u), PageId(0), SimTime::at_day(1));
        }
        let report = detect(&w, &LockstepConfig::default());
        assert!(report.clusters.is_empty());
    }
}
