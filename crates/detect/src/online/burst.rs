//! Online burst detection: per-entity like streams maintained
//! incrementally, with verdicts on demand.
//!
//! ## Parity contract
//!
//! [`judge`](crate::burst::judge) is a pure function of the *sorted
//! multiset* of timestamps: it sorts its input and takes the densest-window
//! share. So an online variant is bitwise-equal to the batch one iff, at
//! query time, it evaluates the same statistic over the same multiset. This
//! implementation keeps the full per-entity timestamp vector (windows never
//! expire — neither do the batch detector's) and keeps it sorted:
//!
//! - an in-order arrival (`at >=` the current maximum — the overwhelmingly
//!   common case for a page's live stream) appends and advances the
//!   two-pointer densest-window scan in amortized O(1);
//! - an out-of-order arrival (farm accounts backfill camouflage histories
//!   with past timestamps) marks the stream dirty; the next verdict
//!   re-sorts and re-scans, exactly as the batch path would.
//!
//! Either way the verdict is computed from the same sorted timestamps with
//! the same float expression, so equality is exact, not approximate.

use crate::burst::{peak_share, BurstConfig, BurstVerdict};
use likelab_graph::{PageId, UserId};
use likelab_sim::SimTime;

/// One entity's timestamp stream plus incremental scan state.
#[derive(Clone, Debug, Default)]
struct Stream {
    /// Timestamps, kept sorted while `dirty` is false.
    times: Vec<SimTime>,
    /// Two-pointer window start (valid while clean).
    lo: usize,
    /// Densest-window event count seen so far (valid while clean).
    best: usize,
    /// An out-of-order arrival invalidates the incremental state.
    dirty: bool,
}

impl Stream {
    fn push(&mut self, at: SimTime, window: likelab_sim::SimDuration) {
        if self.dirty {
            self.times.push(at);
            return;
        }
        if let Some(&last) = self.times.last() {
            if at < last {
                // Backfill: fall back to batch behaviour at next query.
                self.times.push(at);
                self.dirty = true;
                return;
            }
        }
        self.times.push(at);
        let hi = self.times.len() - 1;
        while self.times[hi].since(self.times[self.lo]) > window {
            self.lo += 1;
        }
        self.best = self.best.max(hi - self.lo + 1);
    }

    fn verdict(&mut self, config: &BurstConfig) -> BurstVerdict {
        let events = self.times.len();
        if events < config.min_events || events == 0 {
            // The batch judge reports an empty stream (reachable only with
            // `min_events == 0`) as share 0.0; `flagged` mirrors its
            // threshold comparison on that same value.
            return BurstVerdict {
                peak_share: 0.0,
                events,
                flagged: events == 0 && config.min_events == 0 && 0.0 >= config.share_threshold,
            };
        }
        let share = if self.dirty {
            // Same code path as the batch judge: sort + full scan.
            let share = peak_share(&mut self.times, config.window);
            // The vector is sorted again; rebuild the incremental state.
            self.dirty = false;
            self.lo = 0;
            self.best = 0;
            let mut lo = 0usize;
            let mut best = 1usize;
            for hi in 0..self.times.len() {
                // lint:allow(panic-reachable-from-serve): lo <= hi < times.len() throughout the sweep
                while self.times[hi].since(self.times[lo]) > config.window {
                    lo += 1;
                }
                best = best.max(hi - lo + 1);
            }
            self.lo = lo;
            self.best = best;
            share
        } else {
            self.best.max(1) as f64 / events as f64
        };
        BurstVerdict {
            peak_share: share,
            events,
            flagged: share >= config.share_threshold,
        }
    }
}

/// Incremental burst detector over page and account like streams. See the
/// module docs for the parity contract.
///
/// ```
/// use likelab_detect::online::OnlineBurst;
/// use likelab_detect::BurstConfig;
/// use likelab_graph::{PageId, UserId};
/// use likelab_sim::{SimDuration, SimTime};
///
/// let config = BurstConfig { min_events: 4, ..BurstConfig::default() };
/// let mut online = OnlineBurst::new(config);
/// // 4 likes inside one 2-hour window: a full-share burst.
/// for i in 0..4 {
///     let at = SimTime::at_day(3) + SimDuration::minutes(i);
///     online.record_like(UserId(i as u32), PageId(0), at);
/// }
/// let v = online.page_verdict(PageId(0));
/// assert!(v.flagged && v.peak_share == 1.0);
/// ```
#[derive(Debug)]
pub struct OnlineBurst {
    config: BurstConfig,
    pages: Vec<Stream>,
    users: Vec<Stream>,
}

impl OnlineBurst {
    /// An empty detector.
    pub fn new(config: BurstConfig) -> Self {
        OnlineBurst {
            config,
            pages: Vec::new(),
            users: Vec::new(),
        }
    }

    /// The configuration verdicts are judged under.
    pub fn config(&self) -> &BurstConfig {
        &self.config
    }

    fn stream(streams: &mut Vec<Stream>, idx: usize) -> &mut Stream {
        if idx >= streams.len() {
            streams.resize_with(idx + 1, Stream::default);
        }
        // lint:allow(panic-reachable-from-serve): resize_with above guarantees idx is in bounds
        &mut streams[idx]
    }

    /// Feed one **accepted** like (feed rejected likes nowhere — the batch
    /// detector never sees them either).
    pub fn record_like(&mut self, user: UserId, page: PageId, at: SimTime) {
        let window = self.config.window;
        Self::stream(&mut self.pages, page.idx()).push(at, window);
        Self::stream(&mut self.users, user.idx()).push(at, window);
    }

    /// The page's burst verdict over everything recorded so far — equal to
    /// [`crate::burst::judge_page`] with `since = None` on a world holding
    /// the same accepted likes.
    pub fn page_verdict(&mut self, page: PageId) -> BurstVerdict {
        Self::stream(&mut self.pages, page.idx()).verdict(&self.config)
    }

    /// The account's burst verdict — equal to
    /// [`crate::burst::judge_account`] on a world holding the same accepted
    /// likes.
    pub fn user_verdict(&mut self, user: UserId) -> BurstVerdict {
        Self::stream(&mut self.users, user.idx()).verdict(&self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::judge;
    use likelab_sim::Rng;

    /// Compare every intermediate verdict (not just end-of-stream) against
    /// the batch judge on the same prefix.
    fn assert_prefix_parity(times: &[SimTime], config: &BurstConfig) {
        let mut online = OnlineBurst::new(*config);
        for (i, &at) in times.iter().enumerate() {
            online.record_like(UserId(0), PageId(0), at);
            let batch_page = judge(times[..=i].to_vec(), config);
            let batch_user = judge(times[..=i].to_vec(), config);
            assert_eq!(online.page_verdict(PageId(0)), batch_page, "prefix {i}");
            assert_eq!(online.user_verdict(UserId(0)), batch_user, "prefix {i}");
        }
    }

    #[test]
    fn in_order_stream_matches_batch_at_every_prefix() {
        let times: Vec<SimTime> = (0..50).map(|i| SimTime::from_secs(i * 1800)).collect();
        assert_prefix_parity(
            &times,
            &BurstConfig {
                min_events: 5,
                ..BurstConfig::default()
            },
        );
    }

    #[test]
    fn out_of_order_backfill_matches_batch_at_every_prefix() {
        let mut rng = Rng::seed_from_u64(11);
        let times: Vec<SimTime> = (0..60)
            .map(|_| SimTime::from_secs(rng.below(20 * 86_400)))
            .collect();
        assert_prefix_parity(
            &times,
            &BurstConfig {
                min_events: 3,
                ..BurstConfig::default()
            },
        );
    }

    #[test]
    fn verdicts_are_bitwise_equal_not_just_close() {
        let mut rng = Rng::seed_from_u64(5);
        let times: Vec<SimTime> = (0..200)
            .map(|_| SimTime::from_secs(rng.below(5 * 86_400)))
            .collect();
        let config = BurstConfig::default();
        let mut online = OnlineBurst::new(config);
        for &at in &times {
            online.record_like(UserId(3), PageId(7), at);
        }
        let batch = judge(times, &config);
        let v = online.page_verdict(PageId(7));
        assert_eq!(v.peak_share.to_bits(), batch.peak_share.to_bits());
        assert_eq!(online.user_verdict(UserId(3)), batch);
    }

    #[test]
    fn unseen_entities_judge_as_empty_streams() {
        let mut online = OnlineBurst::new(BurstConfig::default());
        let v = online.page_verdict(PageId(40));
        assert_eq!(v.events, 0);
        assert!(!v.flagged);
        assert_eq!(v.peak_share, 0.0);
    }

    #[test]
    fn repeated_queries_are_stable_after_resort() {
        let config = BurstConfig {
            min_events: 2,
            ..BurstConfig::default()
        };
        let mut online = OnlineBurst::new(config);
        online.record_like(UserId(0), PageId(0), SimTime::at_day(5));
        online.record_like(UserId(0), PageId(0), SimTime::at_day(1)); // backfill
        let first = online.page_verdict(PageId(0));
        let second = online.page_verdict(PageId(0));
        assert_eq!(first, second);
        // And further in-order appends extend the rebuilt state correctly.
        online.record_like(UserId(0), PageId(0), SimTime::at_day(5));
        let batch = judge(
            vec![SimTime::at_day(5), SimTime::at_day(1), SimTime::at_day(5)],
            &config,
        );
        assert_eq!(online.page_verdict(PageId(0)), batch);
    }
}
