//! Streaming feature extraction: the batch feature vector assembled from
//! the live world replica plus the incremental burst detector.
//!
//! ## Parity contract
//!
//! Four of the five features in [`AccountFeatures`] are point reads of
//! world state (friend count, like count, age, clustering) — on a replica
//! rebuilt from the same accepted events they are identical by
//! construction. The fifth, burstiness, is the account's
//! [`OnlineBurst`](super::OnlineBurst) verdict, which is bitwise-equal to
//! the batch judge (see that module's contract). So
//! [`extract_online`] == [`extract`](crate::features::extract) exactly,
//! and feeding either vector to [`crate::scorer::score`] yields the same
//! fraud score bit for bit.

use super::OnlineBurst;
use crate::features::AccountFeatures;
use crate::scorer::{score, ScorerWeights};
use likelab_graph::UserId;
use likelab_osn::OsnWorld;
use likelab_sim::SimTime;

/// Extract one account's features at time `now`, reading world state from
/// the live replica and burstiness from the online burst detector.
///
/// `world` and `burst` must have been fed the same accepted event stream;
/// `now` is the stream watermark (at end-of-stream, the same study-end
/// clock the batch pipeline evaluates at).
///
/// ```
/// use likelab_detect::online::{extract_online, OnlineBurst};
/// use likelab_detect::BurstConfig;
/// use likelab_graph::UserId;
/// use likelab_osn::{
///     ActorClass, Country, Gender, OsnWorld, PrivacySettings, Profile,
/// };
/// use likelab_sim::SimTime;
///
/// let mut world = OsnWorld::new();
/// let u = world.create_account(
///     Profile { gender: Gender::Male, age: 30, country: Country::Usa, home_region: 0 },
///     ActorClass::Organic,
///     PrivacySettings { friend_list_public: true, likes_public: true, searchable: true },
///     SimTime::EPOCH,
/// );
/// let mut burst = OnlineBurst::new(BurstConfig::default());
/// let f = extract_online(&world, &mut burst, u, SimTime::at_day(30));
/// assert_eq!(f.age_days, 30.0);
/// assert_eq!(f.like_count, 0.0);
/// ```
pub fn extract_online(
    world: &OsnWorld,
    burst: &mut OnlineBurst,
    user: UserId,
    now: SimTime,
) -> AccountFeatures {
    let acct = world.account(user);
    AccountFeatures {
        burstiness: burst.user_verdict(user).peak_share,
        friend_count: world.total_friend_count(user) as f64,
        like_count: world.likes().user_like_count(user) as f64,
        age_days: now.saturating_since(acct.created_at).as_days_f64(),
        clustering: likelab_graph::metrics::local_clustering(world.friends(), user),
    }
}

/// [`extract_online`] piped through [`score`]: one account's fraud score
/// from the live state.
pub fn score_online(
    world: &OsnWorld,
    burst: &mut OnlineBurst,
    user: UserId,
    now: SimTime,
    weights: &ScorerWeights,
) -> f64 {
    score(&extract_online(world, burst, user, now), weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::BurstConfig;
    use crate::features::extract;
    use likelab_graph::PageId;
    use likelab_osn::{ActorClass, Country, Gender, PageCategory, PrivacySettings, Profile};
    use likelab_sim::Rng;

    /// Build one world two ways — batch-style mutation and an online feed —
    /// and check the feature vectors and scores agree bitwise.
    #[test]
    fn online_features_and_scores_match_batch_bitwise() {
        let mut w = OsnWorld::new();
        let mut users = Vec::new();
        for i in 0..12u32 {
            users.push(w.create_account(
                Profile {
                    gender: Gender::Female,
                    age: 18 + i as u8,
                    country: Country::Usa,
                    home_region: 0,
                },
                if i < 4 {
                    ActorClass::Bot(0)
                } else {
                    ActorClass::Organic
                },
                PrivacySettings {
                    friend_list_public: true,
                    likes_public: true,
                    searchable: true,
                },
                SimTime::at_day(u64::from(i)),
            ));
        }
        for i in 0..10u32 {
            w.create_page(
                format!("p{i}"),
                "",
                None,
                PageCategory::Background,
                SimTime::EPOCH,
            );
        }
        w.add_friendship(users[4], users[5]);
        w.add_friendship(users[4], users[6]);
        w.add_friendship(users[5], users[6]);
        w.set_off_network_friends(users[4], 50);
        let mut rng = Rng::seed_from_u64(21);
        let burst_cfg = BurstConfig {
            min_events: 3,
            ..BurstConfig::default()
        };
        let mut online = OnlineBurst::new(burst_cfg);
        for _ in 0..300 {
            let u = users[rng.index(users.len())];
            let p = PageId(rng.below(10) as u32);
            let at = SimTime::from_secs(rng.below(40 * 86_400));
            if w.record_like(u, p, at) {
                online.record_like(u, p, at);
            }
        }
        let now = SimTime::at_day(41);
        let weights = ScorerWeights::default();
        for &u in &users {
            let batch_f = extract(&w, u, now, &burst_cfg);
            let online_f = extract_online(&w, &mut online, u, now);
            assert_eq!(
                batch_f.burstiness.to_bits(),
                online_f.burstiness.to_bits(),
                "user {u:?}"
            );
            assert_eq!(batch_f.friend_count, online_f.friend_count);
            assert_eq!(batch_f.like_count, online_f.like_count);
            assert_eq!(batch_f.age_days.to_bits(), online_f.age_days.to_bits());
            assert_eq!(batch_f.clustering.to_bits(), online_f.clustering.to_bits());
            let batch_score = score(&batch_f, &weights);
            let online_score = score_online(&w, &mut online, u, now, &weights);
            assert_eq!(batch_score.to_bits(), online_score.to_bits());
        }
    }
}
