//! Online lockstep detection: the `(page, window)` bucket map maintained
//! incrementally, reports produced by the batch kernel.
//!
//! ## Parity contract
//!
//! Batch [`detect`](crate::lockstep::detect) is two stages: bucket every
//! like by [`bucket_key`], then run the pair-counting / clustering kernel
//! [`detect_from_buckets`]. The first stage is a fold over likes that only
//! ever appends to bucket vectors, so it can be maintained incrementally
//! with no approximation at all; the second stage sorts and dedups each
//! bucket before counting, so the order likes arrived in is irrelevant.
//! [`OnlineLockstep`] does exactly that — same key function, same kernel —
//! which makes its report **bitwise identical** to the batch one over the
//! same accepted likes, at any point in the stream, not just the end.

use crate::lockstep::{bucket_key, detect_from_buckets, LockstepConfig, LockstepReport};
use likelab_graph::{PageId, UserId};
use likelab_sim::SimTime;
use std::collections::BTreeMap;

/// Incremental lockstep detector. See the module docs for the parity
/// contract.
///
/// ```
/// use likelab_detect::online::OnlineLockstep;
/// use likelab_detect::LockstepConfig;
///
/// let mut online = OnlineLockstep::new(LockstepConfig::default());
/// // No likes recorded: no co-liking evidence.
/// assert!(online.report().clusters.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct OnlineLockstep {
    config: LockstepConfig,
    buckets: BTreeMap<(u32, u64), Vec<UserId>>,
    likes_seen: usize,
}

impl OnlineLockstep {
    /// An empty detector.
    pub fn new(config: LockstepConfig) -> Self {
        OnlineLockstep {
            config,
            buckets: BTreeMap::new(),
            likes_seen: 0,
        }
    }

    /// The configuration reports are produced under.
    pub fn config(&self) -> &LockstepConfig {
        &self.config
    }

    /// Feed one **accepted** like.
    pub fn record_like(&mut self, user: UserId, page: PageId, at: SimTime) {
        self.buckets
            .entry(bucket_key(page.0, at.as_secs(), &self.config))
            .or_default()
            .push(user);
        self.likes_seen += 1;
    }

    /// Number of likes folded in so far.
    pub fn likes_seen(&self) -> usize {
        self.likes_seen
    }

    /// Run the batch kernel over the current buckets — equal to
    /// [`crate::lockstep::detect`] on a world holding the same accepted
    /// likes.
    ///
    /// Unlike the burst and SybilRank detectors this recomputes the
    /// pair-counting stage on every call (pair counts are not cheaply
    /// decomposable), so callers should query it at a coarser cadence than
    /// per-event; the serve engine does so per query, not per ingest chunk.
    pub fn report(&self) -> LockstepReport {
        detect_from_buckets(&self.buckets, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstep::detect;
    use likelab_osn::{
        ActorClass, Country, Gender, OsnWorld, PageCategory, PrivacySettings, Profile,
    };
    use likelab_sim::{Rng, SimDuration};

    /// A bot ring plus organic noise, mirrored into both a world (batch
    /// path) and the online detector, with the online feed shuffled to prove
    /// arrival order is irrelevant.
    #[test]
    fn shuffled_online_feed_matches_batch_report() {
        let mut w = OsnWorld::new();
        for i in 0..60u32 {
            let class = if i < 15 {
                ActorClass::Bot(1)
            } else {
                ActorClass::Organic
            };
            w.create_account(
                Profile {
                    gender: Gender::Male,
                    age: 25,
                    country: Country::Usa,
                    home_region: 0,
                },
                class,
                PrivacySettings {
                    friend_list_public: true,
                    likes_public: true,
                    searchable: true,
                },
                SimTime::EPOCH,
            );
        }
        for i in 0..30u32 {
            w.create_page(
                format!("p{i}"),
                "",
                None,
                PageCategory::Background,
                SimTime::EPOCH,
            );
        }
        let mut rng = Rng::seed_from_u64(9);
        let mut feed: Vec<(UserId, PageId, SimTime)> = Vec::new();
        for job in 0..5u32 {
            let start = SimTime::at_day(5 + 2 * u64::from(job));
            for bot in 0..15u32 {
                feed.push((
                    UserId(bot),
                    PageId(job),
                    start + SimDuration::minutes(rng.below(60)),
                ));
            }
        }
        for organic in 15..60u32 {
            for _ in 0..8 {
                feed.push((
                    UserId(organic),
                    PageId(rng.below(30) as u32),
                    SimTime::from_secs(rng.below(60 * 86_400)),
                ));
            }
        }
        // Batch side ingests in generation order; the ledger dedups
        // (user, page) pairs, so feed the online side only accepted likes.
        let mut online = OnlineLockstep::new(LockstepConfig::default());
        let mut accepted: Vec<(UserId, PageId, SimTime)> = Vec::new();
        for &(u, p, at) in &feed {
            if w.record_like(u, p, at) {
                accepted.push((u, p, at));
            }
        }
        // Shuffle the accepted stream before replaying it online.
        for i in (1..accepted.len()).rev() {
            accepted.swap(i, rng.index(i + 1));
        }
        for (u, p, at) in accepted {
            online.record_like(u, p, at);
        }
        let batch = detect(&w, &LockstepConfig::default());
        let online_report = online.report();
        assert_eq!(online_report.clusters, batch.clusters);
        assert!(!batch.clusters.is_empty(), "the ring must be found");
        assert_eq!(online.likes_seen(), w.likes().len());
    }

    #[test]
    fn empty_detector_reports_clean() {
        let online = OnlineLockstep::new(LockstepConfig::default());
        assert!(online.report().clusters.is_empty());
        assert_eq!(online.likes_seen(), 0);
    }
}
