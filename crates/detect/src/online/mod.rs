//! Online (streaming) variants of the batch detectors, for the
//! `likelab serve` engine.
//!
//! Each batch detector in this crate is a pure function of world state; the
//! serve path instead sees an *event stream* and must answer queries while
//! ingest continues. The modules here hold per-detector incremental state
//! fed by [`DetectorUpdate`]s (the acceptance-filtered fanout from
//! [`likelab_osn::EventFanout`]) and promise the **online-vs-batch
//! equivalence contract** documented in `SERVING.md`:
//!
//! > At end-of-stream — and for burst/lockstep at *every* prefix — a query
//! > answered from online state is bitwise equal to the batch detector run
//! > on a world rebuilt from the same accepted events.
//!
//! How each detector honors it:
//!
//! - [`OnlineBurst`] keeps per-entity sorted timestamp vectors: in-order
//!   arrivals advance a two-pointer scan in O(1); backfills fall back to
//!   the batch sort-and-scan lazily at the next query.
//! - [`OnlineLockstep`] maintains the `(page, window)` bucket map
//!   incrementally and runs the extracted batch kernel
//!   ([`crate::lockstep::detect_from_buckets`]) on demand.
//! - [`OnlineSybilRank`] gates the exact batch power iteration behind a
//!   graph-delta dirty flag (no warm starts — they converge close, not
//!   equal).
//! - [`extract_online`] / [`score_online`] assemble the feature vector
//!   from the live world replica plus the online burst verdict.
//!
//! [`OnlineDetectors`] bundles all of the above behind a single
//! [`apply`](OnlineDetectors::apply) fanout.
//!
//! [`DetectorUpdate`]: likelab_osn::DetectorUpdate

mod burst;
mod features;
mod lockstep;
mod sybilrank;

pub use burst::OnlineBurst;
pub use features::{extract_online, score_online};
pub use lockstep::OnlineLockstep;
pub use sybilrank::{organic_seeds, OnlineSybilRank};

use crate::burst::BurstConfig;
use crate::lockstep::LockstepConfig;
use crate::sybilrank::SybilRankConfig;
use likelab_osn::DetectorUpdate;

/// The full online detector suite behind one update fanout.
///
/// Feed it every [`DetectorUpdate`] the event fanout emits; query the
/// individual detectors through the accessors. Updates that only change
/// world state the detectors read on demand (off-network counts,
/// termination status) are no-ops here — the world replica carries them.
///
/// ```
/// use likelab_detect::online::OnlineDetectors;
/// use likelab_detect::{BurstConfig, LockstepConfig, SybilRankConfig};
/// use likelab_graph::{PageId, UserId};
/// use likelab_osn::DetectorUpdate;
/// use likelab_sim::SimTime;
///
/// let mut suite = OnlineDetectors::new(
///     BurstConfig { min_events: 1, ..BurstConfig::default() },
///     LockstepConfig::default(),
///     SybilRankConfig::default(),
/// );
/// suite.apply(DetectorUpdate::LikeAccepted {
///     user: UserId(0),
///     page: PageId(0),
///     at: SimTime::at_day(1),
/// });
/// assert_eq!(suite.burst_mut().page_verdict(PageId(0)).events, 1);
/// assert!(suite.sybilrank().is_dirty());
/// ```
#[derive(Debug)]
pub struct OnlineDetectors {
    burst: OnlineBurst,
    lockstep: OnlineLockstep,
    sybil: OnlineSybilRank,
    updates_seen: usize,
}

impl OnlineDetectors {
    /// An empty suite with the given per-detector configurations.
    pub fn new(burst: BurstConfig, lockstep: LockstepConfig, sybil: SybilRankConfig) -> Self {
        OnlineDetectors {
            burst: OnlineBurst::new(burst),
            lockstep: OnlineLockstep::new(lockstep),
            sybil: OnlineSybilRank::new(sybil),
            updates_seen: 0,
        }
    }

    /// Route one fanout update to every detector that consumes it.
    pub fn apply(&mut self, update: DetectorUpdate) {
        self.updates_seen += 1;
        match update {
            DetectorUpdate::LikeAccepted { user, page, at } => {
                self.burst.record_like(user, page, at);
                self.lockstep.record_like(user, page, at);
            }
            DetectorUpdate::AccountAdded { .. } | DetectorUpdate::FriendshipAdded { .. } => {
                // Node and edge deltas invalidate trust propagation.
                self.sybil.mark_dirty();
            }
            DetectorUpdate::PageAdded { .. }
            | DetectorUpdate::OffNetworkChanged { .. }
            | DetectorUpdate::AccountTerminated { .. }
            | DetectorUpdate::AccountReinstated { .. } => {}
        }
    }

    /// Total updates routed through [`apply`](Self::apply).
    pub fn updates_seen(&self) -> usize {
        self.updates_seen
    }

    /// The online burst detector (queries need `&mut` for lazy re-sorts).
    pub fn burst_mut(&mut self) -> &mut OnlineBurst {
        &mut self.burst
    }

    /// The online lockstep detector.
    pub fn lockstep(&self) -> &OnlineLockstep {
        &self.lockstep
    }

    /// The online SybilRank detector, read-only.
    pub fn sybilrank(&self) -> &OnlineSybilRank {
        &self.sybil
    }

    /// The online SybilRank detector (refreshes need `&mut`).
    pub fn sybilrank_mut(&mut self) -> &mut OnlineSybilRank {
        &mut self.sybil
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_graph::{PageId, UserId};
    use likelab_sim::SimTime;

    #[test]
    fn updates_route_to_the_right_detectors() {
        let mut suite = OnlineDetectors::new(
            BurstConfig {
                min_events: 1,
                ..BurstConfig::default()
            },
            LockstepConfig::default(),
            SybilRankConfig::default(),
        );
        assert!(suite.sybilrank().is_dirty(), "dirty until first refresh");
        suite.apply(DetectorUpdate::AccountAdded { user: UserId(0) });
        suite.apply(DetectorUpdate::PageAdded { page: PageId(0) });
        suite.apply(DetectorUpdate::LikeAccepted {
            user: UserId(0),
            page: PageId(0),
            at: SimTime::at_day(2),
        });
        suite.apply(DetectorUpdate::AccountTerminated { user: UserId(0) });
        assert_eq!(suite.updates_seen(), 4);
        assert_eq!(suite.burst_mut().user_verdict(UserId(0)).events, 1);
        assert_eq!(suite.lockstep().likes_seen(), 1);
    }
}
