//! Online SybilRank: delta-gated full recomputation over the live graph.
//!
//! ## Parity contract
//!
//! Power iteration has no cheap exact incremental form: one new attack edge
//! perturbs every score it can reach, and warm-starting from the previous
//! fixed point converges to *nearly* — not bitwise — the batch answer
//! (float summation order differs). Since the contract here is exact
//! equality with [`sybil_rank`], the online variant instead tracks whether
//! the graph changed since the last refresh and, when asked for scores on a
//! dirty graph, reruns the **exact batch kernel**. Graph deltas are rare
//! relative to likes (friendships arrive orders of magnitude less often
//! than likes in the study's stream), so the gate saves most refreshes
//! while keeping every answer a true batch answer.

use crate::sybilrank::{sybil_rank, SybilRankConfig, TrustScores};
use likelab_graph::{FriendGraph, UserId};
use likelab_osn::{ActorClass, OsnWorld};

/// Delta-gated online SybilRank. See the module docs for the parity
/// contract.
///
/// ```
/// use likelab_detect::online::OnlineSybilRank;
/// use likelab_detect::SybilRankConfig;
/// use likelab_graph::{FriendGraph, UserId};
///
/// let mut g = FriendGraph::with_nodes(3);
/// g.add_edge(UserId(0), UserId(1));
/// g.add_edge(UserId(1), UserId(2));
/// g.add_edge(UserId(0), UserId(2));
/// let mut online = OnlineSybilRank::new(SybilRankConfig::default());
/// let trust = online.refresh(&g, &[UserId(0)]).trust(UserId(1));
/// assert!(trust > 0.0);
/// // A clean detector serves the cached scores without recomputing.
/// assert!(!online.is_dirty());
/// ```
#[derive(Clone, Debug)]
pub struct OnlineSybilRank {
    config: SybilRankConfig,
    scores: TrustScores,
    dirty: bool,
    refreshes: usize,
}

impl OnlineSybilRank {
    /// A detector with no scores yet (dirty until the first refresh).
    pub fn new(config: SybilRankConfig) -> Self {
        OnlineSybilRank {
            config,
            scores: TrustScores::default(),
            dirty: true,
            refreshes: 0,
        }
    }

    /// The configuration refreshes run under.
    pub fn config(&self) -> &SybilRankConfig {
        &self.config
    }

    /// Note a graph delta (new node, new edge): cached scores are stale.
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// True when the cached scores no longer reflect the graph.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// How many full recomputations have run — the delta gate's savings are
    /// `events_seen - refreshes`.
    pub fn refreshes(&self) -> usize {
        self.refreshes
    }

    /// Current scores, recomputing with the exact batch kernel iff the
    /// graph changed since the last call. With a non-empty seed set the
    /// result equals [`sybil_rank`] on the same graph; an empty seed set
    /// (nothing trustworthy known yet — the batch kernel panics on it)
    /// yields all-zero scores and leaves the detector dirty so a later call
    /// with real seeds recomputes.
    pub fn refresh(&mut self, graph: &FriendGraph, seeds: &[UserId]) -> &TrustScores {
        if self.dirty {
            if seeds.is_empty() {
                self.scores = TrustScores::default();
                return &self.scores;
            }
            self.scores = sybil_rank(graph, seeds, &self.config);
            self.refreshes += 1;
            self.dirty = false;
        }
        &self.scores
    }

    /// The cached scores without any recomputation (possibly stale).
    pub fn cached(&self) -> &TrustScores {
        &self.scores
    }
}

/// Derive a trust seed set from the world's ground-truth organic accounts,
/// taking every `stride`-th one (ids ascending). This mirrors the batch
/// evaluation convention (`population.organic.iter().step_by(...)`) for
/// worlds rebuilt from an event log, where the population object is gone
/// and the class column is the surviving ground truth. A `stride` of 0 is
/// treated as 1.
pub fn organic_seeds(world: &OsnWorld, stride: usize) -> Vec<UserId> {
    (0..world.account_count() as u32)
        .map(UserId)
        .filter(|&u| world.account(u).class == ActorClass::Organic)
        .step_by(stride.max(1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_osn::{Country, Gender, PrivacySettings, Profile};
    use likelab_sim::{Rng, SimTime};

    fn ring_graph(n: u32) -> FriendGraph {
        let mut g = FriendGraph::with_nodes(n as usize);
        for i in 0..n {
            g.add_edge(UserId(i), UserId((i + 1) % n));
        }
        g
    }

    #[test]
    fn refresh_matches_batch_bitwise_and_gates_recomputation() {
        let mut g = ring_graph(40);
        let seeds = [UserId(0), UserId(7)];
        let mut online = OnlineSybilRank::new(SybilRankConfig::default());
        let batch = sybil_rank(&g, &seeds, &SybilRankConfig::default());
        {
            let scores = online.refresh(&g, &seeds);
            for u in 0..40u32 {
                assert_eq!(
                    scores.trust(UserId(u)).to_bits(),
                    batch.trust(UserId(u)).to_bits(),
                    "user {u}"
                );
            }
        }
        // Clean: repeated refreshes reuse the cache.
        online.refresh(&g, &seeds);
        online.refresh(&g, &seeds);
        assert_eq!(online.refreshes(), 1);
        // Delta: one new edge dirties, next refresh recomputes exactly.
        g.add_edge(UserId(3), UserId(20));
        online.mark_dirty();
        let batch2 = sybil_rank(&g, &seeds, &SybilRankConfig::default());
        let scores2 = online.refresh(&g, &seeds);
        assert_eq!(
            scores2.trust(UserId(20)).to_bits(),
            batch2.trust(UserId(20)).to_bits()
        );
        assert_eq!(online.refreshes(), 2);
    }

    #[test]
    fn empty_seed_set_yields_zero_scores_not_panic() {
        let g = ring_graph(5);
        let mut online = OnlineSybilRank::new(SybilRankConfig::default());
        let scores = online.refresh(&g, &[]);
        assert_eq!(scores.trust(UserId(0)), 0.0);
        // Still dirty: real seeds later must trigger a recomputation.
        assert!(online.is_dirty());
        let scores = online.refresh(&g, &[UserId(0)]);
        // Trust flowed (after 3 iterations on a 5-ring it sits on the
        // seed's odd-distance nodes) and the cache is now warm.
        assert!(scores.trust(UserId(1)) > 0.0);
        assert!(!online.is_dirty());
        assert_eq!(online.refreshes(), 1);
    }

    #[test]
    fn organic_seeds_skip_farm_accounts_and_stride() {
        let mut w = OsnWorld::new();
        let mut rng = Rng::seed_from_u64(3);
        for i in 0..20u32 {
            let class = if i % 4 == 0 {
                ActorClass::Bot(0)
            } else {
                ActorClass::Organic
            };
            w.create_account(
                Profile {
                    gender: Gender::Female,
                    age: 20 + rng.below(40) as u8,
                    country: Country::Usa,
                    home_region: 0,
                },
                class,
                PrivacySettings {
                    friend_list_public: true,
                    likes_public: true,
                    searchable: true,
                },
                SimTime::EPOCH,
            );
        }
        let all = organic_seeds(&w, 1);
        assert_eq!(all.len(), 15, "5 of 20 are bots");
        assert!(all.iter().all(|&u| u.0 % 4 != 0));
        let strided = organic_seeds(&w, 5);
        assert_eq!(strided.len(), 3);
        // Stride 0 behaves as 1 rather than panicking.
        assert_eq!(organic_seeds(&w, 0), all);
    }
}
