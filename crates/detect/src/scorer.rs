//! The combined account scorer: a hand-weighted logistic model over the
//! extracted features, with weights chosen to encode the paper's findings
//! (bursty + friend-poor + young + like-heavy ⇒ farm-like).

use crate::features::AccountFeatures;
use serde::{Deserialize, Serialize};

/// Scorer weights (a linear model passed through a sigmoid).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScorerWeights {
    /// Weight of burstiness (positive: bursty is suspicious).
    pub burstiness: f64,
    /// Weight of log10(1 + friend_count) (negative: embedded is safe).
    pub log_friends: f64,
    /// Weight of log10(1 + like_count) (positive: like-heavy is suspicious).
    pub log_likes: f64,
    /// Weight of 1/(1 + age_days/30) (positive: young is suspicious).
    pub youth: f64,
    /// Intercept.
    pub bias: f64,
}

impl Default for ScorerWeights {
    fn default() -> Self {
        ScorerWeights {
            burstiness: 3.2,
            log_friends: -1.1,
            log_likes: 1.0,
            youth: 1.6,
            bias: -2.8,
        }
    }
}

/// Score an account: 0 (clean) to 1 (farm-like).
///
/// ```
/// use likelab_detect::features::AccountFeatures;
/// use likelab_detect::scorer::{score, ScorerWeights};
///
/// let w = ScorerWeights::default();
/// let bot = AccountFeatures {
///     burstiness: 0.9,
///     friend_count: 8.0,
///     like_count: 1_400.0,
///     age_days: 20.0,
///     clustering: 0.0,
/// };
/// let organic = AccountFeatures {
///     burstiness: 0.05,
///     friend_count: 250.0,
///     like_count: 34.0,
///     age_days: 900.0,
///     clustering: 0.2,
/// };
/// assert!(score(&bot, &w) > 0.6);
/// assert!(score(&organic, &w) < 0.3);
/// ```
pub fn score(f: &AccountFeatures, w: &ScorerWeights) -> f64 {
    let z = w.burstiness * f.burstiness
        + w.log_friends * (1.0 + f.friend_count).log10()
        + w.log_likes * (1.0 + f.like_count).log10()
        + w.youth * (1.0 / (1.0 + f.age_days / 30.0))
        + w.bias;
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bot() -> AccountFeatures {
        AccountFeatures {
            burstiness: 0.9,
            friend_count: 8.0,
            like_count: 1_400.0,
            age_days: 20.0,
            clustering: 0.0,
        }
    }

    fn organic() -> AccountFeatures {
        AccountFeatures {
            burstiness: 0.05,
            friend_count: 250.0,
            like_count: 34.0,
            age_days: 900.0,
            clustering: 0.2,
        }
    }

    fn stealth() -> AccountFeatures {
        AccountFeatures {
            burstiness: 0.08,
            friend_count: 1_100.0,
            like_count: 63.0,
            age_days: 500.0,
            clustering: 0.3,
        }
    }

    #[test]
    fn scores_are_probabilities() {
        let w = ScorerWeights::default();
        for f in [bot(), organic(), stealth()] {
            let s = score(&f, &w);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn ordering_matches_the_papers_story() {
        let w = ScorerWeights::default();
        let b = score(&bot(), &w);
        let o = score(&organic(), &w);
        let s = score(&stealth(), &w);
        assert!(b > 0.6, "bots score high: {b}");
        assert!(o < 0.3, "organics score low: {o}");
        // The paper's punchline: stealth accounts are hard — they score
        // close to organic, far below bots.
        assert!(s < b / 2.0, "stealth {s} looks far cleaner than bots {b}");
        assert!((s - o).abs() < 0.25, "stealth {s} ≈ organic {o}");
    }

    #[test]
    fn burstiness_moves_the_needle() {
        let w = ScorerWeights::default();
        let mut f = organic();
        let before = score(&f, &w);
        f.burstiness = 0.95;
        let after = score(&f, &w);
        assert!(after > before + 0.2);
    }
}
