//! SybilRank-style trust propagation — the graph-based defense family the
//! paper's related work builds on (SybilGuard/SybilLimit/SybilInfer and
//! Cao et al.'s "Aiding the Detection of Fake Accounts in Large Scale
//! Social Online Services", which this follows most closely).
//!
//! Trust is seeded at a set of known-good accounts and spread by degree-
//! normalized power iteration over the friendship graph; after O(log n)
//! iterations the landing probability, normalized by degree, ranks accounts
//! by how reachable they are from the honest region. Sybil pools that wire
//! mostly to each other (both the BoostLikes blob *and* the pair/triplet
//! farms) receive little trust because few attack edges connect them to the
//! honest region.
//!
//! The interesting failure mode the paper's data implies: a stealth farm
//! that buys or builds real attack edges into the organic graph inherits
//! trust — graph defenses are only as good as the attack-edge scarcity
//! assumption. The ablation bench exercises exactly that knob.

use likelab_graph::{FriendGraph, RenumberedCsr, UserId};
use serde::{Deserialize, Serialize};

/// SybilRank parameters.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct SybilRankConfig {
    /// Power-iteration count; `None` uses ⌈log₂ n⌉ as in the paper.
    pub iterations: Option<usize>,
}

/// Degree-normalized trust scores per account (higher = more trusted).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrustScores {
    scores: Vec<f64>,
}

impl TrustScores {
    /// The trust of one account (0 for isolated/unknown nodes).
    pub fn trust(&self, u: UserId) -> f64 {
        self.scores.get(u.idx()).copied().unwrap_or(0.0)
    }

    /// All scores, indexed by user id.
    pub fn as_slice(&self) -> &[f64] {
        &self.scores
    }

    /// Accounts ranked most-suspicious first (lowest trust), restricted to
    /// nodes with at least one edge (isolated nodes carry no graph signal).
    pub fn ranked_suspicious(&self, graph: &FriendGraph) -> Vec<UserId> {
        let mut v: Vec<UserId> = graph.nodes().filter(|u| graph.degree(*u) > 0).collect();
        v.sort_by(|a, b| self.trust(*a).total_cmp(&self.trust(*b)).then(a.cmp(b)));
        v
    }
}

/// Run trust propagation from `seeds` over the friendship graph.
///
/// ```
/// use likelab_detect::sybilrank::{sybil_rank, SybilRankConfig};
/// use likelab_graph::{FriendGraph, UserId};
///
/// // A triangle seeded at one corner: trust reaches the other two.
/// let mut g = FriendGraph::with_nodes(4);
/// g.add_edge(UserId(0), UserId(1));
/// g.add_edge(UserId(1), UserId(2));
/// g.add_edge(UserId(0), UserId(2));
/// let scores = sybil_rank(&g, &[UserId(0)], &SybilRankConfig::default());
/// assert!(scores.trust(UserId(1)) > 0.0);
/// // The isolated node gets nothing — and ranks most suspicious of none,
/// // since zero-degree nodes carry no graph signal.
/// assert_eq!(scores.trust(UserId(3)), 0.0);
/// assert!(!scores.ranked_suspicious(&g).contains(&UserId(3)));
/// ```
///
/// # Panics
/// Panics when `seeds` is empty. The online wrapper
/// ([`crate::online::OnlineSybilRank`]) guards this case by returning
/// all-zero scores instead.
pub fn sybil_rank(graph: &FriendGraph, seeds: &[UserId], config: &SybilRankConfig) -> TrustScores {
    assert!(!seeds.is_empty(), "trust needs at least one seed");
    let n = graph.node_count();
    if n == 0 {
        return TrustScores::default();
    }
    let iterations = config
        .iterations
        .unwrap_or_else(|| (n as f64).log2().ceil().max(1.0) as usize);

    // Power iteration runs over a degree-ordered CSR snapshot: hubs own most
    // edge endpoints, so renumbering them to the low ids keeps the hot
    // accumulator slots cache-resident. The pull form below is bit-identical
    // to the historical push loop ("for u ascending: next[neighbor] +=
    // trust[u]/deg(u)") because:
    //
    // - each CSR row lists neighbors in ascending *old*-id order, so the
    //   additions into a node's accumulator happen in exactly the sequence
    //   the push loop produced;
    // - the push loop skipped zero-trust sources entirely; here they
    //   contribute `share == +0.0`, and `x + 0.0 == x` bitwise for the
    //   non-negative finite values trust can take;
    // - a zero-degree node kept its trust (`next[u] += t` onto 0.0), which
    //   equals the pull form's `next[v] = trust[v]` exactly.
    let csr = RenumberedCsr::degree_ordered(graph);
    let map = csr.map();

    let mut trust = vec![0.0f64; n]; // indexed by new id
    let seed_share = 1.0 / seeds.len() as f64;
    for s in seeds {
        // lint:allow(panic-reachable-from-serve): renumbering maps every old id below n
        trust[map.new_of(*s).idx()] += seed_share;
    }
    let mut share = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        for (v, s) in share.iter_mut().enumerate() {
            // lint:allow(panic-reachable-from-serve): trust, share, next all have length n
            let t = trust[v];
            let d = csr.degree(v);
            *s = if t != 0.0 && d > 0 { t / d as f64 } else { 0.0 };
        }
        for (v, out) in next.iter_mut().enumerate() {
            let row = csr.row(v);
            if row.is_empty() {
                // lint:allow(panic-reachable-from-serve): v < n from enumerate over a length-n vec
                *out = trust[v]; // isolated trust stays put
                continue;
            }
            let mut acc = 0.0f64;
            for &w in row {
                // lint:allow(panic-reachable-from-serve): CSR targets are renumbered ids below n
                acc += share[w as usize];
            }
            *out = acc;
        }
        std::mem::swap(&mut trust, &mut next);
    }
    // Degree normalization: high-degree honest hubs shouldn't dominate.
    // Permute back to old-id space in the same pass.
    let mut scores = vec![0.0f64; n];
    for (old, out) in scores.iter_mut().enumerate() {
        let new = map.new_of(UserId(old as u32)).idx();
        let d = csr.degree(new);
        // `new < n`: renumbering is a permutation of 0..n.
        *out = if d > 0 {
            trust[new] / d as f64 // lint:allow(panic-reachable-from-serve): new < n, see above
        } else {
            trust[new] // lint:allow(panic-reachable-from-serve): new < n, see above
        };
    }
    TrustScores { scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_graph::generate;
    use likelab_sim::Rng;

    /// Honest region: a connected small-world of 300; sybil region: a dense
    /// pool of 60 with `attack_edges` random links to the honest region.
    fn two_region_graph(attack_edges: usize, seed: u64) -> (FriendGraph, Vec<UserId>, Vec<UserId>) {
        let mut rng = Rng::seed_from_u64(seed);
        let honest: Vec<UserId> = (0..300).map(UserId).collect();
        let sybil: Vec<UserId> = (300..360).map(UserId).collect();
        let mut g = FriendGraph::with_nodes(360);
        generate::watts_strogatz(&mut g, &honest, 5, 0.1, &mut rng);
        generate::erdos_renyi_gnm(&mut g, &sybil, 300, &mut rng);
        for _ in 0..attack_edges {
            let h = honest[rng.index(honest.len())];
            let s = sybil[rng.index(sybil.len())];
            g.add_edge(h, s);
        }
        (g, honest, sybil)
    }

    fn mean_trust(scores: &TrustScores, users: &[UserId]) -> f64 {
        users.iter().map(|u| scores.trust(*u)).sum::<f64>() / users.len() as f64
    }

    #[test]
    fn sybil_region_gets_little_trust() {
        let (g, honest, sybil) = two_region_graph(5, 1);
        let seeds = &honest[..10];
        let scores = sybil_rank(&g, seeds, &SybilRankConfig::default());
        let h = mean_trust(&scores, &honest);
        let s = mean_trust(&scores, &sybil);
        assert!(
            h > s * 5.0,
            "honest {h:.2e} should dwarf sybil {s:.2e} with few attack edges"
        );
    }

    #[test]
    fn suspicious_ranking_front_loads_sybils() {
        let (g, honest, sybil) = two_region_graph(5, 2);
        let scores = sybil_rank(&g, &honest[..10], &SybilRankConfig::default());
        let ranked = scores.ranked_suspicious(&g);
        let bottom: Vec<UserId> = ranked.into_iter().take(60).collect();
        let sybils_in_bottom = bottom.iter().filter(|u| sybil.contains(u)).count();
        assert!(
            sybils_in_bottom >= 45,
            "{sybils_in_bottom}/60 of the least-trusted should be sybils"
        );
    }

    #[test]
    fn abundant_attack_edges_defeat_the_defense() {
        // The stealth-farm lesson: buy enough real friendships and trust
        // flows in. With 600 attack edges (~10 per sybil) the separation
        // collapses.
        let (g, honest, sybil) = two_region_graph(600, 3);
        let scores = sybil_rank(&g, &honest[..10], &SybilRankConfig::default());
        let h = mean_trust(&scores, &honest);
        let s = mean_trust(&scores, &sybil);
        assert!(
            s > h * 0.3,
            "heavily attached sybils inherit trust: sybil {s:.2e} vs honest {h:.2e}"
        );
    }

    #[test]
    fn trust_mass_is_conserved_before_normalization() {
        let (g, honest, _) = two_region_graph(5, 4);
        // Run one manual iteration-equivalent: total degree-weighted trust
        // should equal 1 after un-normalizing.
        let scores = sybil_rank(&g, &honest[..10], &SybilRankConfig::default());
        let total: f64 = g
            .nodes()
            .map(|u| scores.trust(u) * g.degree(u).max(1) as f64)
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "trust mass {total}");
    }

    #[test]
    fn isolated_seeds_hold_their_trust() {
        let g = FriendGraph::with_nodes(3);
        let scores = sybil_rank(&g, &[UserId(0)], &SybilRankConfig::default());
        assert!((scores.trust(UserId(0)) - 1.0).abs() < 1e-9);
        assert_eq!(scores.trust(UserId(1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_rejected() {
        let g = FriendGraph::with_nodes(2);
        sybil_rank(&g, &[], &SybilRankConfig::default());
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = FriendGraph::with_nodes(0);
        let scores = sybil_rank(&g, &[UserId(0)], &SybilRankConfig::default());
        assert!(scores.as_slice().is_empty());
    }
}
