//! Supervised training of the account scorer.
//!
//! The hand-set [`ScorerWeights`] encode the
//! paper's qualitative findings; a platform operator would instead *fit*
//! them on labeled takedowns. This module is that fit: logistic regression
//! by batch gradient descent over the same feature transform the scorer
//! uses, with feature standardization folded back into the returned
//! weights so the trained model is a drop-in replacement.

use crate::features::AccountFeatures;
use crate::scorer::ScorerWeights;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Full-batch iterations.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.5,
            epochs: 400,
            l2: 1e-4,
        }
    }
}

/// The scorer's feature transform, shared between inference and training.
fn transform(f: &AccountFeatures) -> [f64; 4] {
    [
        f.burstiness,
        (1.0 + f.friend_count).log10(),
        (1.0 + f.like_count).log10(),
        1.0 / (1.0 + f.age_days / 30.0),
    ]
}

/// Fit logistic-regression weights on labeled accounts.
///
/// Returns weights expressed in the raw (unstandardized) feature space, so
/// they plug straight into [`crate::scorer::score`].
///
/// # Panics
/// Panics when `samples` is empty or contains only one class.
pub fn fit(samples: &[(AccountFeatures, bool)], config: &TrainConfig) -> ScorerWeights {
    assert!(!samples.is_empty(), "no training data");
    let positives = samples.iter().filter(|(_, y)| *y).count();
    assert!(
        positives > 0 && positives < samples.len(),
        "training data must contain both classes"
    );
    let n = samples.len() as f64;
    let x: Vec<[f64; 4]> = samples.iter().map(|(f, _)| transform(f)).collect();

    // Standardize features for stable gradients.
    let mut mean = [0.0f64; 4];
    for row in &x {
        for (m, v) in mean.iter_mut().zip(row) {
            *m += v / n;
        }
    }
    let mut std = [0.0f64; 4];
    for row in &x {
        for i in 0..4 {
            std[i] += (row[i] - mean[i]).powi(2) / n;
        }
    }
    for s in &mut std {
        *s = s.sqrt().max(1e-9);
    }

    let mut w = [0.0f64; 4];
    let mut b = 0.0f64;
    // Class weighting keeps the (rare) positive class from being drowned.
    let pos_weight = (samples.len() - positives) as f64 / positives as f64;
    for _ in 0..config.epochs {
        let mut grad_w = [0.0f64; 4];
        let mut grad_b = 0.0f64;
        for (row, (_, y)) in x.iter().zip(samples) {
            let z: f64 = (0..4)
                .map(|i| w[i] * (row[i] - mean[i]) / std[i])
                .sum::<f64>()
                + b;
            let p = 1.0 / (1.0 + (-z).exp());
            let weight = if *y { pos_weight } else { 1.0 };
            let err = (p - if *y { 1.0 } else { 0.0 }) * weight;
            for i in 0..4 {
                grad_w[i] += err * (row[i] - mean[i]) / std[i];
            }
            grad_b += err;
        }
        for i in 0..4 {
            w[i] -= config.learning_rate * (grad_w[i] / n + config.l2 * w[i]);
        }
        b -= config.learning_rate * grad_b / n;
    }

    // Fold standardization back: w_raw = w / std; bias absorbs the means.
    let mut raw = [0.0f64; 4];
    let mut bias = b;
    for i in 0..4 {
        raw[i] = w[i] / std[i];
        bias -= w[i] * mean[i] / std[i];
    }
    ScorerWeights {
        burstiness: raw[0],
        log_friends: raw[1],
        log_likes: raw[2],
        youth: raw[3],
        bias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scorer::score;
    use likelab_sim::Rng;

    fn bot(rng: &mut Rng) -> AccountFeatures {
        AccountFeatures {
            burstiness: rng.f64_range(0.5, 1.0),
            friend_count: rng.f64_range(1.0, 80.0),
            like_count: rng.f64_range(800.0, 2_500.0),
            age_days: rng.f64_range(1.0, 100.0),
            clustering: 0.0,
        }
    }

    fn organic(rng: &mut Rng) -> AccountFeatures {
        AccountFeatures {
            burstiness: rng.f64_range(0.0, 0.2),
            friend_count: rng.f64_range(50.0, 600.0),
            like_count: rng.f64_range(5.0, 120.0),
            age_days: rng.f64_range(200.0, 2_000.0),
            clustering: 0.2,
        }
    }

    fn dataset(n: usize, seed: u64) -> Vec<(AccountFeatures, bool)> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut data = Vec::new();
        for i in 0..n {
            if i % 5 == 0 {
                data.push((bot(&mut rng), true));
            } else {
                data.push((organic(&mut rng), false));
            }
        }
        data
    }

    fn auc(scored: &[(f64, bool)]) -> f64 {
        let mut s: Vec<(f64, bool)> = scored.to_vec();
        s.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let pos = s.iter().filter(|(_, y)| *y).count() as f64;
        let neg = s.len() as f64 - pos;
        let (mut tp, mut fp, mut area, mut last_tpr, mut last_fpr) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for (_, y) in s {
            if y {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            let (tpr, fpr) = (tp / pos, fp / neg);
            area += (fpr - last_fpr) * (tpr + last_tpr) / 2.0;
            last_tpr = tpr;
            last_fpr = fpr;
        }
        area
    }

    #[test]
    fn training_separates_held_out_data() {
        let train = dataset(600, 1);
        let test = dataset(300, 2);
        let w = fit(&train, &TrainConfig::default());
        let scored: Vec<(f64, bool)> = test.iter().map(|(f, y)| (score(f, &w), *y)).collect();
        let trained_auc = auc(&scored);
        assert!(trained_auc > 0.95, "trained AUC {trained_auc}");
    }

    #[test]
    fn trained_weights_point_the_right_way() {
        let w = fit(&dataset(600, 3), &TrainConfig::default());
        assert!(w.burstiness > 0.0, "bursty is suspicious: {w:?}");
        assert!(w.log_friends < 0.0, "friends are protective: {w:?}");
        assert!(w.log_likes > 0.0, "like volume is suspicious: {w:?}");
        assert!(w.youth > 0.0, "youth is suspicious: {w:?}");
    }

    #[test]
    fn trained_is_at_least_as_good_as_hand_set() {
        let train = dataset(600, 4);
        let test = dataset(300, 5);
        let trained = fit(&train, &TrainConfig::default());
        let hand = ScorerWeights::default();
        let auc_of = |w: &ScorerWeights| {
            let scored: Vec<(f64, bool)> = test.iter().map(|(f, y)| (score(f, w), *y)).collect();
            auc(&scored)
        };
        assert!(
            auc_of(&trained) >= auc_of(&hand) - 0.02,
            "trained {:.3} vs hand {:.3}",
            auc_of(&trained),
            auc_of(&hand)
        );
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_training_rejected() {
        let mut rng = Rng::seed_from_u64(6);
        let data: Vec<(AccountFeatures, bool)> =
            (0..50).map(|_| (organic(&mut rng), false)).collect();
        fit(&data, &TrainConfig::default());
    }

    #[test]
    fn training_is_deterministic() {
        let data = dataset(200, 7);
        let a = fit(&data, &TrainConfig::default());
        let b = fit(&data, &TrainConfig::default());
        assert_eq!(a.burstiness, b.burstiness);
        assert_eq!(a.bias, b.bias);
    }
}
