//! Camouflage liking: the rest of a farm account's life.
//!
//! Farm accounts do not exist for one job. The paper's Figure 4(b) shows
//! bot-farm likers with 1200–1800 page likes at the median — "they are
//! probably reused for multiple jobs and also like 'normal' pages to mimic
//! real users" — while BoostLikes keeps a deliberately small count per user
//! (median 63). This module generates those histories: which pages an
//! account likes besides the honeypot, and when.

use likelab_graph::PageId;
use likelab_sim::dist::Zipf;
use likelab_sim::{Rng, SimDuration, SimTime};

/// Timestamps for `n` camouflage likes between `from` and `until`.
///
/// Bot accounts work in *job sessions*: clusters of likes inside short
/// windows (the operator runs the account through a batch of customer
/// pages). Human-mimicking accounts spread likes smoothly.
pub fn camouflage_times(
    n: usize,
    from: SimTime,
    until: SimTime,
    bursty: bool,
    rng: &mut Rng,
) -> Vec<SimTime> {
    let span = until.saturating_since(from);
    let span_secs = span.as_secs().max(1);
    let mut times = Vec::with_capacity(n);
    if bursty {
        // ~30 likes per session, each session inside a 2-hour window.
        let sessions = n.div_ceil(30).max(1);
        let mut remaining = n;
        for s in 0..sessions {
            let quota = if s == sessions - 1 {
                remaining
            } else {
                (n / sessions).min(remaining)
            };
            remaining -= quota;
            let session_start = from + SimDuration::secs(rng.below(span_secs));
            for _ in 0..quota {
                times.push(session_start + SimDuration::secs(rng.below(2 * 3_600)));
            }
        }
    } else {
        for _ in 0..n {
            times.push(from + SimDuration::secs(rng.below(span_secs)));
        }
    }
    times.sort_unstable();
    times
}

/// Pick `n` distinct camouflage pages: `job_fraction` of them from the
/// operator's customer-job catalogue, the rest from the global background
/// catalogue (Zipf-popular head first, like a real user's likes).
pub fn camouflage_pages(
    n: usize,
    job_pages: &[PageId],
    background_pages: &[PageId],
    background_zipf: &Zipf,
    job_fraction: f64,
    rng: &mut Rng,
) -> Vec<PageId> {
    let n_job = ((n as f64) * job_fraction.clamp(0.0, 1.0)).round() as usize;
    let n_job = n_job.min(job_pages.len());
    let mut out = rng.sample_without_replacement(job_pages, n_job);
    // The background share is fixed by the fraction — a saturated job
    // catalogue shortens the history rather than spilling into the global
    // head (spilling would wash out Figure 5(a)'s cross-farm contrast).
    let n_bg = (((n as f64) * (1.0 - job_fraction.clamp(0.0, 1.0))).round() as usize)
        .min(n - out.len())
        .min(background_pages.len());
    let mut seen = std::collections::HashSet::with_capacity(n_bg * 2);
    let mut attempts = 0usize;
    while seen.len() < n_bg && attempts < n_bg * 8 + 16 {
        attempts += 1;
        let p = background_pages[background_zipf.sample(rng)];
        if seen.insert(p) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::peak_window_share;

    fn rng() -> Rng {
        Rng::seed_from_u64(77)
    }

    #[test]
    fn bursty_history_is_sessionized() {
        let times = camouflage_times(900, SimTime::EPOCH, SimTime::at_day(90), true, &mut rng());
        assert_eq!(times.len(), 900);
        // The densest 2h window holds a session's worth, not a uniform sliver.
        let share = peak_window_share(&times, SimDuration::hours(2));
        let uniform_share = 2.0 / (90.0 * 24.0);
        assert!(
            share > uniform_share * 5.0,
            "bursty share {share} vs uniform {uniform_share}"
        );
    }

    #[test]
    fn smooth_history_is_spread() {
        let times = camouflage_times(900, SimTime::EPOCH, SimTime::at_day(90), false, &mut rng());
        let share = peak_window_share(&times, SimDuration::hours(2));
        assert!(share < 0.03, "smooth share {share}");
    }

    #[test]
    fn times_stay_in_range_and_sorted() {
        for bursty in [true, false] {
            let times = camouflage_times(
                200,
                SimTime::at_day(10),
                SimTime::at_day(40),
                bursty,
                &mut rng(),
            );
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
            assert!(times.iter().all(|t| *t >= SimTime::at_day(10)));
            // Bursty sessions may spill a session width past the end.
            assert!(times
                .iter()
                .all(|t| *t <= SimTime::at_day(40) + SimDuration::hours(2)));
        }
    }

    #[test]
    fn zero_likes_zero_times() {
        assert!(
            camouflage_times(0, SimTime::EPOCH, SimTime::at_day(1), true, &mut rng()).is_empty()
        );
    }

    #[test]
    fn pages_mix_job_and_background() {
        let job: Vec<PageId> = (0..100).map(PageId).collect();
        let bg: Vec<PageId> = (100..1_100).map(PageId).collect();
        let zipf = Zipf::new(bg.len(), 1.0);
        let pages = camouflage_pages(200, &job, &bg, &zipf, 0.6, &mut rng());
        let n_job = pages.iter().filter(|p| p.0 < 100).count();
        // 60% of 200 = 120 requested, capped at the 100 job pages.
        assert_eq!(n_job, 100);
        let mut d = pages.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), pages.len(), "pages are distinct");
    }

    #[test]
    fn same_operator_accounts_share_job_pages() {
        let job: Vec<PageId> = (0..300).map(PageId).collect();
        let bg: Vec<PageId> = (300..5_300).map(PageId).collect();
        let zipf = Zipf::new(bg.len(), 1.0);
        let mut r = rng();
        let a = camouflage_pages(400, &job, &bg, &zipf, 0.6, &mut r);
        let b = camouflage_pages(400, &job, &bg, &zipf, 0.6, &mut r);
        let sa: std::collections::HashSet<PageId> = a.into_iter().collect();
        let inter = b.iter().filter(|p| sa.contains(p)).count();
        // Both took ~240 of the 300 job pages: heavy overlap guaranteed.
        assert!(inter > 150, "same-operator page overlap {inter}");
    }

    #[test]
    fn zero_job_fraction_uses_background_only() {
        let job: Vec<PageId> = (0..50).map(PageId).collect();
        let bg: Vec<PageId> = (50..550).map(PageId).collect();
        let zipf = Zipf::new(bg.len(), 1.0);
        let pages = camouflage_pages(100, &job, &bg, &zipf, 0.0, &mut rng());
        assert!(pages.iter().all(|p| p.0 >= 50));
    }
}
