//! # likelab-farms — like-farm behaviour models
//!
//! Generative models of the underground services the paper bought from,
//! parameterized to reproduce their measured signatures:
//!
//! - **Delivery pacing** ([`schedule`]): bot-burst windows (SocialFormula /
//!   AuthenticLikes / MammothSocials) vs. the human-looking trickle
//!   (BoostLikes) — Figure 2(b).
//! - **Account pools** ([`pool`]): capped round-robin segments whose
//!   wraparound produces the paper's cross-campaign liker overlaps,
//!   including the AuthenticLikes ↔ MammothSocials shared-operator group.
//! - **Social structure** ([`spec::PoolTopology`]): BoostLikes' dense,
//!   well-connected sybil network vs. the compartmentalized pairs and
//!   triplets of the bot farms — Figure 3.
//! - **Camouflage** ([`camouflage`]): the thousands of other pages farm
//!   accounts like (Figure 4(b)), sessionized for bots, smooth for stealth
//!   accounts.
//! - **Dishonesty**: scam orders (BL-ALL, MS-ALL took payment and delivered
//!   nothing) and under-delivery (MS-USA delivered 317 of 1000).
//!
//! [`FarmRoster::fulfill`] executes an order against the platform and
//! returns the timed like plan for the study runner.

pub mod camouflage;
pub mod pool;
pub mod region;
pub mod roster;
pub mod schedule;
pub mod spec;

pub use pool::Segment;
pub use region::Region;
pub use roster::{Delivery, FarmOrder, FarmRoster, TimedLike};
pub use schedule::{delivery_times, peak_window_share, DeliveryStyle};
pub use spec::{FarmSpec, GeoSourcing, PoolTopology};
