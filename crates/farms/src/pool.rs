//! Account pool segments with round-robin reuse.
//!
//! A farm's inventory for one region is a *segment*: a capped roster of
//! accounts consumed sequentially, wrapping around when an order runs past
//! the end. The wraparound is what produces the paper's cross-campaign liker
//! overlaps — e.g. SocialFormula's two orders (984 + 738 likes) drawn from a
//! ~1644-account segment overlap in exactly the tail that wrapped, and
//! MammothSocials' order continued straight into the accounts
//! AuthenticLikes had used (the ALMS group).

use likelab_graph::UserId;
use serde::{Deserialize, Serialize};

/// A capped, cursor-driven account roster.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Segment {
    members: Vec<UserId>,
    capacity: usize,
    cursor: usize,
    /// Shared hub accounts (mutual-friend anchors), not used for likes.
    hubs: Vec<UserId>,
}

impl Segment {
    /// An empty segment with the given capacity.
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "segment capacity must be positive");
        Segment {
            members: Vec::new(),
            capacity,
            cursor: 0,
            hubs: Vec::new(),
        }
    }

    /// Current roster size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no account was created yet.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The capacity cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// All members created so far.
    pub fn members(&self) -> &[UserId] {
        &self.members
    }

    /// The hub accounts.
    pub fn hubs(&self) -> &[UserId] {
        &self.hubs
    }

    /// Register hub accounts (created by the roster at segment birth).
    pub fn set_hubs(&mut self, hubs: Vec<UserId>) {
        self.hubs = hubs;
    }

    /// Take `k` distinct accounts for a job, creating new ones through
    /// `create` while under capacity, and wrapping around the roster once
    /// full. Returns at most `min(k, capacity)` accounts; newly created ids
    /// are appended to `fresh`.
    pub fn take(
        &mut self,
        k: usize,
        fresh: &mut Vec<UserId>,
        mut create: impl FnMut() -> UserId,
    ) -> Vec<UserId> {
        let k = k.min(self.capacity);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            if self.cursor >= self.members.len() && self.members.len() < self.capacity {
                let id = create();
                self.members.push(id);
                fresh.push(id);
            }
            if self.cursor >= self.members.len() {
                // Full roster exhausted: wrap.
                self.cursor = 0;
            }
            out.push(self.members[self.cursor]);
            self.cursor += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(capacity: usize) -> (Segment, u32) {
        (Segment::new(capacity), 0)
    }

    fn take_n(s: &mut Segment, next: &mut u32, k: usize) -> Vec<UserId> {
        let mut fresh = Vec::new();
        s.take(k, &mut fresh, || {
            let id = UserId(*next);
            *next += 1;
            id
        })
    }

    #[test]
    fn accounts_are_created_lazily() {
        let (mut s, mut n) = seg(100);
        let a = take_n(&mut s, &mut n, 10);
        assert_eq!(a.len(), 10);
        assert_eq!(s.len(), 10, "only what was needed");
        let b = take_n(&mut s, &mut n, 5);
        assert_eq!(s.len(), 15);
        assert!(a.iter().all(|x| !b.contains(x)), "sequential, no overlap");
    }

    #[test]
    fn wraparound_reuses_the_head() {
        // The SocialFormula arithmetic: capacity 1644, orders 984 then 738.
        let (mut s, mut n) = seg(1_644);
        let first = take_n(&mut s, &mut n, 984);
        let second = take_n(&mut s, &mut n, 738);
        let overlap: Vec<&UserId> = second.iter().filter(|u| first.contains(u)).collect();
        assert_eq!(overlap.len(), 78, "984 + 738 - 1644 = 78");
        assert_eq!(s.len(), 1_644);
    }

    #[test]
    fn third_order_continues_the_cursor() {
        // The AL/MS arithmetic: capacity 1142, orders 1038 then 317.
        let (mut s, mut n) = seg(1_142);
        let al = take_n(&mut s, &mut n, 1_038);
        let ms = take_n(&mut s, &mut n, 317);
        let shared = ms.iter().filter(|u| al.contains(u)).count();
        assert_eq!(shared, 213, "1038 + 317 - 1142 = 213");
        // The fresh MS tail is 104 accounts.
        assert_eq!(ms.len() - shared, 104);
    }

    #[test]
    fn oversized_order_clips_to_capacity_distinct() {
        let (mut s, mut n) = seg(50);
        let got = take_n(&mut s, &mut n, 500);
        assert_eq!(got.len(), 50);
        let mut d = got.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 50, "an account likes a page at most once");
    }

    #[test]
    fn fresh_tracks_only_new_accounts() {
        let mut s = Segment::new(10);
        let mut next = 0u32;
        let mut fresh = Vec::new();
        s.take(10, &mut fresh, || {
            let id = UserId(next);
            next += 1;
            id
        });
        assert_eq!(fresh.len(), 10);
        let mut fresh2 = Vec::new();
        s.take(5, &mut fresh2, || unreachable!("roster is full"));
        assert!(fresh2.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Segment::new(0);
    }

    #[test]
    fn hubs_are_separate() {
        let mut s = Segment::new(5);
        s.set_hubs(vec![UserId(100), UserId(101)]);
        assert_eq!(s.hubs(), &[UserId(100), UserId(101)]);
        assert!(s.is_empty(), "hubs are not job accounts");
    }
}
