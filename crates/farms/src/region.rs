//! Order regions: what a farm customer can ask for.
//!
//! The paper's orders come in exactly two flavours — "1000 likes, worldwide"
//! and "1000 likes, USA only" — but the type is general.

use likelab_osn::Country;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The audience region of a farm order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Region {
    /// No geographic constraint.
    Worldwide,
    /// Likes from a single country.
    Country(Country),
}

impl Region {
    /// The country, when constrained.
    pub fn country(self) -> Option<Country> {
        match self {
            Region::Worldwide => None,
            Region::Country(c) => Some(c),
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Worldwide => f.write_str("Worldwide"),
            Region::Country(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_country() {
        assert_eq!(Region::Worldwide.to_string(), "Worldwide");
        assert_eq!(Region::Country(Country::Usa).to_string(), "USA");
        assert_eq!(Region::Worldwide.country(), None);
        assert_eq!(Region::Country(Country::Usa).country(), Some(Country::Usa));
    }
}
