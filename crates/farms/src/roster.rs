//! The farm roster: order fulfilment against the simulated platform.
//!
//! Owns every farm's pool segments, hub accounts, and customer-job page
//! catalogues, and turns a [`FarmOrder`] into a [`Delivery`]: the accounts
//! used, the timed honeypot likes, and the accounts' ongoing camouflage
//! activity. Account creation, social wiring, off-network padding, and
//! past-history backfill happen as side effects on the world — exactly the
//! trail a real farm leaves on a real platform.

use crate::camouflage::{camouflage_pages, camouflage_times};
use crate::pool::Segment;
use crate::region::Region;
use crate::schedule::delivery_times;
use crate::spec::{FarmSpec, PoolTopology};
use likelab_graph::{generate, PageId, UserId};
use likelab_osn::{ActorClass, OsnWorld, PageCategory, PrivacySettings};
use likelab_sim::dist::{log_normal_median, Zipf};
use likelab_sim::{Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An order placed with a farm.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FarmOrder {
    /// Index of the farm in the roster.
    pub farm: usize,
    /// The page to be liked.
    pub page: PageId,
    /// Ordered audience region.
    pub region: Region,
    /// Ordered like count, at paper scale (the roster applies the world
    /// scale internally).
    pub likes: usize,
    /// When the order was placed (delivery starts here).
    pub placed_at: SimTime,
}

/// A timed like to be executed by the study runner.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedLike {
    /// The liking account.
    pub user: UserId,
    /// The liked page.
    pub page: PageId,
    /// When.
    pub at: SimTime,
}

/// What came back from an order.
#[derive(Clone, Debug, Default)]
pub struct Delivery {
    /// True when the farm took the money and delivered nothing.
    pub scam: bool,
    /// Accounts used for the job, in delivery order.
    pub accounts: Vec<UserId>,
    /// The honeypot likes, timed.
    pub likes: Vec<TimedLike>,
    /// Camouflage likes scheduled after the order time (past-history
    /// camouflage is written into the world immediately).
    pub future_camouflage: Vec<TimedLike>,
}

/// The roster of farms and their live state.
pub struct FarmRoster {
    specs: Vec<FarmSpec>,
    scale: f64,
    segments: HashMap<(u16, Region), Segment>,
    job_pages: HashMap<u16, Vec<PageId>>,
    background_pages: Vec<PageId>,
    background_zipf: Option<Zipf>,
    camouflage_horizon: SimDuration,
    job_catalogue_size: usize,
    rng: Rng,
}

impl FarmRoster {
    /// A roster over the given farms. `background_pages` is the world's
    /// public page catalogue (camouflage targets); `scale` shrinks pool
    /// capacities and order sizes together with the study's world scale.
    pub fn new(specs: Vec<FarmSpec>, background_pages: Vec<PageId>, scale: f64, rng: Rng) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let background_zipf = if background_pages.is_empty() {
            None
        } else {
            Some(Zipf::new(background_pages.len(), 1.05))
        };
        FarmRoster {
            specs,
            scale,
            segments: HashMap::new(),
            job_pages: HashMap::new(),
            background_pages,
            background_zipf,
            camouflage_horizon: SimDuration::days(60),
            job_catalogue_size: 4_000,
            rng,
        }
    }

    /// The farm specs.
    pub fn specs(&self) -> &[FarmSpec] {
        &self.specs
    }

    /// A farm spec by roster index.
    pub fn spec(&self, idx: usize) -> &FarmSpec {
        &self.specs[idx]
    }

    /// The customer-job pages of an operator (empty until first order).
    pub fn operator_job_pages(&self, operator: u16) -> &[PageId] {
        self.job_pages
            .get(&operator)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn ensure_job_pages(&mut self, world: &mut OsnWorld, operator: u16, now: SimTime) {
        if self.job_pages.contains_key(&operator) {
            return;
        }
        // Scale the catalogue mildly: even tiny worlds keep enough job
        // pages that heavy camouflage histories don't saturate the
        // catalogue (which would shorten them) and same-operator page
        // overlap stays visible.
        let n = ((self.job_catalogue_size as f64 * self.scale.max(0.45)) as usize).max(200);
        let pages = (0..n)
            .map(|i| {
                world.create_page(
                    format!("op{operator}-customer-{i}"),
                    "",
                    None,
                    PageCategory::Background,
                    now,
                )
            })
            .collect();
        self.job_pages.insert(operator, pages);
    }

    fn create_farm_account(
        world: &mut OsnWorld,
        spec: &FarmSpec,
        region: Region,
        now: SimTime,
        rng: &mut Rng,
    ) -> UserId {
        let profile = spec.blueprint(region).sample(rng);
        let privacy = PrivacySettings {
            friend_list_public: rng.chance(spec.friend_list_public),
            likes_public: rng.chance(0.95),
            searchable: rng.chance(0.6),
        };
        let class = match spec.topology {
            PoolTopology::DenseNetwork { .. } => ActorClass::StealthSybil(spec.operator),
            PoolTopology::PairsAndTriplets { .. } => ActorClass::Bot(spec.operator),
        };
        let age = SimDuration::secs(rng.below(spec.max_account_age.as_secs().max(1)));
        let created_at = SimTime::from_secs(now.as_secs().saturating_sub(age.as_secs()));
        world.create_account(profile, class, privacy, created_at)
    }

    /// Fulfil an order against the world. See module docs for the effects.
    pub fn fulfill(&mut self, world: &mut OsnWorld, order: &FarmOrder) -> Delivery {
        let spec = self.spec(order.farm).clone();
        if spec.is_scam(order.region) {
            return Delivery {
                scam: true,
                ..Delivery::default()
            };
        }
        self.ensure_job_pages(world, spec.operator, order.placed_at);

        // --- allocate accounts from the segment (round-robin) -------------
        let key = (spec.operator, spec.segment_key(order.region));
        let capacity = ((spec.segment_capacity as f64 * self.scale).round() as usize).max(8);
        let fraction = self
            .rng
            .f64_range(spec.delivery_fraction.0, spec.delivery_fraction.1);
        let k = ((order.likes as f64 * fraction * self.scale).round() as usize).max(1);
        let segment = self
            .segments
            .entry(key)
            .or_insert_with(|| Segment::new(capacity));
        let rng = &mut self.rng;
        let mut fresh = Vec::new();
        let accounts = segment.take(k, &mut fresh, || {
            Self::create_farm_account(world, &spec, order.region, order.placed_at, rng)
        });

        // Hubs are born with the segment's first order.
        if segment.hubs().is_empty() && spec.hubs_per_segment > 0 {
            let hubs: Vec<UserId> = (0..spec.hubs_per_segment)
                .map(|_| {
                    Self::create_farm_account(world, &spec, order.region, order.placed_at, rng)
                })
                .collect();
            segment.set_hubs(hubs);
        }
        let hubs: Vec<UserId> = segment.hubs().to_vec();
        let members: Vec<UserId> = segment.members().to_vec();

        // --- wire the fresh batch into the pool topology -------------------
        match spec.topology {
            PoolTopology::DenseNetwork { within_degree } => {
                for &a in &fresh {
                    for _ in 0..within_degree {
                        if let Some(&b) = rng.choose(&members) {
                            if a != b {
                                world.add_friendship(a, b);
                            }
                        }
                    }
                }
            }
            PoolTopology::PairsAndTriplets {
                triplet_fraction,
                isolate_fraction,
            } => {
                world.generate_friendships(|g| {
                    generate::pairs_and_triplets(g, &fresh, triplet_fraction, isolate_fraction, rng)
                });
            }
        }
        for &a in &fresh {
            for &h in &hubs {
                if rng.chance(spec.hub_attach_prob) {
                    world.add_friendship(a, h);
                }
            }
            // Off-network padding up to the farm's friend-count profile.
            let total = log_normal_median(rng, spec.friend_median, spec.friend_sigma);
            let realized = world.friends().degree(a) as f64;
            world.set_off_network_friends(a, (total - realized).max(0.0).round() as u32);
        }

        // --- camouflage histories for the fresh batch ----------------------
        let mut future_camouflage = Vec::new();
        let job_pages = self.job_pages[&spec.operator].clone();
        for &a in &fresh {
            let n = log_normal_median(rng, spec.camouflage_median, spec.camouflage_sigma).round()
                as usize;
            let n = n.min(6_000);
            let pages = match &self.background_zipf {
                Some(zipf) => camouflage_pages(
                    n,
                    &job_pages,
                    &self.background_pages,
                    zipf,
                    spec.job_page_fraction,
                    rng,
                ),
                None => rng.sample_without_replacement(&job_pages, n),
            };
            let created = world.account(a).created_at;
            let until = order.placed_at + self.camouflage_horizon;
            let times = camouflage_times(pages.len(), created, until, spec.bursty_camouflage, rng);
            for (page, at) in pages.into_iter().zip(times) {
                if at <= order.placed_at {
                    world.record_like(a, page, at);
                } else {
                    future_camouflage.push(TimedLike { user: a, page, at });
                }
            }
        }

        // --- the honeypot likes themselves ---------------------------------
        let times = delivery_times(spec.style, accounts.len(), order.placed_at, rng);
        let likes = accounts
            .iter()
            .zip(&times)
            .map(|(u, t)| TimedLike {
                user: *u,
                page: order.page,
                at: *t,
            })
            .collect();
        future_camouflage.sort_by_key(|l| (l.at, l.user));
        Delivery {
            scam: false,
            accounts,
            likes,
            future_camouflage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_osn::Country;

    fn setup(scale: f64) -> (OsnWorld, FarmRoster, PageId) {
        let mut world = OsnWorld::new();
        let background: Vec<PageId> = (0..3_000)
            .map(|i| {
                world.create_page(
                    format!("bg{i}"),
                    "",
                    None,
                    PageCategory::Background,
                    SimTime::EPOCH,
                )
            })
            .collect();
        let page = world.create_page(
            "Virtual Electricity",
            "This is not a real page, so please do not like it.",
            None,
            PageCategory::Honeypot,
            SimTime::EPOCH,
        );
        let roster = FarmRoster::new(
            vec![
                FarmSpec::boostlikes(),
                FarmSpec::socialformula(),
                FarmSpec::authenticlikes(),
                FarmSpec::mammothsocials(),
            ],
            background,
            scale,
            Rng::seed_from_u64(404),
        );
        (world, roster, page)
    }

    fn order(farm: usize, page: PageId, region: Region) -> FarmOrder {
        FarmOrder {
            farm,
            page,
            region,
            likes: 1_000,
            placed_at: SimTime::at_day(100),
        }
    }

    const BL: usize = 0;
    const SF: usize = 1;
    const AL: usize = 2;
    const MS: usize = 3;

    #[test]
    fn scam_orders_deliver_nothing() {
        let (mut world, mut roster, page) = setup(0.2);
        let d = roster.fulfill(&mut world, &order(BL, page, Region::Worldwide));
        assert!(d.scam);
        assert!(d.likes.is_empty());
        let d = roster.fulfill(&mut world, &order(MS, page, Region::Worldwide));
        assert!(d.scam);
    }

    #[test]
    fn delivery_counts_track_fraction_and_scale() {
        let (mut world, mut roster, page) = setup(0.2);
        let d = roster.fulfill(&mut world, &order(SF, page, Region::Worldwide));
        // SF delivers 72–100% of 1000, scaled by 0.2 → 144..=200.
        assert!(
            (140..=205).contains(&d.likes.len()),
            "SF delivered {}",
            d.likes.len()
        );
        let d = roster.fulfill(&mut world, &order(MS, page, Region::Country(Country::Usa)));
        // MS under-delivers: 30–34% → 60..=70.
        assert!(
            (55..=75).contains(&d.likes.len()),
            "MS delivered {}",
            d.likes.len()
        );
    }

    #[test]
    fn socialformula_ships_turkey_regardless() {
        let (mut world, mut roster, page) = setup(0.2);
        let d = roster.fulfill(&mut world, &order(SF, page, Region::Country(Country::Usa)));
        let turkish = d
            .accounts
            .iter()
            .filter(|u| world.account(**u).profile.country == Country::Turkey)
            .count();
        assert!(
            turkish as f64 / d.accounts.len() as f64 > 0.85,
            "{turkish}/{} Turkish",
            d.accounts.len()
        );
    }

    #[test]
    fn compliant_farm_ships_the_ordered_country() {
        let (mut world, mut roster, page) = setup(0.2);
        let d = roster.fulfill(&mut world, &order(AL, page, Region::Country(Country::Usa)));
        assert!(d
            .accounts
            .iter()
            .all(|u| world.account(*u).profile.country == Country::Usa));
    }

    #[test]
    fn same_farm_campaigns_overlap_via_wraparound() {
        let (mut world, mut roster, page) = setup(1.0);
        let page2 = world.create_page("h2", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        let d1 = roster.fulfill(&mut world, &order(SF, page, Region::Worldwide));
        let d2 = roster.fulfill(&mut world, &order(SF, page2, Region::Country(Country::Usa)));
        let s1: std::collections::HashSet<UserId> = d1.accounts.iter().copied().collect();
        let overlap = d2.accounts.iter().filter(|u| s1.contains(u)).count();
        let expected = (d1.accounts.len() + d2.accounts.len()).saturating_sub(1_644);
        assert_eq!(overlap, expected, "wraparound overlap");
        assert!(overlap > 0, "the paper saw SF reuse across campaigns");
    }

    #[test]
    fn al_and_ms_share_accounts() {
        let (mut world, mut roster, page) = setup(1.0);
        let page2 = world.create_page("h2", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        let al = roster.fulfill(&mut world, &order(AL, page, Region::Country(Country::Usa)));
        let ms = roster.fulfill(&mut world, &order(MS, page2, Region::Country(Country::Usa)));
        let s: std::collections::HashSet<UserId> = al.accounts.iter().copied().collect();
        let alms = ms.accounts.iter().filter(|u| s.contains(u)).count();
        assert!(
            alms > ms.accounts.len() / 3,
            "ALMS overlap {alms} of {}",
            ms.accounts.len()
        );
        // The fresh MS tail carries MS demographics (low friend counts).
        let fresh: Vec<UserId> = ms
            .accounts
            .iter()
            .copied()
            .filter(|u| !s.contains(u))
            .collect();
        assert!(!fresh.is_empty());
    }

    #[test]
    fn stealth_accounts_look_social_bots_do_not() {
        let (mut world, mut roster, page) = setup(0.3);
        let bl = roster.fulfill(&mut world, &order(BL, page, Region::Country(Country::Usa)));
        let sf = roster.fulfill(&mut world, &order(SF, page, Region::Worldwide));
        let mean_friends = |accounts: &[UserId]| {
            accounts
                .iter()
                .map(|u| world.total_friend_count(*u) as f64)
                .sum::<f64>()
                / accounts.len() as f64
        };
        let bl_friends = mean_friends(&bl.accounts);
        let sf_friends = mean_friends(&sf.accounts);
        assert!(
            bl_friends > sf_friends * 3.0,
            "BL {bl_friends} vs SF {sf_friends}"
        );
        // And the reverse for camouflage like counts.
        let mean_likes = |accounts: &[UserId]| {
            accounts
                .iter()
                .map(|u| world.likes().user_like_count(*u) as f64)
                .sum::<f64>()
                / accounts.len() as f64
        };
        let bl_likes = mean_likes(&bl.accounts);
        let sf_likes = mean_likes(&sf.accounts);
        assert!(bl_likes * 4.0 < sf_likes, "BL {bl_likes} vs SF {sf_likes}");
    }

    #[test]
    fn burst_vs_trickle_delivery_shapes() {
        use crate::schedule::peak_window_share;
        let (mut world, mut roster, page) = setup(0.5);
        let al = roster.fulfill(&mut world, &order(AL, page, Region::Country(Country::Usa)));
        let bl = roster.fulfill(&mut world, &order(BL, page, Region::Country(Country::Usa)));
        let al_times: Vec<SimTime> = al.likes.iter().map(|l| l.at).collect();
        let bl_times: Vec<SimTime> = bl.likes.iter().map(|l| l.at).collect();
        let al_share = peak_window_share(&al_times, SimDuration::hours(4));
        let bl_share = peak_window_share(&bl_times, SimDuration::hours(4));
        assert!(al_share > 0.4, "AL burst share {al_share}");
        assert!(bl_share < 0.1, "BL trickle share {bl_share}");
    }

    #[test]
    fn camouflage_splits_past_and_future() {
        let (mut world, mut roster, page) = setup(0.2);
        let before = world.likes().len();
        let d = roster.fulfill(&mut world, &order(SF, page, Region::Worldwide));
        let backfilled = world.likes().len() - before;
        assert!(backfilled > 0, "past camouflage written immediately");
        assert!(!d.future_camouflage.is_empty(), "ongoing jobs scheduled");
        assert!(d
            .future_camouflage
            .iter()
            .all(|l| l.at > SimTime::at_day(100)));
        assert!(d.future_camouflage.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn pool_topologies_differ() {
        use likelab_graph::components::ComponentCensus;
        let (mut world, mut roster, page) = setup(0.5);
        let bl = roster.fulfill(&mut world, &order(BL, page, Region::Country(Country::Usa)));
        let sf = roster.fulfill(&mut world, &order(SF, page, Region::Worldwide));
        let bl_census = ComponentCensus::compute(world.friends(), &bl.accounts);
        let sf_census = ComponentCensus::compute(world.friends(), &sf.accounts);
        assert!(
            bl_census.giant_fraction() > 0.5,
            "BL forms a blob: {bl_census:?}"
        );
        assert!(
            sf_census.giant_fraction() < 0.3,
            "SF stays fragmented: {sf_census:?}"
        );
        assert!(sf_census.pairs + sf_census.triplets > 5, "{sf_census:?}");
    }

    #[test]
    fn honeypot_likes_target_the_ordered_page() {
        let (mut world, mut roster, page) = setup(0.2);
        let d = roster.fulfill(&mut world, &order(AL, page, Region::Country(Country::Usa)));
        assert!(d.likes.iter().all(|l| l.page == page));
        assert_eq!(d.likes.len(), d.accounts.len());
    }
}
