//! Delivery schedules: *when* the ordered likes land.
//!
//! The paper's Figure 2(b) shows the two signatures this module generates:
//!
//! - **Burst** — SocialFormula, AuthenticLikes, MammothSocials: "likes were
//!   garnered within a short period of time of two hours"; AuthenticLikes
//!   delivered 700+ likes within the first 4 hours of day 2 and then went
//!   silent.
//! - **Trickle** — BoostLikes: "the number of likes steadily increases
//!   during the observation period and no abrupt changes are observed",
//!   visually indistinguishable from a legitimate ad campaign.

use likelab_sim::{Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How a farm paces an order.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DeliveryStyle {
    /// Automated burst delivery: `bursts` windows of `window` length spread
    /// over `days`, first burst after `start_delay`.
    Burst {
        /// Days the delivery spans.
        days: u64,
        /// Number of burst windows.
        bursts: usize,
        /// Width of each burst window.
        window: SimDuration,
        /// Delay before the first burst.
        start_delay: SimDuration,
    },
    /// Human-paced trickle over `days`, near-linear.
    Trickle {
        /// Days the delivery spans.
        days: u64,
    },
}

/// Generate the like timestamps for `k` likes starting at `start`.
/// Returned times are sorted.
pub fn delivery_times(
    style: DeliveryStyle,
    k: usize,
    start: SimTime,
    rng: &mut Rng,
) -> Vec<SimTime> {
    let mut times = Vec::with_capacity(k);
    match style {
        DeliveryStyle::Burst {
            days,
            bursts,
            window,
            start_delay,
        } => {
            let bursts = bursts.max(1);
            let span = SimDuration::days(days.max(1)).saturating_sub(start_delay);
            // Burst window start offsets, spread over the span with jitter.
            let mut starts: Vec<SimTime> = (0..bursts)
                .map(|i| {
                    let stride = span / bursts as u64;
                    let jitter = SimDuration::secs(rng.below((stride.as_secs() / 2).max(1)));
                    start + start_delay + stride * i as u64 + jitter
                })
                .collect();
            starts.sort_unstable();
            // Split k across bursts, front-loaded (the first burst carries
            // most of the job, as observed for AuthenticLikes).
            let mut weights: Vec<f64> = (0..bursts)
                .map(|i| 1.0 / (i as f64 + 1.0) * rng.f64_range(0.7, 1.3))
                .collect();
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            let mut assigned = 0usize;
            for (i, w) in weights.iter().enumerate() {
                let n = if i == bursts - 1 {
                    k - assigned
                } else {
                    ((k as f64) * w).round() as usize
                };
                let n = n.min(k - assigned);
                assigned += n;
                for _ in 0..n {
                    times.push(starts[i] + SimDuration::secs(rng.below(window.as_secs().max(1))));
                }
            }
        }
        DeliveryStyle::Trickle { days } => {
            let days = days.max(1);
            // Even daily quota with mild noise; uniform within each day.
            let per_day = k as f64 / days as f64;
            let mut remaining = k;
            for d in 0..days {
                let quota = if d == days - 1 {
                    remaining
                } else {
                    let noisy = per_day * rng.f64_range(0.8, 1.2);
                    (noisy.round() as usize).min(remaining)
                };
                remaining -= quota;
                for _ in 0..quota {
                    times.push(start + SimDuration::days(d) + SimDuration::secs(rng.below(86_400)));
                }
            }
        }
    }
    times.sort_unstable();
    times
}

/// Fraction of timestamps that fall inside the densest `window`-wide
/// stretch — the burstiness statistic used across analyses and tests.
pub fn peak_window_share(times: &[SimTime], window: SimDuration) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    let mut sorted = times.to_vec();
    sorted.sort_unstable();
    let mut best = 1usize;
    let mut lo = 0usize;
    for hi in 0..sorted.len() {
        while sorted[hi].since(sorted[lo]) > window {
            lo += 1;
        }
        best = best.max(hi - lo + 1);
    }
    best as f64 / sorted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(0xFA12)
    }

    fn burst_style() -> DeliveryStyle {
        DeliveryStyle::Burst {
            days: 3,
            bursts: 3,
            window: SimDuration::hours(2),
            start_delay: SimDuration::hours(12),
        }
    }

    #[test]
    fn burst_times_are_concentrated() {
        let times = delivery_times(burst_style(), 1_000, SimTime::EPOCH, &mut rng());
        assert_eq!(times.len(), 1_000);
        let share = peak_window_share(&times, SimDuration::hours(2));
        assert!(share > 0.35, "densest 2h window holds {share} of likes");
        // Everything within the order's span.
        assert!(times
            .iter()
            .all(|t| t.since(SimTime::EPOCH) <= SimDuration::days(4)));
    }

    #[test]
    fn burst_respects_start_delay() {
        let times = delivery_times(burst_style(), 100, SimTime::at_day(10), &mut rng());
        assert!(times
            .iter()
            .all(|t| t.since(SimTime::at_day(10)) >= SimDuration::hours(12)));
    }

    #[test]
    fn trickle_is_spread_and_smooth() {
        let style = DeliveryStyle::Trickle { days: 15 };
        let times = delivery_times(style, 621, SimTime::EPOCH, &mut rng());
        assert_eq!(times.len(), 621);
        let share = peak_window_share(&times, SimDuration::hours(2));
        assert!(share < 0.05, "trickle peak share {share} should be tiny");
        // Likes on every one of the 15 days.
        let mut days_seen = std::collections::HashSet::new();
        for t in &times {
            days_seen.insert(t.day());
        }
        assert!(days_seen.len() >= 14, "active days {}", days_seen.len());
    }

    #[test]
    fn counts_are_exact() {
        for k in [0, 1, 7, 500] {
            assert_eq!(
                delivery_times(burst_style(), k, SimTime::EPOCH, &mut rng()).len(),
                k
            );
            assert_eq!(
                delivery_times(
                    DeliveryStyle::Trickle { days: 5 },
                    k,
                    SimTime::EPOCH,
                    &mut rng()
                )
                .len(),
                k
            );
        }
    }

    #[test]
    fn times_are_sorted() {
        for style in [burst_style(), DeliveryStyle::Trickle { days: 10 }] {
            let times = delivery_times(style, 300, SimTime::EPOCH, &mut rng());
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn single_burst_everything_inside_window() {
        let style = DeliveryStyle::Burst {
            days: 1,
            bursts: 1,
            window: SimDuration::hours(4),
            start_delay: SimDuration::ZERO,
        };
        let times = delivery_times(style, 700, SimTime::EPOCH, &mut rng());
        let share = peak_window_share(&times, SimDuration::hours(4));
        assert!(
            (share - 1.0).abs() < 1e-12,
            "one burst = all inside: {share}"
        );
    }

    #[test]
    fn peak_share_edge_cases() {
        assert_eq!(peak_window_share(&[], SimDuration::HOUR), 0.0);
        assert_eq!(peak_window_share(&[SimTime::EPOCH], SimDuration::HOUR), 1.0);
    }
}
