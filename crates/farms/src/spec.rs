//! Farm behaviour specifications.
//!
//! A [`FarmSpec`] captures everything that distinguishes one like farm from
//! another: how it paces deliveries, where its accounts claim to live,
//! what they look like demographically, how their social structure is wired,
//! how many pages they like as camouflage, and how honest the service is
//! about actually delivering. The four constructors encode the paper's four
//! farms, calibrated against Tables 1–3.

use crate::region::Region;
use crate::schedule::DeliveryStyle;
use likelab_osn::demographics::{Blueprint, GLOBAL_AGE_DIST};
use likelab_osn::Country;
use likelab_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Where a farm's accounts are (claimed to be) located.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GeoSourcing {
    /// Accounts match the ordered region (worldwide orders get a mix).
    FollowOrder {
        /// Country mix used for worldwide orders.
        worldwide_mix: Vec<(Country, f64)>,
    },
    /// The farm ships the same accounts regardless of the order — the
    /// SocialFormula signature ("most likers ... were based in Turkey,
    /// regardless of whether we requested a US-only campaign").
    Fixed {
        /// The fixed country mix.
        mix: Vec<(Country, f64)>,
    },
}

/// In-world social wiring of a farm's account pool.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PoolTopology {
    /// Dense, well-connected sybil network (BoostLikes): each new account
    /// wires `within_degree` edges to existing pool members.
    DenseNetwork {
        /// Mean in-pool edges per account.
        within_degree: usize,
    },
    /// Compartmentalized pairs and triplets (SocialFormula et al.):
    /// "mitigating the risk that identification of a user as fake would
    /// consequently bring down the whole connected network".
    PairsAndTriplets {
        /// Fraction of groups that are triplets rather than pairs.
        triplet_fraction: f64,
        /// Fraction of accounts left with no in-pool edge at all.
        isolate_fraction: f64,
    },
}

/// A complete farm behaviour profile.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FarmSpec {
    /// Service name (as marketed).
    pub name: String,
    /// Operator tag. Farms sharing a tag share account pools — the paper's
    /// evidence says AuthenticLikes and MammothSocials are one operator.
    pub operator: u16,
    /// Delivery pacing.
    pub style: DeliveryStyle,
    /// Account geography.
    pub geo: GeoSourcing,
    /// Fraction of created profiles that are female.
    pub female_fraction: f64,
    /// Age-bracket weights of created profiles.
    pub age_weights: [f64; 6],
    /// Median *total* friend count of accounts (Table 3 column 4/5).
    pub friend_median: f64,
    /// Log-space spread of friend counts.
    pub friend_sigma: f64,
    /// In-world pool wiring.
    pub topology: PoolTopology,
    /// Number of shared "mutual friend" hub accounts per pool segment.
    pub hubs_per_segment: usize,
    /// Probability an account befriends any given hub (drives the 2-hop
    /// relation counts of Table 3).
    pub hub_attach_prob: f64,
    /// Probability an account's friend list is public (Table 3 column 3).
    pub friend_list_public: f64,
    /// Median camouflage like count per account (Figure 4(b) medians:
    /// 1200–1800 for bot farms, 63 for BoostLikes).
    pub camouflage_median: f64,
    /// Log-space spread of camouflage like counts.
    pub camouflage_sigma: f64,
    /// Fraction of camouflage likes that go to the operator's customer-job
    /// pages rather than the global background catalogue.
    pub job_page_fraction: f64,
    /// Whether camouflage liking happens in bot-like bursts (job sessions)
    /// or is smoothly spread like a human's.
    pub bursty_camouflage: bool,
    /// Maximum account age at creation time (bot accounts are fresh and
    /// disposable; stealth accounts are long-lived).
    pub max_account_age: SimDuration,
    /// Accounts per pool segment (the round-robin reuse horizon that
    /// produces the paper's cross-campaign liker overlaps).
    pub segment_capacity: usize,
    /// Range of the delivered fraction of an order (farms under- and
    /// over-deliver; MammothSocials delivered 317 of 1000).
    pub delivery_fraction: (f64, f64),
    /// Regions this farm takes money for but never delivers (BL-ALL and
    /// MS-ALL in the paper: "we were charged in advance" and got nothing).
    pub scam_regions: Vec<Region>,
}

impl FarmSpec {
    /// The demographic blueprint for accounts sourced for `region`.
    pub fn blueprint(&self, region: Region) -> Blueprint {
        let country_weights = match &self.geo {
            GeoSourcing::Fixed { mix } => mix.clone(),
            GeoSourcing::FollowOrder { worldwide_mix } => match region {
                Region::Country(c) => vec![(c, 1.0)],
                Region::Worldwide => worldwide_mix.clone(),
            },
        };
        Blueprint {
            female_fraction: self.female_fraction,
            age_weights: self.age_weights,
            country_weights,
        }
    }

    /// Which pool segment an order draws from: compliant farms segment by
    /// ordered region; fixed-geo farms have a single home segment.
    pub fn segment_key(&self, region: Region) -> Region {
        match &self.geo {
            GeoSourcing::Fixed { .. } => Region::Worldwide,
            GeoSourcing::FollowOrder { .. } => region,
        }
    }

    /// True when the farm takes the money for `region` and delivers nothing.
    pub fn is_scam(&self, region: Region) -> bool {
        self.scam_regions.contains(&region)
    }

    /// BoostLikes: the stealth farm. Most expensive, slowest, and hardest to
    /// tell from a legitimate campaign — dense long-lived sybil network,
    /// high friend counts (1171 ± 1096, median 850), few likes per account
    /// (median 63), trickle delivery over 15 days. Worldwide orders are
    /// taken but never delivered.
    pub fn boostlikes() -> FarmSpec {
        FarmSpec {
            name: "BoostLikes.com".into(),
            operator: 1,
            style: DeliveryStyle::Trickle { days: 15 },
            geo: GeoSourcing::FollowOrder {
                worldwide_mix: vec![
                    (Country::Usa, 0.5),
                    (Country::Uk, 0.2),
                    (Country::Brazil, 0.15),
                    (Country::Indonesia, 0.15),
                ],
            },
            // BL-USA: 53/47 F/M; ages 34.2/54.5/8.8/1.5/0.7/0.5.
            female_fraction: 0.53,
            age_weights: [0.342, 0.545, 0.088, 0.015, 0.007, 0.005],
            friend_median: 850.0,
            friend_sigma: 0.85,
            topology: PoolTopology::DenseNetwork { within_degree: 2 },
            hubs_per_segment: 20,
            hub_attach_prob: 0.15,
            friend_list_public: 0.259,
            camouflage_median: 63.0,
            camouflage_sigma: 0.9,
            job_page_fraction: 0.7,
            bursty_camouflage: false,
            max_account_age: SimDuration::days(3 * 365),
            segment_capacity: 3_000,
            delivery_fraction: (0.58, 0.66),
            scam_regions: vec![Region::Worldwide],
        }
    }

    /// SocialFormula: the cheapest farm. Turkish accounts shipped regardless
    /// of targeting, near-global demographics (KL ≈ 0.04), pair/triplet
    /// structure, burst delivery inside 3 days.
    pub fn socialformula() -> FarmSpec {
        FarmSpec {
            name: "SocialFormula.com".into(),
            operator: 2,
            style: DeliveryStyle::Burst {
                days: 3,
                bursts: 3,
                window: SimDuration::hours(2),
                start_delay: SimDuration::hours(10),
            },
            geo: GeoSourcing::Fixed {
                mix: vec![(Country::Turkey, 0.94), (Country::Usa, 0.06)],
            },
            // SF: 37/63 F/M; ages near the global platform distribution.
            female_fraction: 0.37,
            age_weights: GLOBAL_AGE_DIST,
            friend_median: 155.0,
            friend_sigma: 0.8,
            topology: PoolTopology::PairsAndTriplets {
                triplet_fraction: 0.25,
                isolate_fraction: 0.93,
            },
            hubs_per_segment: 20,
            hub_attach_prob: 0.012,
            friend_list_public: 0.58,
            camouflage_median: 1_400.0,
            camouflage_sigma: 0.55,
            job_page_fraction: 0.96,
            bursty_camouflage: true,
            max_account_age: SimDuration::days(120),
            segment_capacity: 1_644,
            delivery_fraction: (0.72, 1.0),
            scam_regions: vec![],
        }
    }

    /// AuthenticLikes: bot farm, giant single-day bursts (700+ likes inside
    /// 4 hours on day 2), USA-heavy demographics, fresh disposable accounts
    /// (36 of its USA likers terminated within a month).
    pub fn authenticlikes() -> FarmSpec {
        FarmSpec {
            name: "AuthenticLikes.com".into(),
            operator: 3,
            style: DeliveryStyle::Burst {
                days: 4,
                bursts: 2,
                window: SimDuration::hours(4),
                start_delay: SimDuration::days(1),
            },
            geo: GeoSourcing::FollowOrder {
                worldwide_mix: vec![
                    (Country::Usa, 0.35),
                    (Country::Philippines, 0.25),
                    (Country::Indonesia, 0.2),
                    (Country::India, 0.2),
                ],
            },
            // AL-USA: 31/68 F/M; ages 7.2/41/35/10/3.5/2.8.
            female_fraction: 0.31,
            age_weights: [0.072, 0.41, 0.35, 0.10, 0.035, 0.028],
            friend_median: 343.0,
            friend_sigma: 1.0,
            topology: PoolTopology::PairsAndTriplets {
                triplet_fraction: 0.2,
                isolate_fraction: 0.95,
            },
            hubs_per_segment: 20,
            hub_attach_prob: 0.016,
            friend_list_public: 0.426,
            camouflage_median: 1_600.0,
            camouflage_sigma: 0.5,
            job_page_fraction: 0.96,
            bursty_camouflage: true,
            max_account_age: SimDuration::days(90),
            segment_capacity: 1_142,
            // AL-USA delivered 1038 of 1000 ordered — the farm runs its
            // whole segment through each job. Keeping the fraction near 1
            // is what guarantees the wraparound overlap with MammothSocials
            // (the ALMS group) at any world scale.
            delivery_fraction: (0.93, 1.06),
            scam_regions: vec![],
        }
    }

    /// MammothSocials: same operator as AuthenticLikes (tag 3 — shared
    /// account pool, which is how 213 likers ended up liking both farms'
    /// pages). Under-delivers heavily (317 of 1000); worldwide orders are
    /// pure scam.
    pub fn mammothsocials() -> FarmSpec {
        FarmSpec {
            name: "MammothSocials.com".into(),
            operator: 3,
            style: DeliveryStyle::Burst {
                days: 6,
                bursts: 3,
                window: SimDuration::hours(2),
                start_delay: SimDuration::days(1),
            },
            geo: GeoSourcing::FollowOrder {
                worldwide_mix: vec![
                    (Country::Usa, 0.3),
                    (Country::Philippines, 0.3),
                    (Country::Indonesia, 0.4),
                ],
            },
            // MS-USA: 26/74 F/M; ages 8.6/46.9/34.5/6.4/1.9/1.4.
            female_fraction: 0.26,
            age_weights: [0.086, 0.469, 0.345, 0.064, 0.019, 0.014],
            friend_median: 68.0,
            friend_sigma: 1.1,
            topology: PoolTopology::PairsAndTriplets {
                triplet_fraction: 0.15,
                isolate_fraction: 0.92,
            },
            hubs_per_segment: 12,
            hub_attach_prob: 0.01,
            friend_list_public: 0.512,
            camouflage_median: 1_200.0,
            camouflage_sigma: 0.6,
            job_page_fraction: 0.96,
            bursty_camouflage: true,
            max_account_age: SimDuration::days(90),
            segment_capacity: 1_142,
            delivery_fraction: (0.3, 0.34),
            scam_regions: vec![Region::Worldwide],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_farms_have_distinct_names_and_styles() {
        let farms = [
            FarmSpec::boostlikes(),
            FarmSpec::socialformula(),
            FarmSpec::authenticlikes(),
            FarmSpec::mammothsocials(),
        ];
        let mut names: Vec<&str> = farms.iter().map(|f| f.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
        assert!(matches!(farms[0].style, DeliveryStyle::Trickle { .. }));
        for f in &farms[1..] {
            assert!(matches!(f.style, DeliveryStyle::Burst { .. }));
        }
    }

    #[test]
    fn al_and_ms_share_an_operator() {
        assert_eq!(
            FarmSpec::authenticlikes().operator,
            FarmSpec::mammothsocials().operator
        );
        assert_ne!(
            FarmSpec::boostlikes().operator,
            FarmSpec::socialformula().operator
        );
    }

    #[test]
    fn socialformula_ignores_requested_region() {
        let sf = FarmSpec::socialformula();
        let bp = sf.blueprint(Region::Country(Country::Usa));
        let turkey_weight: f64 = bp
            .country_weights
            .iter()
            .filter(|(c, _)| *c == Country::Turkey)
            .map(|(_, w)| *w)
            .sum();
        assert!(turkey_weight > 0.9, "SF ships Turkey regardless");
        // And both orders land in the same segment.
        assert_eq!(
            sf.segment_key(Region::Country(Country::Usa)),
            sf.segment_key(Region::Worldwide)
        );
    }

    #[test]
    fn compliant_farm_segments_by_region() {
        let al = FarmSpec::authenticlikes();
        assert_ne!(
            al.segment_key(Region::Country(Country::Usa)),
            al.segment_key(Region::Worldwide)
        );
        let bp = al.blueprint(Region::Country(Country::Usa));
        assert_eq!(bp.country_weights, vec![(Country::Usa, 1.0)]);
    }

    #[test]
    fn scam_regions_match_the_paper() {
        assert!(FarmSpec::boostlikes().is_scam(Region::Worldwide));
        assert!(!FarmSpec::boostlikes().is_scam(Region::Country(Country::Usa)));
        assert!(FarmSpec::mammothsocials().is_scam(Region::Worldwide));
        assert!(!FarmSpec::socialformula().is_scam(Region::Worldwide));
        assert!(!FarmSpec::authenticlikes().is_scam(Region::Worldwide));
    }

    #[test]
    fn stealth_vs_bot_contrast_is_encoded() {
        let bl = FarmSpec::boostlikes();
        let sf = FarmSpec::socialformula();
        assert!(bl.friend_median > sf.friend_median * 4.0);
        assert!(bl.camouflage_median * 10.0 < sf.camouflage_median);
        assert!(!bl.bursty_camouflage && sf.bursty_camouflage);
        assert!(bl.max_account_age > sf.max_account_age * 5);
        assert!(matches!(bl.topology, PoolTopology::DenseNetwork { .. }));
        assert!(matches!(sf.topology, PoolTopology::PairsAndTriplets { .. }));
    }
}
