//! Property-based tests of the farm machinery's invariants.

use likelab_farms::{delivery_times, peak_window_share, DeliveryStyle, Segment};
use likelab_graph::UserId;
use likelab_sim::{Rng, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Delivery schedules produce exactly the requested number of likes,
    /// sorted, never before the order time, and bounded by the advertised
    /// span (bursts may spill one window width).
    #[test]
    fn delivery_times_are_sound(
        seed in any::<u64>(),
        k in 0usize..400,
        days in 1u64..20,
        bursts in 1usize..6,
        trickle in any::<bool>(),
    ) {
        let style = if trickle {
            DeliveryStyle::Trickle { days }
        } else {
            DeliveryStyle::Burst {
                days,
                bursts,
                window: SimDuration::hours(2),
                start_delay: SimDuration::hours(6),
            }
        };
        let start = SimTime::at_day(100);
        let mut rng = Rng::seed_from_u64(seed);
        let times = delivery_times(style, k, start, &mut rng);
        prop_assert_eq!(times.len(), k);
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "sorted");
        prop_assert!(times.iter().all(|t| *t >= start), "never before order");
        let bound = start + SimDuration::days(days) + SimDuration::hours(3);
        prop_assert!(times.iter().all(|t| *t <= bound), "inside the span");
    }

    /// The burstiness statistic is a fraction and maximal for one-window
    /// deliveries.
    #[test]
    fn peak_share_is_a_fraction(seed in any::<u64>(), k in 1usize..200) {
        let mut rng = Rng::seed_from_u64(seed);
        let times = delivery_times(
            DeliveryStyle::Trickle { days: 15 },
            k,
            SimTime::EPOCH,
            &mut rng,
        );
        let share = peak_window_share(&times, SimDuration::hours(2));
        prop_assert!(share > 0.0 && share <= 1.0);
        let one_burst = delivery_times(
            DeliveryStyle::Burst {
                days: 1,
                bursts: 1,
                window: SimDuration::hours(2),
                start_delay: SimDuration::ZERO,
            },
            k,
            SimTime::EPOCH,
            &mut rng,
        );
        prop_assert!((peak_window_share(&one_burst, SimDuration::hours(2)) - 1.0).abs() < 1e-12);
    }

    /// Round-robin segments: `take` returns distinct accounts per call,
    /// never exceeds capacity, and the cross-order overlap equals
    /// `max(0, k1 + k2 - capacity)` while the roster is consumed in order.
    #[test]
    fn segment_overlap_arithmetic(
        capacity in 1usize..300,
        k1 in 0usize..350,
        k2 in 0usize..350,
    ) {
        let mut segment = Segment::new(capacity);
        let mut next = 0u32;
        let mut take = |seg: &mut Segment, k: usize| {
            let mut fresh = Vec::new();
            seg.take(k, &mut fresh, || {
                let id = UserId(next);
                next += 1;
                id
            })
        };
        let a = take(&mut segment, k1);
        let b = take(&mut segment, k2);
        prop_assert_eq!(a.len(), k1.min(capacity));
        prop_assert_eq!(b.len(), k2.min(capacity));
        for got in [&a, &b] {
            let mut d = got.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), got.len(), "distinct within an order");
        }
        let sa: std::collections::HashSet<UserId> = a.iter().copied().collect();
        let overlap = b.iter().filter(|u| sa.contains(u)).count();
        let expected = (k1.min(capacity) + k2.min(capacity)).saturating_sub(capacity);
        prop_assert_eq!(overlap, expected.min(k1.min(capacity)).min(k2.min(capacity)));
        prop_assert!(segment.len() <= capacity);
    }
}
