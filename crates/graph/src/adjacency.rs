//! The undirected friendship graph.
//!
//! Facebook friendships are bidirectional (the paper contrasts this with
//! Twitter's follower model), so the store is a symmetric adjacency list with
//! sorted neighbor vectors: `O(log d)` membership tests, `O(d)` neighbor
//! scans, and cheap edge iteration for the social-graph analyses.

use crate::ids::UserId;
use serde::{Deserialize, Serialize};

/// An undirected simple graph over dense [`UserId`]s.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FriendGraph {
    /// Sorted neighbor list per node.
    adj: Vec<Vec<UserId>>,
    edges: usize,
}

impl FriendGraph {
    /// An empty graph over `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        FriendGraph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Grow the node set to at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        if n > self.adj.len() {
            self.adj.resize(n, Vec::new());
        }
    }

    /// Add the undirected edge `{a, b}`. Self-loops are rejected; duplicate
    /// edges are ignored. Returns true when the edge was new.
    ///
    /// # Panics
    /// Panics when either endpoint is out of range or `a == b`.
    pub fn add_edge(&mut self, a: UserId, b: UserId) -> bool {
        assert!(a != b, "self-friendship {a} is not a thing");
        assert!(
            a.idx() < self.adj.len() && b.idx() < self.adj.len(),
            "edge endpoint out of range: {a}, {b} (n = {})",
            self.adj.len()
        );
        let pos = match self.adj[a.idx()].binary_search(&b) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        self.adj[a.idx()].insert(pos, b);
        let pos_b = self.adj[b.idx()]
            .binary_search(&a)
            .expect_err("symmetric edge must be absent");
        self.adj[b.idx()].insert(pos_b, a);
        self.edges += 1;
        true
    }

    /// True when `{a, b}` is an edge.
    pub fn has_edge(&self, a: UserId, b: UserId) -> bool {
        a.idx() < self.adj.len() && self.adj[a.idx()].binary_search(&b).is_ok()
    }

    /// Degree of `u` (number of friends).
    pub fn degree(&self, u: UserId) -> usize {
        self.adj[u.idx()].len()
    }

    /// The sorted neighbor list of `u`.
    pub fn neighbors(&self, u: UserId) -> &[UserId] {
        &self.adj[u.idx()]
    }

    /// Iterate all undirected edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (UserId, UserId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(i, ns)| {
            let a = UserId(i as u32);
            ns.iter()
                .copied()
                .filter(move |b| a < *b)
                .map(move |b| (a, b))
        })
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.adj.len() as u32).map(UserId)
    }

    /// Number of common neighbors of `a` and `b` (sorted-merge intersection).
    pub fn common_neighbors(&self, a: UserId, b: UserId) -> usize {
        let (xs, ys) = (self.neighbors(a), self.neighbors(b));
        let (mut i, mut j, mut c) = (0, 0, 0);
        while i < xs.len() && j < ys.len() {
            match xs[i].cmp(&ys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    c += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    #[test]
    fn add_edge_is_symmetric_and_dedups() {
        let mut g = FriendGraph::with_nodes(4);
        assert!(g.add_edge(u(0), u(2)));
        assert!(!g.add_edge(u(2), u(0)), "reverse insert is a duplicate");
        assert!(g.has_edge(u(0), u(2)));
        assert!(g.has_edge(u(2), u(0)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(u(0)), 1);
        assert_eq!(g.degree(u(2)), 1);
        assert_eq!(g.degree(u(1)), 0);
    }

    #[test]
    #[should_panic(expected = "self-friendship")]
    fn self_loops_rejected() {
        FriendGraph::with_nodes(2).add_edge(u(1), u(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        FriendGraph::with_nodes(2).add_edge(u(0), u(5));
    }

    #[test]
    fn neighbors_stay_sorted() {
        let mut g = FriendGraph::with_nodes(6);
        for b in [5, 1, 3, 2] {
            g.add_edge(u(0), u(b));
        }
        assert_eq!(g.neighbors(u(0)), &[u(1), u(2), u(3), u(5)]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let mut g = FriendGraph::with_nodes(4);
        g.add_edge(u(0), u(1));
        g.add_edge(u(1), u(2));
        g.add_edge(u(3), u(0));
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(u(0), u(1)), (u(0), u(3)), (u(1), u(2))]);
        assert_eq!(es.len(), g.edge_count());
    }

    #[test]
    fn common_neighbors_counts_intersection() {
        let mut g = FriendGraph::with_nodes(6);
        // 0 and 1 share neighbors 2 and 3; 0 also knows 4, 1 also knows 5.
        for (a, b) in [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 5)] {
            g.add_edge(u(a), u(b));
        }
        assert_eq!(g.common_neighbors(u(0), u(1)), 2);
        assert_eq!(g.common_neighbors(u(4), u(5)), 0);
        assert_eq!(g.common_neighbors(u(2), u(3)), 2, "via 0 and 1");
    }

    #[test]
    fn ensure_nodes_grows_only() {
        let mut g = FriendGraph::with_nodes(2);
        g.ensure_nodes(5);
        assert_eq!(g.node_count(), 5);
        g.ensure_nodes(3);
        assert_eq!(g.node_count(), 5, "never shrinks");
    }

    #[test]
    fn has_edge_handles_out_of_range_gracefully() {
        let g = FriendGraph::with_nodes(2);
        assert!(!g.has_edge(u(9), u(0)));
    }
}
