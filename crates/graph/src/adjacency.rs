//! The undirected friendship graph.
//!
//! Facebook friendships are bidirectional (the paper contrasts this with
//! Twitter's follower model). At million-account scale a `Vec<Vec<UserId>>`
//! adjacency list pays one heap allocation per node and scatters neighbor
//! data across the heap, so the store is a **CSR (compressed sparse row)**
//! representation — one offset array plus one flat edge array, sorted per
//! node — with a small per-node overlay absorbing incremental inserts.
//!
//! The overlay keeps `add_edge` cheap while generators build the graph;
//! once it grows past a fraction of the CSR body the graph re-compacts,
//! amortizing to `O(E)` total work. Steady-state queries (`has_edge`,
//! `neighbors`, `degree`) hit the flat arrays: `O(log d)` membership tests,
//! zero-allocation `O(d)` neighbor scans, and cache-friendly edge iteration
//! for the social-graph analyses.

use crate::ids::UserId;
use serde::{Deserialize, Serialize};
use std::ops::Deref;

/// Compaction triggers when the overlay holds at least this many directed
/// entries *and* at least a quarter of the CSR body's size. The floor keeps
/// small graphs from recompacting on every insert; the fraction bounds the
/// total compaction work at a constant factor of the final edge count.
const COMPACT_FLOOR: usize = 4_096;

/// An undirected simple graph over dense [`UserId`]s.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FriendGraph {
    /// CSR row offsets; `offsets[u]..offsets[u+1]` indexes `csr`.
    offsets: Vec<u64>,
    /// CSR edge array, sorted within each node's range.
    csr: Vec<UserId>,
    /// Per-node sorted overlay of edges added since the last compaction.
    extra: Vec<Vec<UserId>>,
    /// Total directed entries currently in `extra`.
    extra_len: usize,
    edges: usize,
}

impl Default for FriendGraph {
    fn default() -> Self {
        FriendGraph::with_nodes(0)
    }
}

/// The neighbor list of one node, as returned by [`FriendGraph::neighbors`].
///
/// Dereferences to a sorted `[UserId]` slice. When the node has no pending
/// overlay entries this borrows the CSR body directly (zero-copy); otherwise
/// it holds the merged list. Call [`FriendGraph::compact`] after bulk
/// construction to guarantee the zero-copy path.
#[derive(Debug)]
pub enum Neighbors<'a> {
    /// Borrowed directly from the CSR edge array.
    Slice(&'a [UserId]),
    /// Merged CSR + overlay entries (node had pending inserts).
    Owned(Vec<UserId>),
}

impl Deref for Neighbors<'_> {
    type Target = [UserId];

    fn deref(&self) -> &[UserId] {
        match self {
            Neighbors::Slice(s) => s,
            Neighbors::Owned(v) => v,
        }
    }
}

impl<'a> IntoIterator for &'a Neighbors<'a> {
    type Item = &'a UserId;
    type IntoIter = std::slice::Iter<'a, UserId>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// By-value iterator over a [`Neighbors`] list.
pub enum NeighborsIter<'a> {
    /// Iterating a borrowed CSR slice.
    Slice(std::iter::Copied<std::slice::Iter<'a, UserId>>),
    /// Iterating a merged (owned) list.
    Owned(std::vec::IntoIter<UserId>),
}

impl Iterator for NeighborsIter<'_> {
    type Item = UserId;

    fn next(&mut self) -> Option<UserId> {
        match self {
            NeighborsIter::Slice(it) => it.next(),
            NeighborsIter::Owned(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            NeighborsIter::Slice(it) => it.size_hint(),
            NeighborsIter::Owned(it) => it.size_hint(),
        }
    }
}

impl<'a> IntoIterator for Neighbors<'a> {
    type Item = UserId;
    type IntoIter = NeighborsIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        match self {
            Neighbors::Slice(s) => NeighborsIter::Slice(s.iter().copied()),
            Neighbors::Owned(v) => NeighborsIter::Owned(v.into_iter()),
        }
    }
}

impl FriendGraph {
    /// An empty graph over `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        FriendGraph {
            offsets: vec![0; n + 1],
            csr: Vec::new(),
            extra: vec![Vec::new(); n],
            extra_len: 0,
            edges: 0,
        }
    }

    /// Build a graph over `n` nodes from undirected edges given as pairs, in
    /// any order, duplicates collapsed. Observationally identical to
    /// [`with_nodes`][Self::with_nodes] followed by [`add_edge`][Self::add_edge]
    /// per pair, but assembles the CSR body in one sort + scatter instead of
    /// per-edge overlay inserts punctuated by `O(nodes)` compaction sweeps —
    /// the difference between milliseconds and half a second when a few
    /// thousand edges span a million-account id space.
    ///
    /// # Panics
    /// Panics on a self-loop or an endpoint `>= n`.
    pub fn from_pairs<I>(n: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (UserId, UserId)>,
    {
        let mut directed: Vec<(UserId, UserId)> = Vec::new();
        for (a, b) in pairs {
            assert!(a != b, "self-friendship {a} is not a thing");
            assert!(
                a.idx() < n && b.idx() < n,
                "edge endpoint out of range: {a}, {b} (n = {n})"
            );
            directed.push((a, b));
            directed.push((b, a));
        }
        directed.sort_unstable();
        directed.dedup();
        let mut offsets = vec![0u64; n + 1];
        for &(a, _) in &directed {
            offsets[a.idx() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let csr: Vec<UserId> = directed.iter().map(|&(_, b)| b).collect();
        FriendGraph {
            offsets,
            csr,
            extra: vec![Vec::new(); n],
            extra_len: 0,
            edges: directed.len() / 2,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Grow the node set to at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        if n > self.node_count() {
            let last = *self.offsets.last().expect("offsets never empty");
            self.offsets.resize(n + 1, last);
            self.extra.resize(n, Vec::new());
        }
    }

    /// The CSR slice of `u` (overlay entries excluded).
    fn csr_range(&self, u: UserId) -> &[UserId] {
        // lint:allow(panic-reachable-from-serve): offsets has n+1 monotone entries bounded by csr.len()
        &self.csr[self.offsets[u.idx()] as usize..self.offsets[u.idx() + 1] as usize]
    }

    /// Add the undirected edge `{a, b}`. Self-loops are rejected; duplicate
    /// edges are ignored. Returns true when the edge was new.
    ///
    /// # Panics
    /// Panics when either endpoint is out of range or `a == b`.
    pub fn add_edge(&mut self, a: UserId, b: UserId) -> bool {
        assert!(a != b, "self-friendship {a} is not a thing");
        assert!(
            a.idx() < self.node_count() && b.idx() < self.node_count(),
            "edge endpoint out of range: {a}, {b} (n = {})",
            self.node_count()
        );
        if self.csr_range(a).binary_search(&b).is_ok() {
            return false;
        }
        let pos = match self.extra[a.idx()].binary_search(&b) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        self.extra[a.idx()].insert(pos, b);
        let pos_b = self.extra[b.idx()]
            .binary_search(&a)
            .expect_err("symmetric edge must be absent");
        self.extra[b.idx()].insert(pos_b, a);
        self.extra_len += 2;
        self.edges += 1;
        if self.extra_len >= COMPACT_FLOOR && self.extra_len * 4 >= self.csr.len() {
            self.compact();
        }
        true
    }

    /// Merge the overlay into the CSR body. Idempotent; after this call every
    /// [`neighbors`][Self::neighbors] result borrows the flat edge array.
    pub fn compact(&mut self) {
        if self.extra_len == 0 {
            return;
        }
        let n = self.node_count();
        let mut csr = Vec::with_capacity(self.csr.len() + self.extra_len);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        for u in 0..n {
            let old = &self.csr[self.offsets[u] as usize..self.offsets[u + 1] as usize];
            let new = &self.extra[u];
            // Two-pointer merge of two sorted, disjoint lists.
            let (mut i, mut j) = (0, 0);
            while i < old.len() && j < new.len() {
                if old[i] < new[j] {
                    csr.push(old[i]);
                    i += 1;
                } else {
                    csr.push(new[j]);
                    j += 1;
                }
            }
            csr.extend_from_slice(&old[i..]);
            csr.extend_from_slice(&new[j..]);
            offsets.push(csr.len() as u64);
        }
        self.csr = csr;
        self.offsets = offsets;
        for v in &mut self.extra {
            v.clear();
        }
        self.extra_len = 0;
    }

    /// True when every edge lives in the flat CSR arrays (no overlay).
    pub fn is_compact(&self) -> bool {
        self.extra_len == 0
    }

    /// True when `{a, b}` is an edge.
    pub fn has_edge(&self, a: UserId, b: UserId) -> bool {
        a.idx() < self.node_count()
            && (self.csr_range(a).binary_search(&b).is_ok()
                || self.extra[a.idx()].binary_search(&b).is_ok())
    }

    /// Degree of `u` (number of friends).
    pub fn degree(&self, u: UserId) -> usize {
        self.csr_range(u).len() + self.extra[u.idx()].len()
    }

    /// The sorted neighbor list of `u`. Zero-copy when the graph is
    /// [compact][Self::is_compact]; otherwise merges the node's overlay.
    pub fn neighbors(&self, u: UserId) -> Neighbors<'_> {
        let base = self.csr_range(u);
        // lint:allow(panic-reachable-from-serve): extra is kept at length n by ensure_node
        let over = &self.extra[u.idx()];
        if over.is_empty() {
            return Neighbors::Slice(base);
        }
        let mut merged = Vec::with_capacity(base.len() + over.len());
        let (mut i, mut j) = (0, 0);
        while i < base.len() && j < over.len() {
            // lint:allow(panic-reachable-from-serve): loop condition bounds i and j
            if base[i] < over[j] {
                merged.push(base[i]); // lint:allow(panic-reachable-from-serve): i < base.len() here
                i += 1;
            } else {
                merged.push(over[j]); // lint:allow(panic-reachable-from-serve): j < over.len() here
                j += 1;
            }
        }
        // lint:allow(panic-reachable-from-serve): i <= base.len() after the merge loop
        merged.extend_from_slice(&base[i..]);
        // lint:allow(panic-reachable-from-serve): j <= over.len() after the merge loop
        merged.extend_from_slice(&over[j..]);
        Neighbors::Owned(merged)
    }

    /// Iterate all undirected edges as `(a, b)` with `a < b`, in ascending
    /// `(a, b)` order.
    pub fn edges(&self) -> impl Iterator<Item = (UserId, UserId)> + '_ {
        self.nodes().flat_map(move |a| {
            let larger: Vec<UserId> = self
                .neighbors(a)
                .iter()
                .copied()
                .filter(|b| a < *b)
                .collect();
            larger.into_iter().map(move |b| (a, b))
        })
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.node_count() as u32).map(UserId)
    }

    /// Number of common neighbors of `a` and `b` (sorted-merge intersection).
    pub fn common_neighbors(&self, a: UserId, b: UserId) -> usize {
        let (xs, ys) = (self.neighbors(a), self.neighbors(b));
        let (mut i, mut j, mut c) = (0, 0, 0);
        while i < xs.len() && j < ys.len() {
            match xs[i].cmp(&ys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    c += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    #[test]
    fn add_edge_is_symmetric_and_dedups() {
        let mut g = FriendGraph::with_nodes(4);
        assert!(g.add_edge(u(0), u(2)));
        assert!(!g.add_edge(u(2), u(0)), "reverse insert is a duplicate");
        assert!(g.has_edge(u(0), u(2)));
        assert!(g.has_edge(u(2), u(0)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(u(0)), 1);
        assert_eq!(g.degree(u(2)), 1);
        assert_eq!(g.degree(u(1)), 0);
    }

    #[test]
    #[should_panic(expected = "self-friendship")]
    fn self_loops_rejected() {
        FriendGraph::with_nodes(2).add_edge(u(1), u(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        FriendGraph::with_nodes(2).add_edge(u(0), u(5));
    }

    #[test]
    fn from_pairs_matches_incremental_build() {
        // Unordered pairs, reversed duplicates, an isolated node (4).
        let pairs = [(2, 0), (0, 1), (1, 2), (0, 2), (5, 3), (3, 5)];
        let bulk = FriendGraph::from_pairs(6, pairs.iter().map(|&(a, b)| (u(a), u(b))));
        let mut incremental = FriendGraph::with_nodes(6);
        for &(a, b) in &pairs {
            incremental.add_edge(u(a), u(b));
        }
        assert_eq!(bulk.edge_count(), incremental.edge_count());
        for i in 0..6 {
            assert_eq!(
                *bulk.neighbors(u(i)),
                *incremental.neighbors(u(i)),
                "neighbors of {i}"
            );
        }
        assert!(bulk.is_compact(), "bulk build leaves no overlay");
        let es: Vec<_> = bulk.edges().collect();
        assert_eq!(
            es,
            vec![(u(0), u(1)), (u(0), u(2)), (u(1), u(2)), (u(3), u(5))]
        );
    }

    #[test]
    #[should_panic(expected = "self-friendship")]
    fn from_pairs_rejects_self_loops() {
        FriendGraph::from_pairs(3, [(u(1), u(1))]);
    }

    #[test]
    fn neighbors_stay_sorted() {
        let mut g = FriendGraph::with_nodes(6);
        for b in [5, 1, 3, 2] {
            g.add_edge(u(0), u(b));
        }
        assert_eq!(*g.neighbors(u(0)), [u(1), u(2), u(3), u(5)]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let mut g = FriendGraph::with_nodes(4);
        g.add_edge(u(0), u(1));
        g.add_edge(u(1), u(2));
        g.add_edge(u(3), u(0));
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(u(0), u(1)), (u(0), u(3)), (u(1), u(2))]);
        assert_eq!(es.len(), g.edge_count());
    }

    #[test]
    fn common_neighbors_counts_intersection() {
        let mut g = FriendGraph::with_nodes(6);
        // 0 and 1 share neighbors 2 and 3; 0 also knows 4, 1 also knows 5.
        for (a, b) in [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 5)] {
            g.add_edge(u(a), u(b));
        }
        assert_eq!(g.common_neighbors(u(0), u(1)), 2);
        assert_eq!(g.common_neighbors(u(4), u(5)), 0);
        assert_eq!(g.common_neighbors(u(2), u(3)), 2, "via 0 and 1");
    }

    #[test]
    fn ensure_nodes_grows_only() {
        let mut g = FriendGraph::with_nodes(2);
        g.ensure_nodes(5);
        assert_eq!(g.node_count(), 5);
        g.ensure_nodes(3);
        assert_eq!(g.node_count(), 5, "never shrinks");
    }

    #[test]
    fn has_edge_handles_out_of_range_gracefully() {
        let g = FriendGraph::with_nodes(2);
        assert!(!g.has_edge(u(9), u(0)));
    }

    #[test]
    fn compaction_preserves_every_query() {
        let mut g = FriendGraph::with_nodes(8);
        for (a, b) in [(0, 3), (0, 5), (1, 2), (2, 3), (4, 7), (5, 6)] {
            g.add_edge(u(a), u(b));
        }
        let degrees: Vec<usize> = g.nodes().map(|n| g.degree(n)).collect();
        let edges: Vec<_> = g.edges().collect();
        g.compact();
        assert!(g.is_compact());
        assert_eq!(degrees, g.nodes().map(|n| g.degree(n)).collect::<Vec<_>>());
        assert_eq!(edges, g.edges().collect::<Vec<_>>());
        assert!(g.has_edge(u(0), u(3)));
        assert!(!g.has_edge(u(0), u(1)));
        assert_eq!(*g.neighbors(u(0)), [u(3), u(5)]);
        // Inserting after compaction lands in the overlay and still queries.
        assert!(g.add_edge(u(0), u(1)));
        assert!(!g.is_compact());
        assert_eq!(*g.neighbors(u(0)), [u(1), u(3), u(5)]);
        assert_eq!(g.degree(u(0)), 3);
    }

    #[test]
    fn compact_growth_interleaving() {
        // Grow, add, compact, grow again — invariants must hold throughout.
        let mut g = FriendGraph::with_nodes(3);
        g.add_edge(u(0), u(1));
        g.compact();
        g.ensure_nodes(6);
        assert!(g.add_edge(u(4), u(5)));
        assert!(g.add_edge(u(0), u(4)));
        assert_eq!(g.edge_count(), 3);
        assert_eq!(*g.neighbors(u(0)), [u(1), u(4)]);
        assert_eq!(*g.neighbors(u(4)), [u(0), u(5)]);
        g.compact();
        assert_eq!(*g.neighbors(u(4)), [u(0), u(5)]);
        assert_eq!(g.degree(u(3)), 0);
    }

    #[test]
    fn empty_and_default_graphs() {
        let g = FriendGraph::default();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert!(g.is_compact());
    }
}
