//! The user ↔ page like structure.
//!
//! A bipartite graph indexed from both sides: which pages a user likes (the
//! crawler reads this off public profiles) and which users like a page (the
//! honeypot monitor reads this off the page). Timestamps live in the
//! platform's like ledger, not here — this is pure structure.

use crate::ids::{PageId, UserId};
use serde::{Deserialize, Serialize};

/// A bipartite like graph with both-side indexes.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LikeGraph {
    user_pages: Vec<Vec<PageId>>,
    page_users: Vec<Vec<UserId>>,
    likes: usize,
}

impl LikeGraph {
    /// An empty like graph over `users` users and `pages` pages.
    pub fn new(users: usize, pages: usize) -> Self {
        LikeGraph {
            user_pages: vec![Vec::new(); users],
            page_users: vec![Vec::new(); pages],
            likes: 0,
        }
    }

    /// Number of user slots.
    pub fn user_count(&self) -> usize {
        self.user_pages.len()
    }

    /// Number of page slots.
    pub fn page_count(&self) -> usize {
        self.page_users.len()
    }

    /// Total number of like edges.
    pub fn like_count(&self) -> usize {
        self.likes
    }

    /// Grow the user side to at least `n` slots.
    pub fn ensure_users(&mut self, n: usize) {
        if n > self.user_pages.len() {
            self.user_pages.resize(n, Vec::new());
        }
    }

    /// Grow the page side to at least `n` slots.
    pub fn ensure_pages(&mut self, n: usize) {
        if n > self.page_users.len() {
            self.page_users.resize(n, Vec::new());
        }
    }

    /// Record that `user` likes `page`. Duplicate likes are ignored.
    /// Returns true when the like was new.
    ///
    /// The user side stays sorted (it backs membership tests and is short —
    /// a user likes tens to thousands of pages); the page side is
    /// append-only in arrival order, because popular pages collect hundreds
    /// of thousands of likers and sorted insertion there would be quadratic.
    ///
    /// # Panics
    /// Panics when either side is out of range.
    pub fn add_like(&mut self, user: UserId, page: PageId) -> bool {
        assert!(
            user.idx() < self.user_pages.len(),
            "user {user} out of range"
        );
        assert!(
            page.idx() < self.page_users.len(),
            "page {page} out of range"
        );
        let pos = match self.user_pages[user.idx()].binary_search(&page) {
            Ok(_) => return false,
            Err(p) => p,
        };
        self.user_pages[user.idx()].insert(pos, page);
        self.page_users[page.idx()].push(user);
        self.likes += 1;
        true
    }

    /// True when `user` likes `page`.
    pub fn likes_page(&self, user: UserId, page: PageId) -> bool {
        user.idx() < self.user_pages.len()
            && self.user_pages[user.idx()].binary_search(&page).is_ok()
    }

    /// Sorted pages liked by `user`.
    pub fn pages_of(&self, user: UserId) -> &[PageId] {
        &self.user_pages[user.idx()]
    }

    /// Likers of `page`, in like-arrival order.
    pub fn likers_of(&self, page: PageId) -> &[UserId] {
        &self.page_users[page.idx()]
    }

    /// Like count of a user (how many pages they like). This is the quantity
    /// behind the paper's Figure 4 CDFs.
    pub fn user_like_count(&self, user: UserId) -> usize {
        self.user_pages[user.idx()].len()
    }

    /// Like count of a page (how many users like it).
    pub fn page_like_count(&self, page: PageId) -> usize {
        self.page_users[page.idx()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }
    fn p(i: u32) -> PageId {
        PageId(i)
    }

    #[test]
    fn add_like_indexes_both_sides() {
        let mut g = LikeGraph::new(3, 3);
        assert!(g.add_like(u(1), p(2)));
        assert!(g.likes_page(u(1), p(2)));
        assert_eq!(g.pages_of(u(1)), &[p(2)]);
        assert_eq!(g.likers_of(p(2)), &[u(1)]);
        assert_eq!(g.like_count(), 1);
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut g = LikeGraph::new(2, 2);
        assert!(g.add_like(u(0), p(0)));
        assert!(!g.add_like(u(0), p(0)));
        assert_eq!(g.like_count(), 1);
        assert_eq!(g.user_like_count(u(0)), 1);
        assert_eq!(g.page_like_count(p(0)), 1);
    }

    #[test]
    fn user_side_sorted_page_side_chronological() {
        let mut g = LikeGraph::new(5, 5);
        for page in [4, 0, 2] {
            g.add_like(u(1), p(page));
        }
        for user in [3, 0] {
            g.add_like(u(user), p(2));
        }
        assert_eq!(g.pages_of(u(1)), &[p(0), p(2), p(4)]);
        assert_eq!(g.likers_of(p(2)), &[u(1), u(3), u(0)], "arrival order");
    }

    #[test]
    fn growth_preserves_content() {
        let mut g = LikeGraph::new(1, 1);
        g.add_like(u(0), p(0));
        g.ensure_users(10);
        g.ensure_pages(10);
        g.add_like(u(9), p(9));
        assert!(g.likes_page(u(0), p(0)));
        assert!(g.likes_page(u(9), p(9)));
        assert_eq!(g.user_count(), 10);
        assert_eq!(g.page_count(), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_user_panics() {
        LikeGraph::new(1, 1).add_like(u(5), p(0));
    }

    #[test]
    fn likes_page_out_of_range_is_false() {
        let g = LikeGraph::new(1, 1);
        assert!(!g.likes_page(u(9), p(0)));
    }
}
