//! Connected components over node subsets.
//!
//! The social-graph analysis (Figure 3) looks at the graph *induced by the
//! likers*: which likers clump into one dense blob (BoostLikes), which form
//! isolated pairs and triplets (SocialFormula), and which bridge providers
//! (AuthenticLikes ↔ MammothSocials). Components are computed over an
//! explicit member set so the global graph never needs copying.

use crate::adjacency::FriendGraph;
use crate::ids::UserId;
use std::collections::{BTreeMap, HashMap};

/// Union-find over an arbitrary set of user ids.
#[derive(Debug)]
pub struct UnionFind {
    parent: HashMap<UserId, UserId>,
    rank: HashMap<UserId, u32>,
}

impl UnionFind {
    /// Disjoint singletons for each member.
    pub fn new(members: &[UserId]) -> Self {
        UnionFind {
            parent: members.iter().map(|u| (*u, *u)).collect(),
            rank: members.iter().map(|u| (*u, 0)).collect(),
        }
    }

    /// Representative of `u`'s set (path-halving). An id never seen
    /// before joins as its own singleton — no panic path.
    pub fn find(&mut self, u: UserId) -> UserId {
        let mut x = u;
        loop {
            let p = *self.parent.entry(x).or_insert(x);
            if p == x {
                return x;
            }
            let gp = *self.parent.entry(p).or_insert(p);
            self.parent.insert(x, gp);
            x = gp;
        }
    }

    /// Merge the sets of `a` and `b`; true when they were distinct.
    pub fn union(&mut self, a: UserId, b: UserId) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let ka = *self.rank.entry(ra).or_insert(0);
        let kb = *self.rank.entry(rb).or_insert(0);
        let (hi, lo) = if ka >= kb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(lo, hi);
        if ka == kb {
            *self.rank.entry(hi).or_insert(0) += 1;
        }
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: UserId, b: UserId) -> bool {
        self.find(a) == self.find(b)
    }
}

/// The connected components of the subgraph induced by `members`,
/// as a list of member lists (each sorted; list sorted by size descending,
/// ties by smallest id for determinism).
pub fn components(graph: &FriendGraph, members: &[UserId]) -> Vec<Vec<UserId>> {
    let member_set: std::collections::HashSet<UserId> = members.iter().copied().collect();
    let mut uf = UnionFind::new(members);
    for &u in members {
        for v in graph.neighbors(u) {
            if member_set.contains(&v) {
                uf.union(u, v);
            }
        }
    }
    // BTreeMap so the grouping iterates deterministically; the final sort
    // below is a total order either way, but this keeps the intermediate
    // stages reproducible too.
    let mut groups: BTreeMap<UserId, Vec<UserId>> = BTreeMap::new();
    for &u in members {
        groups.entry(uf.find(u)).or_default().push(u);
    }
    let mut out: Vec<Vec<UserId>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    out
}

/// Component sizes, descending. Convenience over [`components`].
pub fn component_sizes(graph: &FriendGraph, members: &[UserId]) -> Vec<usize> {
    components(graph, members).iter().map(Vec::len).collect()
}

/// A census of the induced component structure: how many singletons, pairs,
/// triplets, and larger blobs — the vocabulary of the paper's Figure 3
/// discussion.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ComponentCensus {
    /// Members with no induced edges at all.
    pub singletons: usize,
    /// Components of exactly two members.
    pub pairs: usize,
    /// Components of exactly three members.
    pub triplets: usize,
    /// Components of four or more members.
    pub larger: usize,
    /// Size of the largest component.
    pub giant_size: usize,
    /// Total member count (sanity anchor).
    pub members: usize,
}

impl ComponentCensus {
    /// Compute the census for the subgraph induced by `members`.
    pub fn compute(graph: &FriendGraph, members: &[UserId]) -> Self {
        let sizes = component_sizes(graph, members);
        let mut c = ComponentCensus {
            giant_size: sizes.first().copied().unwrap_or(0),
            members: members.len(),
            ..ComponentCensus::default()
        };
        for s in sizes {
            match s {
                1 => c.singletons += 1,
                2 => c.pairs += 1,
                3 => c.triplets += 1,
                _ => c.larger += 1,
            }
        }
        c
    }

    /// Fraction of members inside the largest component.
    pub fn giant_fraction(&self) -> f64 {
        if self.members == 0 {
            0.0
        } else {
            self.giant_size as f64 / self.members as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    fn chain(n: u32) -> FriendGraph {
        let mut g = FriendGraph::with_nodes(n as usize);
        for i in 0..n - 1 {
            g.add_edge(u(i), u(i + 1));
        }
        g
    }

    #[test]
    fn union_find_merges() {
        let ms: Vec<UserId> = (0..4).map(u).collect();
        let mut uf = UnionFind::new(&ms);
        assert!(uf.union(u(0), u(1)));
        assert!(!uf.union(u(1), u(0)), "already merged");
        assert!(uf.connected(u(0), u(1)));
        assert!(!uf.connected(u(0), u(2)));
        uf.union(u(2), u(3));
        uf.union(u(0), u(3));
        assert!(uf.connected(u(1), u(2)));
    }

    #[test]
    fn union_find_admits_unseen_ids_as_singletons() {
        let mut uf = UnionFind::new(&[u(0), u(1)]);
        // 99 was never a member: it joins lazily as its own set.
        assert_eq!(uf.find(u(99)), u(99));
        assert!(!uf.connected(u(99), u(0)));
        assert!(uf.union(u(99), u(0)));
        assert!(uf.connected(u(99), u(0)));
    }

    #[test]
    fn components_respect_member_subset() {
        // Chain 0-1-2-3-4, but only {0, 1, 3, 4} are members: the induced
        // subgraph loses node 2, splitting the chain into two pairs.
        let g = chain(5);
        let ms = vec![u(0), u(1), u(3), u(4)];
        let comps = components(&g, &ms);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![u(0), u(1)]);
        assert_eq!(comps[1], vec![u(3), u(4)]);
    }

    #[test]
    fn components_ordering_is_deterministic() {
        let mut g = FriendGraph::with_nodes(7);
        g.add_edge(u(5), u(6)); // pair
        g.add_edge(u(0), u(1));
        g.add_edge(u(1), u(2)); // triple
        let ms: Vec<UserId> = (0..7).map(u).collect();
        let comps = components(&g, &ms);
        assert_eq!(comps[0], vec![u(0), u(1), u(2)]);
        // Two singletons (3, 4) and the pair; size ties break on smallest id.
        assert_eq!(comps[1], vec![u(5), u(6)]);
        assert_eq!(comps[2], vec![u(3)]);
        assert_eq!(comps[3], vec![u(4)]);
    }

    #[test]
    fn census_counts_shapes() {
        let mut g = FriendGraph::with_nodes(12);
        g.add_edge(u(0), u(1)); // pair
        g.add_edge(u(2), u(3));
        g.add_edge(u(3), u(4)); // triplet
        for i in 6..9 {
            g.add_edge(u(5), u(i)); // star of 4+ (5,6,7,8)
        }
        // 9, 10, 11 isolated
        let ms: Vec<UserId> = (0..12).map(u).collect();
        let c = ComponentCensus::compute(&g, &ms);
        assert_eq!(
            c,
            ComponentCensus {
                singletons: 3,
                pairs: 1,
                triplets: 1,
                larger: 1,
                giant_size: 4,
                members: 12,
            }
        );
        assert!((c.giant_fraction() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_member_set_is_fine() {
        let g = chain(3);
        assert!(components(&g, &[]).is_empty());
        let c = ComponentCensus::compute(&g, &[]);
        assert_eq!(c.giant_size, 0);
        assert_eq!(c.giant_fraction(), 0.0);
    }
}
