//! Graphviz DOT export.
//!
//! Figure 3 of the paper is a drawing of the likers' friendship graph with
//! nodes colored by provider. We reproduce its *content* numerically in the
//! analysis crate; this module emits the same picture as DOT so a reader can
//! render it (`dot -Tsvg`) and eyeball the BoostLikes blob versus the
//! SocialFormula pairs.

use crate::adjacency::FriendGraph;
use crate::ids::UserId;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Export the subgraph induced by `members` as DOT. `group_of` labels each
/// node with a group (provider) name used for coloring; nodes without an
/// entry render gray. When `drop_isolated` is set, members without any
/// induced edge are omitted — the paper's Figure 3 does the same
/// ("likers who did not have friendship relations with any other likers
/// were excluded").
pub fn induced_dot(
    graph: &FriendGraph,
    members: &[UserId],
    group_of: &HashMap<UserId, String>,
    drop_isolated: bool,
) -> String {
    let member_set: std::collections::HashSet<UserId> = members.iter().copied().collect();
    // Stable palette assignment: groups sorted by name. Collecting through a
    // BTreeSet sorts and dedups in one pass, independent of map order.
    let groups: Vec<&String> = group_of
        .values()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    const PALETTE: &[&str] = &[
        "#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2", "#b279a2", "#9d755d",
    ];
    let color_of = |g: &str| -> &str {
        groups
            .iter()
            .position(|x| x.as_str() == g)
            .map(|i| PALETTE[i % PALETTE.len()])
            .unwrap_or("#999999")
    };

    let mut induced_edges: Vec<(UserId, UserId)> = Vec::new();
    let mut has_edge: std::collections::HashSet<UserId> = std::collections::HashSet::new();
    for &u in members {
        for v in graph.neighbors(u) {
            if u < v && member_set.contains(&v) {
                induced_edges.push((u, v));
                has_edge.insert(u);
                has_edge.insert(v);
            }
        }
    }

    let mut out = String::from("graph likers {\n  layout=neato;\n  node [shape=point, width=0.08];\n  edge [color=\"#00000040\"];\n");
    let mut sorted_members = members.to_vec();
    sorted_members.sort_unstable();
    for u in &sorted_members {
        if drop_isolated && !has_edge.contains(u) {
            continue;
        }
        let color = group_of.get(u).map(|g| color_of(g)).unwrap_or("#999999");
        let _ = writeln!(out, "  \"{u}\" [color=\"{color}\"];");
    }
    induced_edges.sort_unstable();
    for (a, b) in induced_edges {
        let _ = writeln!(out, "  \"{a}\" -- \"{b}\";");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    #[test]
    fn dot_contains_nodes_edges_and_colors() {
        let mut g = FriendGraph::with_nodes(4);
        g.add_edge(u(0), u(1));
        let groups: HashMap<UserId, String> = [
            (u(0), "BL".to_string()),
            (u(1), "SF".to_string()),
            (u(2), "BL".to_string()),
        ]
        .into_iter()
        .collect();
        let ms: Vec<UserId> = (0..3).map(u).collect();
        let dot = induced_dot(&g, &ms, &groups, false);
        assert!(dot.starts_with("graph likers {"));
        assert!(dot.contains("\"u0\" -- \"u1\";"));
        assert!(dot.contains("\"u2\""), "isolated node kept");
        // Same group, same color.
        let color_u0 = dot
            .lines()
            .find(|l| l.contains("\"u0\" ["))
            .unwrap()
            .to_string();
        let color_u2 = dot
            .lines()
            .find(|l| l.contains("\"u2\" ["))
            .unwrap()
            .replace("u2", "u0");
        assert_eq!(color_u0, color_u2);
    }

    #[test]
    fn drop_isolated_removes_edge_free_members() {
        let mut g = FriendGraph::with_nodes(3);
        g.add_edge(u(0), u(1));
        let ms: Vec<UserId> = (0..3).map(u).collect();
        let dot = induced_dot(&g, &ms, &HashMap::new(), true);
        assert!(!dot.contains("\"u2\""));
        assert!(dot.contains("\"u0\""));
    }

    #[test]
    fn edges_to_non_members_are_excluded() {
        let mut g = FriendGraph::with_nodes(3);
        g.add_edge(u(0), u(2));
        let ms = vec![u(0), u(1)];
        let dot = induced_dot(&g, &ms, &HashMap::new(), false);
        assert!(!dot.contains("--"), "no induced edge expected");
        assert!(!dot.contains("\"u2\""));
    }

    #[test]
    fn unknown_group_renders_gray() {
        let g = FriendGraph::with_nodes(1);
        let dot = induced_dot(&g, &[u(0)], &HashMap::new(), false);
        assert!(dot.contains("#999999"));
    }

    /// Regression for the nondeterministic-iteration audit: the export must
    /// not depend on `group_of`'s hash order or on member order. Build the
    /// same logical inputs with shuffled insertion orders (which perturbs
    /// `HashMap` iteration order within one process) and demand identical
    /// bytes.
    #[test]
    fn export_is_independent_of_map_and_member_order() {
        let mut g = FriendGraph::with_nodes(8);
        for (a, b) in [(0, 1), (1, 2), (3, 4), (5, 6), (0, 7)] {
            g.add_edge(u(a), u(b));
        }
        let names = ["BL", "SF", "AL", "MS"];
        let entries: Vec<(UserId, String)> = (0..8u32)
            .map(|i| (u(i), names[i as usize % 4].to_string()))
            .collect();
        let members: Vec<UserId> = (0..8).map(u).collect();

        let forward: HashMap<UserId, String> = entries.iter().cloned().collect();
        let backward: HashMap<UserId, String> = entries.iter().rev().cloned().collect();
        let mut rotated_members = members.clone();
        rotated_members.rotate_left(3);

        let reference = induced_dot(&g, &members, &forward, true);
        assert_eq!(reference, induced_dot(&g, &members, &backward, true));
        assert_eq!(reference, induced_dot(&g, &rotated_members, &forward, true));
        assert_eq!(
            reference,
            induced_dot(&g, &rotated_members, &backward, true)
        );
    }
}
