//! Random-graph generators.
//!
//! Each generator wires edges among a caller-supplied *member set* inside a
//! larger [`FriendGraph`] — farm account pools, country communities, and the
//! organic population are all subsets of one global graph, so generators
//! never assume they own the whole id space.
//!
//! The choice of models mirrors what the honeypot study observed:
//!
//! - **Watts–Strogatz / planted partitions** — the organic population:
//!   clustered, small-world, community-structured.
//! - **Barabási–Albert** — the stealth farm (BoostLikes): a dense, heavily
//!   connected hub structure with high mean degree (the paper measured
//!   1171 ± 1096 friends, median 850).
//! - **Pair/triplet archipelagos** — the bot-burst farms (SocialFormula):
//!   "pairs (and occasionally triplets) ... mitigating the risk that
//!   identification of a user as fake would bring down the whole network".

use crate::adjacency::FriendGraph;
use crate::ids::UserId;
use likelab_sim::Rng;

/// Erdős–Rényi G(n, m): exactly `m` distinct edges among `members`
/// (capped at the number of possible pairs).
pub fn erdos_renyi_gnm(g: &mut FriendGraph, members: &[UserId], m: usize, rng: &mut Rng) {
    let n = members.len();
    if n < 2 {
        return;
    }
    let max_edges = n * (n - 1) / 2;
    let target = m.min(max_edges);
    let mut added = 0;
    // Rejection sampling is fine while the graph stays sparse relative to
    // the complete graph; fall back to exhaustive shuffle when dense.
    if target * 3 < max_edges {
        while added < target {
            let a = members[rng.index(n)];
            let b = members[rng.index(n)];
            if a != b && g.add_edge(a, b) {
                added += 1;
            }
        }
    } else {
        let mut pairs = Vec::with_capacity(max_edges);
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.push((members[i], members[j]));
            }
        }
        rng.shuffle(&mut pairs);
        for (a, b) in pairs {
            if added == target {
                break;
            }
            if g.add_edge(a, b) {
                added += 1;
            }
        }
    }
}

/// Erdős–Rényi G(n, p): each pair independently with probability `p`.
/// Uses geometric skipping, so sparse graphs cost O(edges), not O(n²).
pub fn erdos_renyi_gnp(g: &mut FriendGraph, members: &[UserId], p: f64, rng: &mut Rng) {
    let n = members.len();
    if n < 2 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(members[i], members[j]);
            }
        }
        return;
    }
    // Enumerate pairs lexicographically, skipping ahead by Geometric(p).
    let total = (n as u64) * (n as u64 - 1) / 2;
    let log1p = (1.0 - p).ln();
    let mut pos: i64 = -1;
    loop {
        let skip = ((1.0 - rng.f64()).ln() / log1p).floor() as i64;
        pos += 1 + skip.max(0);
        if pos as u64 >= total {
            break;
        }
        let (i, j) = pair_from_index(pos as u64, n as u64);
        g.add_edge(members[i as usize], members[j as usize]);
    }
}

/// Map a lexicographic pair index to `(i, j)` with `i < j < n`.
fn pair_from_index(k: u64, n: u64) -> (u64, u64) {
    // Row i starts at offset i*n - i*(i+1)/2 - ... solve by scanning rows;
    // binary search keeps it O(log n).
    let row_start = |i: u64| i * (2 * n - i - 1) / 2;
    let (mut lo, mut hi) = (0u64, n - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if row_start(mid) <= k {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let i = lo;
    let j = i + 1 + (k - row_start(i));
    (i, j)
}

/// Barabási–Albert preferential attachment: each newcomer attaches to `m`
/// existing members chosen proportionally to degree. Produces the dense,
/// hub-heavy topology used for the stealth farm.
pub fn barabasi_albert(g: &mut FriendGraph, members: &[UserId], m: usize, rng: &mut Rng) {
    let n = members.len();
    if n < 2 {
        return;
    }
    let m = m.max(1).min(n - 1);
    // Seed: a small clique of the first m+1 members.
    let seed = (m + 1).min(n);
    for i in 0..seed {
        for j in (i + 1)..seed {
            g.add_edge(members[i], members[j]);
        }
    }
    // Repeated-endpoints trick: sampling uniformly from the endpoint list is
    // sampling proportionally to degree.
    let mut endpoints: Vec<usize> = Vec::new();
    for (i, member) in members.iter().enumerate().take(seed) {
        for _ in 0..g.degree(*member).max(1) {
            endpoints.push(i);
        }
    }
    for i in seed..n {
        let mut chosen = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let t = endpoints[rng.index(endpoints.len())];
            if t != i && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            if g.add_edge(members[i], members[t]) {
                endpoints.push(i);
                endpoints.push(t);
            }
        }
    }
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side, each edge rewired with probability `beta`. The organic population's
/// community backbone.
pub fn watts_strogatz(g: &mut FriendGraph, members: &[UserId], k: usize, beta: f64, rng: &mut Rng) {
    let n = members.len();
    if n < 3 || k == 0 {
        return;
    }
    let k = k.min((n - 1) / 2).max(1);
    for i in 0..n {
        for d in 1..=k {
            let j = (i + d) % n;
            let (a, b) = (members[i], members[j]);
            if rng.chance(beta) {
                // Rewire to a uniform non-self, non-duplicate target.
                let mut guard = 0;
                loop {
                    guard += 1;
                    let t = members[rng.index(n)];
                    if t != a && !g.has_edge(a, t) {
                        g.add_edge(a, t);
                        break;
                    }
                    if guard > 100 {
                        g.add_edge(a, b); // fall back to the lattice edge
                        break;
                    }
                }
            } else {
                g.add_edge(a, b);
            }
        }
    }
}

/// Planted-partition: dense inside each community (`p_in`), sparse across
/// (`p_out`). Communities here are country clusters of the organic world.
pub fn planted_partition(
    g: &mut FriendGraph,
    communities: &[Vec<UserId>],
    p_in: f64,
    p_out: f64,
    rng: &mut Rng,
) {
    for c in communities {
        erdos_renyi_gnp(g, c, p_in, rng);
    }
    if p_out <= 0.0 {
        return;
    }
    // Cross edges: expected p_out * |A| * |B| per community pair, sampled
    // directly to avoid the full bipartite scan.
    for i in 0..communities.len() {
        for j in (i + 1)..communities.len() {
            let (a, b) = (&communities[i], &communities[j]);
            if a.is_empty() || b.is_empty() {
                continue;
            }
            let expected = p_out * a.len() as f64 * b.len() as f64;
            let m = likelab_sim::dist::poisson(rng, expected);
            for _ in 0..m {
                let x = a[rng.index(a.len())];
                let y = b[rng.index(b.len())];
                g.add_edge(x, y);
            }
        }
    }
}

/// Chung–Lu style generator: wires edges so each member's expected degree
/// approaches its `target_degrees` entry (heavy-tailed targets produce the
/// large friend-count variance Table 3 reports — e.g. 315 ± 454).
///
/// Endpoints are sampled proportionally to target degree; self-loops and
/// duplicates are skipped, so realized degrees compress slightly at the top
/// of the tail. Edge count is `sum(targets) / 2`.
///
/// Returns the newly added edges in insertion order, so callers can journal
/// the wiring into a world log and replay it without re-running the model.
///
/// # Panics
/// Panics when `members` and `target_degrees` differ in length or a target
/// is negative/non-finite.
pub fn chung_lu(
    g: &mut FriendGraph,
    members: &[UserId],
    target_degrees: &[f64],
    rng: &mut Rng,
) -> Vec<(UserId, UserId)> {
    assert_eq!(
        members.len(),
        target_degrees.len(),
        "one target degree per member"
    );
    let n = members.len();
    if n < 2 {
        return Vec::new();
    }
    // Cumulative weights for O(log n) endpoint sampling.
    let mut cumulative = Vec::with_capacity(n);
    let mut total = 0.0;
    for (i, t) in target_degrees.iter().enumerate() {
        assert!(t.is_finite() && *t >= 0.0, "bad target degree at {i}: {t}");
        total += *t;
        cumulative.push(total);
    }
    if total <= 0.0 {
        return Vec::new();
    }
    let pick = |rng: &mut Rng, cumulative: &[f64]| -> usize {
        let target = rng.f64() * total;
        match cumulative.binary_search_by(|c| c.total_cmp(&target)) {
            Ok(i) => (i + 1).min(n - 1),
            Err(i) => i.min(n - 1),
        }
    };
    let m = (total / 2.0).round() as usize;
    let max_possible = n * (n - 1) / 2;
    let m = m.min(max_possible);
    let mut edges = Vec::with_capacity(m);
    let mut attempts = 0usize;
    let budget = m.saturating_mul(20).max(1000);
    while edges.len() < m && attempts < budget {
        attempts += 1;
        let a = pick(rng, &cumulative);
        let b = pick(rng, &cumulative);
        if a != b && g.add_edge(members[a], members[b]) {
            edges.push((members[a], members[b]));
        }
    }
    edges
}

/// Partition `members` into isolated pairs and triplets — the bot-burst
/// farm's compartmentalized topology. `triplet_fraction` of the groups are
/// triplets; `isolate_fraction` of members stay completely disconnected.
///
/// Returns the newly added edges in insertion order (see [`chung_lu`]).
pub fn pairs_and_triplets(
    g: &mut FriendGraph,
    members: &[UserId],
    triplet_fraction: f64,
    isolate_fraction: f64,
    rng: &mut Rng,
) -> Vec<(UserId, UserId)> {
    let mut pool: Vec<UserId> = members.to_vec();
    rng.shuffle(&mut pool);
    let keep_isolated = (pool.len() as f64 * isolate_fraction).round() as usize;
    let mut edges = Vec::new();
    let mut it = pool.into_iter().skip(keep_isolated).peekable();
    while let Some(a) = it.next() {
        let Some(b) = it.next() else { break };
        if g.add_edge(a, b) {
            edges.push((a, b));
        }
        if rng.chance(triplet_fraction) {
            if let Some(c) = it.next() {
                if g.add_edge(b, c) {
                    edges.push((b, c));
                }
                if g.add_edge(a, c) {
                    edges.push((a, c));
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::component_sizes;

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    fn members(n: u32) -> Vec<UserId> {
        (0..n).map(UserId).collect()
    }

    fn rng() -> Rng {
        Rng::seed_from_u64(0xFACE)
    }

    #[test]
    fn gnm_hits_exact_edge_count() {
        let ms = members(100);
        let mut g = FriendGraph::with_nodes(100);
        erdos_renyi_gnm(&mut g, &ms, 250, &mut rng());
        assert_eq!(g.edge_count(), 250);
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let ms = members(5);
        let mut g = FriendGraph::with_nodes(5);
        erdos_renyi_gnm(&mut g, &ms, 1_000, &mut rng());
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn gnm_respects_member_subset() {
        let ms: Vec<UserId> = (10..20).map(UserId).collect();
        let mut g = FriendGraph::with_nodes(100);
        erdos_renyi_gnm(&mut g, &ms, 20, &mut rng());
        for (a, b) in g.edges() {
            assert!((10..20).contains(&a.0) && (10..20).contains(&b.0));
        }
    }

    #[test]
    fn gnp_edge_count_matches_expectation() {
        let ms = members(400);
        let mut g = FriendGraph::with_nodes(400);
        erdos_renyi_gnp(&mut g, &ms, 0.05, &mut rng());
        let expected = 0.05 * (400.0 * 399.0 / 2.0);
        let got = g.edge_count() as f64;
        assert!(
            (got / expected - 1.0).abs() < 0.1,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn gnp_p_one_is_complete() {
        let ms = members(8);
        let mut g = FriendGraph::with_nodes(8);
        erdos_renyi_gnp(&mut g, &ms, 1.0, &mut rng());
        assert_eq!(g.edge_count(), 28);
    }

    #[test]
    fn gnp_p_zero_is_empty() {
        let ms = members(8);
        let mut g = FriendGraph::with_nodes(8);
        erdos_renyi_gnp(&mut g, &ms, 0.0, &mut rng());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn pair_from_index_enumerates_lexicographically() {
        let n = 5u64;
        let mut seen = Vec::new();
        for k in 0..10 {
            seen.push(pair_from_index(k, n));
        }
        assert_eq!(
            seen,
            vec![
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4)
            ]
        );
    }

    #[test]
    fn barabasi_albert_is_connected_and_hubby() {
        let ms = members(500);
        let mut g = FriendGraph::with_nodes(500);
        barabasi_albert(&mut g, &ms, 4, &mut rng());
        let sizes = component_sizes(&g, &ms);
        assert_eq!(sizes[0], 500, "BA graph must be one component");
        let max_deg = ms.iter().map(|u| g.degree(*u)).max().unwrap();
        let mean_deg = 2.0 * g.edge_count() as f64 / 500.0;
        assert!(
            max_deg as f64 > mean_deg * 4.0,
            "hubs expected: max {max_deg} vs mean {mean_deg}"
        );
    }

    #[test]
    fn watts_strogatz_degree_is_near_2k() {
        let ms = members(300);
        let mut g = FriendGraph::with_nodes(300);
        watts_strogatz(&mut g, &ms, 5, 0.1, &mut rng());
        let mean_deg = 2.0 * g.edge_count() as f64 / 300.0;
        assert!(
            (mean_deg - 10.0).abs() < 1.0,
            "mean degree {mean_deg} should be ~2k"
        );
    }

    #[test]
    fn watts_strogatz_beta_zero_is_lattice() {
        let ms = members(20);
        let mut g = FriendGraph::with_nodes(20);
        watts_strogatz(&mut g, &ms, 2, 0.0, &mut rng());
        assert_eq!(g.edge_count(), 40);
        assert!(g.has_edge(UserId(0), UserId(1)));
        assert!(g.has_edge(UserId(0), UserId(2)));
        assert!(!g.has_edge(UserId(0), UserId(3)));
    }

    #[test]
    fn planted_partition_is_denser_inside() {
        let comms: Vec<Vec<UserId>> = vec![
            (0..100).map(UserId).collect(),
            (100..200).map(UserId).collect(),
        ];
        let mut g = FriendGraph::with_nodes(200);
        planted_partition(&mut g, &comms, 0.2, 0.002, &mut rng());
        let mut inside = 0;
        let mut across = 0;
        for (a, b) in g.edges() {
            if (a.0 < 100) == (b.0 < 100) {
                inside += 1;
            } else {
                across += 1;
            }
        }
        assert!(inside > across * 10, "inside {inside} vs across {across}");
        assert!(across > 0, "some cross-community edges expected");
    }

    #[test]
    fn pairs_and_triplets_components_are_tiny() {
        let ms = members(200);
        let mut g = FriendGraph::with_nodes(200);
        pairs_and_triplets(&mut g, &ms, 0.3, 0.1, &mut rng());
        let sizes = component_sizes(&g, &ms);
        assert!(
            sizes.iter().all(|s| *s <= 3),
            "no component may exceed a triplet: {sizes:?}"
        );
        let isolated = sizes.iter().filter(|s| **s == 1).count();
        assert!(isolated >= 20, "isolates expected, got {isolated}");
        let triplets = sizes.iter().filter(|s| **s == 3).count();
        assert!(triplets > 0, "some triplets expected");
    }

    #[test]
    fn chung_lu_tracks_target_degrees() {
        let ms = members(1_000);
        let targets: Vec<f64> = (0..1_000)
            .map(|i| if i < 10 { 100.0 } else { 10.0 })
            .collect();
        let mut g = FriendGraph::with_nodes(1_000);
        chung_lu(&mut g, &ms, &targets, &mut rng());
        let hub_mean: f64 = (0..10).map(|i| g.degree(u(i)) as f64).sum::<f64>() / 10.0;
        let leaf_mean: f64 = (10..1_000).map(|i| g.degree(u(i)) as f64).sum::<f64>() / 990.0;
        assert!(
            (hub_mean / leaf_mean - 10.0).abs() < 3.0,
            "hub {hub_mean} vs leaf {leaf_mean} should be ~10x"
        );
        let expected_edges = targets.iter().sum::<f64>() / 2.0;
        assert!(
            (g.edge_count() as f64 / expected_edges - 1.0).abs() < 0.05,
            "edge count {} vs {expected_edges}",
            g.edge_count()
        );
    }

    #[test]
    fn chung_lu_zero_targets_do_nothing() {
        let ms = members(10);
        let mut g = FriendGraph::with_nodes(10);
        chung_lu(&mut g, &ms, &[0.0; 10], &mut rng());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "one target degree per member")]
    fn chung_lu_length_mismatch_panics() {
        let ms = members(3);
        let mut g = FriendGraph::with_nodes(3);
        chung_lu(&mut g, &ms, &[1.0], &mut rng());
    }

    #[test]
    fn generators_tolerate_tiny_member_sets() {
        let mut g = FriendGraph::with_nodes(2);
        let ms = members(1);
        erdos_renyi_gnm(&mut g, &ms, 5, &mut rng());
        erdos_renyi_gnp(&mut g, &ms, 0.5, &mut rng());
        barabasi_albert(&mut g, &ms, 3, &mut rng());
        watts_strogatz(&mut g, &ms, 2, 0.5, &mut rng());
        pairs_and_triplets(&mut g, &ms, 0.5, 0.0, &mut rng());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn generators_are_deterministic() {
        let ms = members(150);
        let build = || {
            let mut g = FriendGraph::with_nodes(150);
            let mut r = Rng::seed_from_u64(99);
            barabasi_albert(&mut g, &ms, 3, &mut r);
            g.edges().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
