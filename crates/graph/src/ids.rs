//! Typed identifiers for graph entities.
//!
//! Users and pages are dense `u32` indices into arena-style stores. Newtypes
//! keep them from being mixed up — a `UserId` can never index a page table.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a user account (dense index into the account store).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// Identifier of a page (dense index into the page store).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u32);

impl UserId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl PageId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Debug for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_prefixed() {
        assert_eq!(UserId(7).to_string(), "u7");
        assert_eq!(PageId(3).to_string(), "p3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(UserId(1) < UserId(2));
        assert!(PageId(0) < PageId(10));
    }

    #[test]
    fn idx_round_trips() {
        assert_eq!(UserId(42).idx(), 42);
        assert_eq!(PageId(42).idx(), 42);
    }
}
