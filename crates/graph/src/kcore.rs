//! k-core decomposition and degree assortativity.
//!
//! Two classic structural lenses on sybil regions: a farm pool wired as a
//! dense network sits in a high k-core (every member keeps many in-pool
//! edges), while pair/triplet archipelagos peel off at k = 2. Assortativity
//! (the degree correlation across edges) separates hub-and-spoke wiring
//! from homogeneous cliques.

use crate::adjacency::FriendGraph;
use crate::ids::UserId;
use std::collections::HashMap;

/// The core number of every node (index = user id).
///
/// Standard peeling algorithm (Batagelj–Zaveršnik), O(V + E).
pub fn core_numbers(graph: &FriendGraph) -> Vec<u32> {
    let n = graph.node_count();
    let mut degree: Vec<usize> = (0..n).map(|i| graph.degree(UserId(i as u32))).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort nodes by degree.
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); max_degree + 1];
    for (i, d) in degree.iter().enumerate() {
        bins[*d].push(i as u32);
    }
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut current_core = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bin at or below the frontier.
        let mut d = 0;
        loop {
            while d <= max_degree && bins[d].is_empty() {
                d += 1;
            }
            if d > max_degree {
                return core; // everything peeled
            }
            // Entries can be stale (degree changed since binning).
            let candidate = *bins[d].last().expect("non-empty bin");
            if removed[candidate as usize] || degree[candidate as usize] != d {
                bins[d].pop();
                continue;
            }
            break;
        }
        let v = bins[d].pop().expect("checked non-empty");
        current_core = current_core.max(d);
        core[v as usize] = current_core as u32;
        removed[v as usize] = true;
        for u in graph.neighbors(UserId(v)) {
            let ui = u.idx();
            if !removed[ui] && degree[ui] > 0 {
                degree[ui] -= 1;
                bins[degree[ui]].push(u.0);
            }
        }
    }
    core
}

/// The maximum core number present in a member subset.
pub fn max_core_in(core: &[u32], members: &[UserId]) -> u32 {
    members
        .iter()
        .map(|u| core.get(u.idx()).copied().unwrap_or(0))
        .max()
        .unwrap_or(0)
}

/// Histogram of core numbers over a member subset: `hist[k]` = members with
/// core number k.
pub fn core_histogram(core: &[u32], members: &[UserId]) -> HashMap<u32, usize> {
    let mut h = HashMap::new();
    for u in members {
        *h.entry(core.get(u.idx()).copied().unwrap_or(0))
            .or_insert(0) += 1;
    }
    h
}

/// Degree assortativity (Pearson correlation of endpoint degrees across
/// edges). +1: hubs connect to hubs; −1: hubs connect to leaves; NaN when
/// the graph has no edges or no degree variance.
pub fn degree_assortativity(graph: &FriendGraph) -> f64 {
    let mut n = 0.0f64;
    let (mut sx, mut sy, mut sxy, mut sx2, mut sy2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (a, b) in graph.edges() {
        let (da, db) = (graph.degree(a) as f64, graph.degree(b) as f64);
        // Count both orientations so the statistic is symmetric.
        for (x, y) in [(da, db), (db, da)] {
            n += 1.0;
            sx += x;
            sy += y;
            sxy += x * y;
            sx2 += x * x;
            sy2 += y * y;
        }
    }
    if n == 0.0 {
        return f64::NAN;
    }
    let cov = sxy / n - (sx / n) * (sy / n);
    let vx = sx2 / n - (sx / n).powi(2);
    let vy = sy2 / n - (sy / n).powi(2);
    if vx <= 0.0 || vy <= 0.0 {
        return f64::NAN;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    fn clique(n: u32) -> FriendGraph {
        let mut g = FriendGraph::with_nodes(n as usize);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(u(i), u(j));
            }
        }
        g
    }

    #[test]
    fn clique_core_is_n_minus_1() {
        let g = clique(6);
        let core = core_numbers(&g);
        assert!(core.iter().all(|c| *c == 5), "{core:?}");
    }

    #[test]
    fn chain_core_is_1() {
        let mut g = FriendGraph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(u(i), u(i + 1));
        }
        let core = core_numbers(&g);
        assert!(core.iter().all(|c| *c == 1), "{core:?}");
    }

    #[test]
    fn clique_with_pendant_vertices() {
        // 4-clique (core 3) with a pendant hanging off node 0 (core 1) and
        // an isolated node (core 0).
        let mut g = FriendGraph::with_nodes(6);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(u(i), u(j));
            }
        }
        g.add_edge(u(0), u(4));
        let core = core_numbers(&g);
        assert_eq!(&core[0..4], &[3, 3, 3, 3]);
        assert_eq!(core[4], 1);
        assert_eq!(core[5], 0);
        assert_eq!(max_core_in(&core, &[u(4), u(5)]), 1);
        let hist = core_histogram(&core, &(0..6).map(u).collect::<Vec<_>>());
        assert_eq!(hist[&3], 4);
        assert_eq!(hist[&1], 1);
        assert_eq!(hist[&0], 1);
    }

    #[test]
    fn pairs_peel_at_one_dense_pools_do_not() {
        // Farm contrast: 20 pairs vs a 10-clique.
        let mut g = FriendGraph::with_nodes(50);
        for i in 0..20 {
            g.add_edge(u(2 * i), u(2 * i + 1));
        }
        for i in 40..50 {
            for j in (i + 1)..50 {
                g.add_edge(u(i), u(j));
            }
        }
        let core = core_numbers(&g);
        let pairs: Vec<UserId> = (0..40).map(u).collect();
        let pool: Vec<UserId> = (40..50).map(u).collect();
        assert_eq!(max_core_in(&core, &pairs), 1);
        assert_eq!(max_core_in(&core, &pool), 9);
    }

    #[test]
    fn star_is_disassortative_lattice_is_not() {
        let mut star = FriendGraph::with_nodes(10);
        for i in 1..10 {
            star.add_edge(u(0), u(i));
        }
        let a = degree_assortativity(&star);
        assert!(a < -0.99, "perfect hub-leaf: {a}");

        // A ring: every node degree 2 → no variance → NaN.
        let mut ring = FriendGraph::with_nodes(6);
        for i in 0..6 {
            ring.add_edge(u(i), u((i + 1) % 6));
        }
        assert!(degree_assortativity(&ring).is_nan());
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = FriendGraph::with_nodes(0);
        assert!(core_numbers(&g).is_empty());
        assert!(degree_assortativity(&g).is_nan());
        let g2 = FriendGraph::with_nodes(3);
        assert_eq!(core_numbers(&g2), vec![0, 0, 0]);
    }
}
