//! # likelab-graph — social-graph substrate
//!
//! Storage and algorithms for the two graphs the study lives on:
//!
//! - the undirected **friendship graph** ([`FriendGraph`]) — Facebook
//!   friendships are bidirectional, unlike Twitter's follower edges;
//! - the bipartite **like graph** ([`LikeGraph`]) between users and pages.
//!
//! On top of the stores: random-graph generators for the organic population
//! and the farm topologies ([`generate`]), connected components and the
//! pair/triplet census of Figure 3 ([`mod@components`]), direct and 2-hop
//! relation counting for Table 3 ([`twohop`]), structural metrics
//! ([`metrics`]), k-core decomposition and assortativity ([`kcore`]), and
//! DOT export ([`dot`]).

pub mod adjacency;
pub mod bipartite;
pub mod components;
pub mod dot;
pub mod generate;
pub mod ids;
pub mod kcore;
pub mod metrics;
pub mod renumber;
pub mod twohop;

pub use adjacency::{FriendGraph, Neighbors};
pub use bipartite::LikeGraph;
pub use components::{components, ComponentCensus, UnionFind};
pub use ids::{PageId, UserId};
pub use metrics::SummaryStats;
pub use renumber::{RenumberedCsr, Renumbering};
