//! Structural metrics over the friendship graph.
//!
//! The analyses need degree statistics (Table 3's friends-per-liker columns),
//! density and clustering (to characterize the BoostLikes blob vs. the
//! SocialFormula archipelago), and degree histograms for the ablation
//! benches.

use crate::adjacency::FriendGraph;
use crate::ids::UserId;
use serde::{Deserialize, Serialize};

/// Mean, standard deviation (population), and median of a sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median (lower of the two middles for even-sized samples — matching
    /// the integer medians the paper reports).
    pub median: f64,
    /// Sample size.
    pub n: usize,
}

impl SummaryStats {
    /// Compute over `values`. Returns a zeroed summary on empty input.
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return SummaryStats {
                mean: 0.0,
                std_dev: 0.0,
                median: 0.0,
                n: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            sorted[n / 2 - 1]
        };
        SummaryStats {
            mean,
            std_dev: var.sqrt(),
            median,
            n,
        }
    }
}

/// Degree statistics over a member subset.
pub fn degree_stats(graph: &FriendGraph, members: &[UserId]) -> SummaryStats {
    let degrees: Vec<f64> = members.iter().map(|u| graph.degree(*u) as f64).collect();
    SummaryStats::of(&degrees)
}

/// Histogram of degrees over a member subset: `hist[d]` is the number of
/// members with degree `d`.
pub fn degree_histogram(graph: &FriendGraph, members: &[UserId]) -> Vec<usize> {
    let max_d = members.iter().map(|u| graph.degree(*u)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_d + 1];
    for u in members {
        hist[graph.degree(*u)] += 1;
    }
    hist
}

/// Edge density of the whole graph: edges / C(n, 2).
pub fn density(graph: &FriendGraph) -> f64 {
    let n = graph.node_count();
    if n < 2 {
        return 0.0;
    }
    graph.edge_count() as f64 / (n as f64 * (n as f64 - 1.0) / 2.0)
}

/// Global clustering coefficient: 3 × triangles / open-plus-closed triads.
/// Zero when the graph has no wedge at all.
pub fn global_clustering(graph: &FriendGraph) -> f64 {
    let mut triangles = 0u64;
    let mut wedges = 0u64;
    for u in graph.nodes() {
        let d = graph.degree(u) as u64;
        wedges += d * d.saturating_sub(1) / 2;
        // Count triangles where u is the smallest vertex to avoid recount.
        let ns = graph.neighbors(u);
        for (i, &a) in ns.iter().enumerate() {
            if a < u {
                continue;
            }
            for &b in &ns[i + 1..] {
                if graph.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

/// Local clustering coefficient of one node.
pub fn local_clustering(graph: &FriendGraph, u: UserId) -> f64 {
    let ns = graph.neighbors(u);
    let d = ns.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0;
    for (i, &a) in ns.iter().enumerate() {
        for &b in &ns[i + 1..] {
            if graph.has_edge(a, b) {
                links += 1;
            }
        }
    }
    links as f64 / (d * (d - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    fn triangle_plus_tail() -> FriendGraph {
        // Triangle 0-1-2 plus tail 2-3.
        let mut g = FriendGraph::with_nodes(4);
        g.add_edge(u(0), u(1));
        g.add_edge(u(1), u(2));
        g.add_edge(u(0), u(2));
        g.add_edge(u(2), u(3));
        g
    }

    #[test]
    fn summary_stats_basic() {
        let s = SummaryStats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.0).abs() < 1e-12, "lower middle for even n");
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 4);
    }

    #[test]
    fn summary_stats_odd_median() {
        let s = SummaryStats::of(&[5.0, 1.0, 3.0]);
        assert!((s.median - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_stats_empty_is_zeroed() {
        let s = SummaryStats::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn degree_stats_over_subset() {
        let g = triangle_plus_tail();
        let s = degree_stats(&g, &[u(2), u(3)]);
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12); // deg(2)=3, deg(3)=1
        assert!((s.median - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_shape() {
        let g = triangle_plus_tail();
        let ms: Vec<UserId> = (0..4).map(u).collect();
        assert_eq!(degree_histogram(&g, &ms), vec![0, 1, 2, 1]);
        assert_eq!(degree_histogram(&g, &[]), vec![0]);
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let mut g = FriendGraph::with_nodes(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(u(i), u(j));
            }
        }
        assert!((density(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_edge_cases() {
        assert_eq!(density(&FriendGraph::with_nodes(0)), 0.0);
        assert_eq!(density(&FriendGraph::with_nodes(1)), 0.0);
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let mut g = FriendGraph::with_nodes(3);
        g.add_edge(u(0), u(1));
        g.add_edge(u(1), u(2));
        g.add_edge(u(0), u(2));
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
        assert!((local_clustering(&g, u(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let mut g = FriendGraph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(u(0), u(i));
        }
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(local_clustering(&g, u(0)), 0.0);
        assert_eq!(local_clustering(&g, u(1)), 0.0, "degree-1 node");
    }

    #[test]
    fn clustering_mixed_graph() {
        let g = triangle_plus_tail();
        // Triangles: 1. Wedges: deg(0)=2→1, deg(1)=2→1, deg(2)=3→3, deg(3)=1→0. Total 5.
        assert!((global_clustering(&g) - 3.0 / 5.0).abs() < 1e-12);
        // Node 2's neighbors {0,1,3}: one link (0-1) of three possible.
        assert!((local_clustering(&g, u(2)) - 1.0 / 3.0).abs() < 1e-12);
    }
}
