//! Degree-ordered vertex renumbering and the cache-conscious CSR view.
//!
//! Power-iteration style algorithms walk every adjacency row each round;
//! with vertex ids assigned in creation order, the hottest rows (hubs) are
//! scattered across the whole id range and every round walks the full
//! working set in random order. Renumbering vertices by **descending
//! degree** packs the hubs — which own most of the edge endpoints — into
//! the front of every array, so the accumulator slots they hit stay
//! resident in cache.
//!
//! A [`Renumbering`] is an explicit old↔new permutation; a
//! [`RenumberedCsr`] is a flat adjacency snapshot in new-id space. The
//! contract consumers rely on (and `tests/renumber_invariance.rs` pins):
//! renumbering is **observationally invisible** — every algorithm maps ids
//! in, computes in new space, and maps ids back out, with external outputs
//! byte-identical to a run on the original labeling.
//!
//! One detail makes float byte-identity possible: each CSR row stores new
//! ids but keeps its entries ordered by ascending **old** id (the order
//! [`FriendGraph::neighbors`] yields). A pull-style accumulation over a row
//! therefore adds contributions in exactly the sequence the old-id push
//! loop did, and IEEE addition performed in the same order gives the same
//! bits. See `sybil_rank` in `likelab-detect`.
//!
//! The mapping layout is versioned alongside the event-log schema (see
//! DESIGN.md): [`MAP_FORMAT_VERSION`] guards any serialized form.

use crate::adjacency::FriendGraph;
use crate::ids::UserId;
use serde::{Deserialize, Serialize};

/// Version of the renumbering-map layout (bump on any change to how a
/// mapping is represented or serialized).
pub const MAP_FORMAT_VERSION: u32 = 1;

/// A bijection between old (creation-order) and new (layout-order) ids.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Renumbering {
    /// `new_of_old[old] = new`.
    new_of_old: Vec<u32>,
    /// `old_of_new[new] = old`.
    old_of_new: Vec<u32>,
}

impl Renumbering {
    /// The identity mapping over `n` vertices.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<u32> = (0..n as u32).collect();
        Renumbering {
            new_of_old: ids.clone(),
            old_of_new: ids,
        }
    }

    /// Degree-descending order: new id 0 is the highest-degree vertex, ties
    /// broken by ascending old id (fully deterministic).
    pub fn degree_descending(graph: &FriendGraph) -> Self {
        let n = graph.node_count();
        let mut old_of_new: Vec<u32> = (0..n as u32).collect();
        old_of_new.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(UserId(v))), v));
        Self::from_old_of_new(old_of_new)
    }

    /// Build from an explicit new→old table.
    ///
    /// # Panics
    /// Panics when the table is not a permutation of `0..len`.
    pub fn from_old_of_new(old_of_new: Vec<u32>) -> Self {
        let n = old_of_new.len();
        let mut new_of_old = vec![u32::MAX; n];
        for (new, &old) in old_of_new.iter().enumerate() {
            let slot = new_of_old
                .get_mut(old as usize)
                // lint:allow(unwrap-in-library, panic-reachable-from-serve): documented panic — the table must be a permutation
                .expect("renumbering entry out of range");
            assert!(*slot == u32::MAX, "duplicate old id {old} in renumbering");
            *slot = new as u32;
        }
        Renumbering {
            new_of_old,
            old_of_new,
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// True when the mapping covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// The new id of an old id.
    pub fn new_of(&self, old: UserId) -> UserId {
        // lint:allow(panic-reachable-from-serve): callers renumber ids drawn from the same graph
        UserId(self.new_of_old[old.idx()])
    }

    /// The old id of a new id.
    pub fn old_of(&self, new: UserId) -> UserId {
        // lint:allow(panic-reachable-from-serve): callers renumber ids drawn from the same graph
        UserId(self.old_of_new[new.idx()])
    }

    /// The inverse mapping (swaps the two directions).
    pub fn inverse(&self) -> Renumbering {
        Renumbering {
            new_of_old: self.old_of_new.clone(),
            old_of_new: self.new_of_old.clone(),
        }
    }

    /// True when this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.new_of_old
            .iter()
            .enumerate()
            .all(|(i, &v)| v == i as u32)
    }

    /// Relabel a graph: vertex `old` becomes `new_of(old)`. Edge structure
    /// is preserved exactly; used by the invariance tests to run whole
    /// algorithms in permuted space.
    pub fn apply(&self, graph: &FriendGraph) -> FriendGraph {
        let mut out = FriendGraph::with_nodes(graph.node_count());
        for (a, b) in graph.edges() {
            out.add_edge(self.new_of(a), self.new_of(b));
        }
        out.compact();
        out
    }
}

/// A flat CSR adjacency snapshot in new-id space.
///
/// Row `v` (a new id) lists the neighbors of `old_of(v)` as new ids, in
/// ascending **old**-id order — the property that keeps float accumulation
/// sequences identical to the unrenumbered graph (module docs).
#[derive(Clone, Debug)]
pub struct RenumberedCsr {
    offsets: Vec<u64>,
    targets: Vec<u32>,
    map: Renumbering,
}

impl RenumberedCsr {
    /// Snapshot `graph` under `map`.
    pub fn build(graph: &FriendGraph, map: Renumbering) -> Self {
        let n = graph.node_count();
        assert_eq!(map.len(), n, "mapping must cover every vertex");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0u64);
        for new in 0..n as u32 {
            let old = map.old_of(UserId(new));
            // `neighbors` yields ascending old ids; keep that order.
            for w in graph.neighbors(old).iter() {
                targets.push(map.new_of(*w).0);
            }
            offsets.push(targets.len() as u64);
        }
        RenumberedCsr {
            offsets,
            targets,
            map,
        }
    }

    /// Snapshot in degree-descending order (the cache-conscious default).
    pub fn degree_ordered(graph: &FriendGraph) -> Self {
        Self::build(graph, Renumbering::degree_descending(graph))
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Degree of a new-id vertex.
    pub fn degree(&self, new: usize) -> usize {
        (self.offsets[new + 1] - self.offsets[new]) as usize
    }

    /// Neighbor row of a new-id vertex (new ids, ascending-old-id order).
    pub fn row(&self, new: usize) -> &[u32] {
        // lint:allow(panic-reachable-from-serve): offsets has n+1 monotone entries bounded by targets.len()
        &self.targets[self.offsets[new] as usize..self.offsets[new + 1] as usize]
    }

    /// The old↔new mapping this snapshot was built under.
    pub fn map(&self) -> &Renumbering {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    fn star_plus_pair() -> FriendGraph {
        // Hub 3 with leaves 0,1,4; pair 2-5; node 6 isolated.
        let mut g = FriendGraph::with_nodes(7);
        for leaf in [0, 1, 4] {
            g.add_edge(u(3), u(leaf));
        }
        g.add_edge(u(2), u(5));
        g
    }

    #[test]
    fn degree_descending_orders_hubs_first() {
        let g = star_plus_pair();
        let r = Renumbering::degree_descending(&g);
        assert_eq!(r.old_of(u(0)), u(3), "hub gets new id 0");
        // Degree-1 nodes follow in old-id order: 0, 1, 2, 4, 5; then 6.
        assert_eq!(r.old_of(u(1)), u(0));
        assert_eq!(r.old_of(u(5)), u(5));
        assert_eq!(r.old_of(u(6)), u(6));
    }

    #[test]
    fn roundtrip_is_identity() {
        let g = star_plus_pair();
        let r = Renumbering::degree_descending(&g);
        for i in 0..7 {
            assert_eq!(r.old_of(r.new_of(u(i))), u(i));
            assert_eq!(r.new_of(r.old_of(u(i))), u(i));
        }
        assert!(!r.is_identity());
        assert!(Renumbering::identity(7).is_identity());
        let inv = r.inverse();
        for i in 0..7 {
            assert_eq!(inv.new_of(r.new_of(u(i))), u(i));
        }
    }

    #[test]
    fn csr_rows_match_neighbors_under_mapping() {
        let g = star_plus_pair();
        let csr = RenumberedCsr::degree_ordered(&g);
        assert_eq!(csr.node_count(), 7);
        for new in 0..7usize {
            let old = csr.map().old_of(u(new as u32));
            let expect: Vec<u32> = g
                .neighbors(old)
                .iter()
                .map(|w| csr.map().new_of(*w).0)
                .collect();
            assert_eq!(csr.row(new), expect.as_slice(), "row {new}");
            assert_eq!(csr.degree(new), g.degree(old));
        }
    }

    #[test]
    fn apply_preserves_structure() {
        let g = star_plus_pair();
        let r = Renumbering::degree_descending(&g);
        let relabeled = r.apply(&g);
        assert_eq!(relabeled.edge_count(), g.edge_count());
        for (a, b) in g.edges() {
            assert!(relabeled.has_edge(r.new_of(a), r.new_of(b)));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate old id")]
    fn rejects_non_permutation() {
        Renumbering::from_old_of_new(vec![0, 0, 1]);
    }

    #[test]
    fn identity_on_empty() {
        let r = Renumbering::identity(0);
        assert!(r.is_empty());
        assert!(r.is_identity());
    }
}
