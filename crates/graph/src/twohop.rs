//! Direct and 2-hop relations inside a node subset.
//!
//! Table 3 of the paper counts, per provider, (a) friendship edges between
//! likers and (b) "2-hop friendship relations" — pairs of likers who share a
//! mutual friend (the mutual friend need not be a liker). Figure 3(b) draws
//! the union of both. These queries run over the *global* graph restricted
//! to a member set, so mutual friends outside the set still count.

use crate::adjacency::FriendGraph;
use crate::ids::UserId;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Number of friendship edges whose endpoints are both in `members`.
pub fn direct_edges_within(graph: &FriendGraph, members: &[UserId]) -> usize {
    let set: HashSet<UserId> = members.iter().copied().collect();
    let mut count = 0;
    for &u in members {
        for v in graph.neighbors(u) {
            if u < v && set.contains(&v) {
                count += 1;
            }
        }
    }
    count
}

/// The pairs `(a, b)` (with `a < b`, both in `members`) that share at least
/// one mutual friend anywhere in the graph. When `exclude_direct` is set,
/// pairs that are already direct friends are omitted — that matches the
/// paper's separate accounting of direct vs. 2-hop relations.
pub fn two_hop_pairs(
    graph: &FriendGraph,
    members: &[UserId],
    exclude_direct: bool,
) -> Vec<(UserId, UserId)> {
    let set: HashSet<UserId> = members.iter().copied().collect();
    // Invert: for every middle node, which members neighbor it. Each middle
    // node then contributes all pairs of its member-neighbors. BTree
    // containers keep the whole computation order-deterministic without a
    // final sort.
    let mut via: BTreeMap<UserId, Vec<UserId>> = BTreeMap::new();
    for &m in members {
        for mid in graph.neighbors(m) {
            via.entry(mid).or_default().push(m);
        }
    }
    let mut pairs: BTreeSet<(UserId, UserId)> = BTreeSet::new();
    for (mid, ms) in via {
        if ms.len() < 2 {
            continue;
        }
        // `mid` may itself be a member; it still works as a mutual friend for
        // its neighbors, which is consistent with path-of-length-2 semantics.
        let _ = mid;
        for i in 0..ms.len() {
            for j in (i + 1)..ms.len() {
                let (a, b) = if ms[i] < ms[j] {
                    (ms[i], ms[j])
                } else if ms[j] < ms[i] {
                    (ms[j], ms[i])
                } else {
                    continue; // same member reached twice
                };
                pairs.insert((a, b));
            }
        }
    }
    // BTreeSet iterates in ascending order and `filter` preserves it, so the
    // result is already sorted.
    pairs
        .into_iter()
        .filter(|(a, b)| {
            debug_assert!(set.contains(a) && set.contains(b));
            !(exclude_direct && graph.has_edge(*a, *b))
        })
        .collect()
}

/// Count of [`two_hop_pairs`].
pub fn two_hop_count(graph: &FriendGraph, members: &[UserId], exclude_direct: bool) -> usize {
    two_hop_pairs(graph, members, exclude_direct).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId(i)
    }

    #[test]
    fn direct_edges_counts_induced_only() {
        let mut g = FriendGraph::with_nodes(5);
        g.add_edge(u(0), u(1));
        g.add_edge(u(1), u(2));
        g.add_edge(u(3), u(4));
        let ms = vec![u(0), u(1), u(3)];
        // Only 0-1 lies fully inside the member set.
        assert_eq!(direct_edges_within(&g, &ms), 1);
    }

    #[test]
    fn two_hop_via_outside_mutual_friend() {
        // 0 - 9 - 1: members {0, 1} share mutual friend 9 (not a member).
        let mut g = FriendGraph::with_nodes(10);
        g.add_edge(u(0), u(9));
        g.add_edge(u(1), u(9));
        let ms = vec![u(0), u(1)];
        assert_eq!(two_hop_pairs(&g, &ms, true), vec![(u(0), u(1))]);
        assert_eq!(direct_edges_within(&g, &ms), 0);
    }

    #[test]
    fn exclude_direct_removes_adjacent_pairs() {
        // 0 and 1 are direct friends AND share mutual friend 2.
        let mut g = FriendGraph::with_nodes(3);
        g.add_edge(u(0), u(1));
        g.add_edge(u(0), u(2));
        g.add_edge(u(1), u(2));
        let ms = vec![u(0), u(1)];
        assert_eq!(two_hop_count(&g, &ms, true), 0);
        assert_eq!(two_hop_count(&g, &ms, false), 1);
    }

    #[test]
    fn member_middle_node_counts_as_mutual_friend() {
        // Chain 0 - 1 - 2, all members: 0 and 2 are 2-hop via member 1.
        let mut g = FriendGraph::with_nodes(3);
        g.add_edge(u(0), u(1));
        g.add_edge(u(1), u(2));
        let ms = vec![u(0), u(1), u(2)];
        assert_eq!(two_hop_pairs(&g, &ms, true), vec![(u(0), u(2))]);
    }

    #[test]
    fn star_produces_all_leaf_pairs() {
        // Hub 0 with leaves 1..=4; members are the leaves.
        let mut g = FriendGraph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(u(0), u(i));
        }
        let ms: Vec<UserId> = (1..5).map(u).collect();
        assert_eq!(two_hop_count(&g, &ms, true), 6); // C(4,2)
    }

    #[test]
    fn multiple_mutual_friends_count_once() {
        // 0 and 1 share mutual friends 2 AND 3 — still one pair.
        let mut g = FriendGraph::with_nodes(4);
        g.add_edge(u(0), u(2));
        g.add_edge(u(1), u(2));
        g.add_edge(u(0), u(3));
        g.add_edge(u(1), u(3));
        let ms = vec![u(0), u(1)];
        assert_eq!(two_hop_count(&g, &ms, true), 1);
    }

    #[test]
    fn empty_members_and_no_edges() {
        let g = FriendGraph::with_nodes(3);
        assert_eq!(direct_edges_within(&g, &[]), 0);
        assert_eq!(two_hop_count(&g, &[u(0), u(1)], true), 0);
    }
}
