//! Property-based tests of the graph substrate's invariants.

use likelab_graph::components::{component_sizes, components, ComponentCensus};
use likelab_graph::metrics::SummaryStats;
use likelab_graph::twohop::{direct_edges_within, two_hop_pairs};
use likelab_graph::{FriendGraph, LikeGraph, PageId, UserId};
use proptest::prelude::*;
use std::collections::HashSet;

/// Arbitrary edge list over `n` nodes.
fn edges(n: u32, max_edges: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    let pairs = prop::collection::vec((0..n, 0..n), 0..max_edges);
    pairs.prop_map(move |es| (n, es))
}

fn build(n: u32, es: &[(u32, u32)]) -> FriendGraph {
    let mut g = FriendGraph::with_nodes(n as usize);
    for (a, b) in es {
        if a != b {
            g.add_edge(UserId(*a), UserId(*b));
        }
    }
    g
}

proptest! {
    /// The friendship graph is symmetric, loop-free, and dedup'd; the edge
    /// count equals the number of distinct unordered pairs inserted.
    #[test]
    fn friendship_graph_is_simple_and_symmetric((n, es) in edges(30, 120)) {
        let g = build(n, &es);
        let distinct: HashSet<(u32, u32)> = es
            .iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (*a.min(b), *a.max(b)))
            .collect();
        prop_assert_eq!(g.edge_count(), distinct.len());
        for u in g.nodes() {
            prop_assert!(!g.has_edge(u, u));
            for v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u), "symmetry");
            }
        }
        // Handshake lemma.
        let degree_sum: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        // Edge iteration covers each edge exactly once.
        prop_assert_eq!(g.edges().count(), g.edge_count());
    }

    /// Components partition the member set: sizes sum to |members| and every
    /// member appears in exactly one component.
    #[test]
    fn components_partition_members((n, es) in edges(25, 80)) {
        let g = build(n, &es);
        let members: Vec<UserId> = (0..n).map(UserId).collect();
        let comps = components(&g, &members);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, members.len());
        let mut seen = HashSet::new();
        for c in &comps {
            for u in c {
                prop_assert!(seen.insert(*u), "member in two components");
            }
        }
        // Sizes are sorted descending.
        let sizes = component_sizes(&g, &members);
        prop_assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        // Census is consistent.
        let census = ComponentCensus::compute(&g, &members);
        prop_assert_eq!(census.members, members.len());
        prop_assert_eq!(census.giant_size, sizes.first().copied().unwrap_or(0));
        prop_assert_eq!(
            census.singletons + 2 * census.pairs + 3 * census.triplets
                + comps.iter().filter(|c| c.len() >= 4).map(Vec::len).sum::<usize>(),
            members.len()
        );
    }

    /// Two connected members are in the same component; disconnected pairs
    /// (no path) are not.
    #[test]
    fn components_respect_connectivity((n, es) in edges(15, 40)) {
        let g = build(n, &es);
        let members: Vec<UserId> = (0..n).map(UserId).collect();
        let comps = components(&g, &members);
        for (a, b) in g.edges() {
            let ca = comps.iter().position(|c| c.contains(&a));
            let cb = comps.iter().position(|c| c.contains(&b));
            prop_assert_eq!(ca, cb, "edge endpoints share a component");
        }
    }

    /// 2-hop pairs are between members, never direct when excluded, and
    /// every reported pair really shares a neighbor.
    #[test]
    fn two_hop_pairs_are_sound((n, es) in edges(20, 60), member_mask in prop::collection::vec(any::<bool>(), 20)) {
        let g = build(n, &es);
        let members: Vec<UserId> = (0..n)
            .filter(|i| member_mask.get(*i as usize).copied().unwrap_or(false))
            .map(UserId)
            .collect();
        let member_set: HashSet<UserId> = members.iter().copied().collect();
        let pairs = two_hop_pairs(&g, &members, true);
        for (a, b) in &pairs {
            prop_assert!(a < b, "canonical ordering");
            prop_assert!(member_set.contains(a) && member_set.contains(b));
            prop_assert!(!g.has_edge(*a, *b), "direct pairs excluded");
            prop_assert!(g.common_neighbors(*a, *b) > 0, "shared neighbor exists");
        }
        // Including direct pairs only adds pairs.
        let with_direct = two_hop_pairs(&g, &members, false);
        prop_assert!(with_direct.len() >= pairs.len());
        // Direct edge counting is consistent with membership.
        let direct = direct_edges_within(&g, &members);
        let expected = g
            .edges()
            .filter(|(a, b)| member_set.contains(a) && member_set.contains(b))
            .count();
        prop_assert_eq!(direct, expected);
    }

    /// The like graph keeps both indexes consistent.
    #[test]
    fn like_graph_indexes_agree(likes in prop::collection::vec((0u32..20, 0u32..20), 0..100)) {
        let mut g = LikeGraph::new(20, 20);
        for (u, p) in &likes {
            g.add_like(UserId(*u), PageId(*p));
        }
        let total_user_side: usize = (0..20).map(|u| g.user_like_count(UserId(u))).sum();
        let total_page_side: usize = (0..20).map(|p| g.page_like_count(PageId(p))).sum();
        prop_assert_eq!(total_user_side, g.like_count());
        prop_assert_eq!(total_page_side, g.like_count());
        for u in 0..20 {
            for p in g.pages_of(UserId(u)) {
                prop_assert!(g.likers_of(*p).contains(&UserId(u)));
                prop_assert!(g.likes_page(UserId(u), *p));
            }
        }
        let distinct: HashSet<(u32, u32)> = likes.iter().copied().collect();
        prop_assert_eq!(g.like_count(), distinct.len());
    }

    /// The CSR adjacency round-trips against a naive Vec-of-sets reference
    /// built from the same random edge list: identical neighbor lists
    /// (sorted), degrees, membership answers, and canonical edge iteration —
    /// with or without explicit mid-build compaction of the CSR overlay.
    #[test]
    fn csr_round_trips_against_reference(
        (n, es) in edges(30, 160),
        compact_every in 1usize..40,
    ) {
        use std::collections::BTreeSet;
        let mut g = FriendGraph::with_nodes(n as usize);
        let mut compacted = FriendGraph::with_nodes(n as usize);
        let mut reference: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n as usize];
        for (i, (a, b)) in es.iter().enumerate() {
            if a == b {
                continue;
            }
            let added = g.add_edge(UserId(*a), UserId(*b));
            prop_assert_eq!(added, compacted.add_edge(UserId(*a), UserId(*b)));
            let fresh = reference[*a as usize].insert(*b);
            reference[*b as usize].insert(*a);
            prop_assert_eq!(added, fresh, "dedup disagrees with reference");
            if i % compact_every == 0 {
                compacted.compact();
            }
        }
        compacted.compact();
        prop_assert!(compacted.is_compact());
        for u in 0..n {
            let want: Vec<UserId> = reference[u as usize].iter().map(|v| UserId(*v)).collect();
            let got: Vec<UserId> = g.neighbors(UserId(u)).iter().copied().collect();
            prop_assert_eq!(&got, &want, "neighbors of {} (overlay)", u);
            let got_c: Vec<UserId> = compacted.neighbors(UserId(u)).iter().copied().collect();
            prop_assert_eq!(&got_c, &want, "neighbors of {} (compacted)", u);
            prop_assert_eq!(g.degree(UserId(u)), want.len());
            for v in 0..n {
                let expect = reference[u as usize].contains(&v);
                prop_assert_eq!(g.has_edge(UserId(u), UserId(v)), expect);
                prop_assert_eq!(compacted.has_edge(UserId(u), UserId(v)), expect);
            }
        }
        let expected_edges: usize = reference.iter().map(BTreeSet::len).sum::<usize>() / 2;
        prop_assert_eq!(g.edge_count(), expected_edges);
        let canonical: Vec<(UserId, UserId)> = g.edges().collect();
        prop_assert_eq!(canonical.len(), expected_edges);
        prop_assert!(canonical.iter().all(|(a, b)| a < b));
        prop_assert_eq!(canonical, compacted.edges().collect::<Vec<_>>());
    }

    /// Summary statistics stay within sane bounds.
    #[test]
    fn summary_stats_are_bounded(values in prop::collection::vec(-1_000.0f64..1_000.0, 1..50)) {
        let s = SummaryStats::of(&values);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(s.mean >= min - 1e-9 && s.mean <= max + 1e-9);
        prop_assert!(s.median >= min && s.median <= max);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert!(s.std_dev <= (max - min) + 1e-9);
        prop_assert_eq!(s.n, values.len());
    }
}
