//! Dataset anonymization — the paper's ethics protocol, made executable.
//!
//! The authors "enforced a few mechanisms to protect user privacy: all data
//! were encrypted at rest and not re-distributed, and no personal
//! information was extracted, i.e., we only analyzed aggregated statistics."
//! A dataset release would need one more step: pseudonymization. This
//! module provides it — a salted, consistent re-labelling of every user and
//! page id, plus small-bucket suppression for the aggregated reports — with
//! the property the analyses depend on: **every statistic in the study
//! report is invariant under anonymization** (it only ever uses identities
//! for equality, never for meaning).

use crate::dataset::{BaselineRecord, CampaignData, Dataset};
use likelab_graph::{PageId, UserId};
use likelab_osn::AudienceReport;
use likelab_sim::Rng;
use std::collections::HashMap;

/// A consistent pseudonym table for one release.
#[derive(Debug, Default)]
pub struct Pseudonymizer {
    users: HashMap<UserId, UserId>,
    pages: HashMap<PageId, PageId>,
    user_order: Vec<u32>,
    page_order: Vec<u32>,
    next_user: usize,
    next_page: usize,
}

impl Pseudonymizer {
    /// A pseudonymizer with a salted, shuffled id space large enough for
    /// `max_users` / `max_pages` distinct entities.
    pub fn new(salt: u64, max_users: usize, max_pages: usize) -> Self {
        let mut rng = Rng::seed_from_u64(salt);
        let mut user_order: Vec<u32> = (0..max_users as u32).collect();
        rng.shuffle(&mut user_order);
        let mut page_order: Vec<u32> = (0..max_pages as u32).collect();
        rng.shuffle(&mut page_order);
        Pseudonymizer {
            user_order,
            page_order,
            ..Pseudonymizer::default()
        }
    }

    /// The stable pseudonym of a user.
    ///
    /// # Panics
    /// Panics when more distinct users appear than the table was sized for.
    pub fn user(&mut self, u: UserId) -> UserId {
        if let Some(p) = self.users.get(&u) {
            return *p;
        }
        assert!(
            self.next_user < self.user_order.len(),
            "pseudonym table exhausted: size it for the dataset"
        );
        let p = UserId(self.user_order[self.next_user]);
        self.next_user += 1;
        self.users.insert(u, p);
        p
    }

    /// The stable pseudonym of a page.
    pub fn page(&mut self, p: PageId) -> PageId {
        if let Some(q) = self.pages.get(&p) {
            return *q;
        }
        assert!(
            self.next_page < self.page_order.len(),
            "pseudonym table exhausted: size it for the dataset"
        );
        let q = PageId(self.page_order[self.next_page]);
        self.next_page += 1;
        self.pages.insert(p, q);
        q
    }
}

/// Suppress aggregate buckets smaller than `k` (set them to zero) — the
/// k-anonymity guard for released reports. The total is left untouched so
/// suppression is visible, not silent.
pub fn suppress_small_buckets(report: &AudienceReport, k: usize) -> AudienceReport {
    let mut out = report.clone();
    for v in out.country_counts.values_mut() {
        if *v < k {
            *v = 0;
        }
    }
    for v in out.age_counts.iter_mut() {
        if *v < k {
            *v = 0;
        }
    }
    out
}

/// Produce a pseudonymized copy of a dataset, suitable for release: every
/// user and page id is consistently re-labelled, and aggregate reports have
/// buckets below `k_anonymity` suppressed.
pub fn anonymize(dataset: &Dataset, salt: u64, k_anonymity: usize) -> Dataset {
    // Size the tables generously: ids live in a dense space, so the maximum
    // observed id bounds the table.
    let max_user = dataset
        .campaigns
        .iter()
        .flat_map(|c| c.likers.iter())
        .flat_map(|l| std::iter::once(l.user.0).chain(l.friends.iter().flatten().map(|f| f.0)))
        .chain(dataset.baseline.iter().map(|b| b.user.0))
        .max()
        .unwrap_or(0) as usize
        + 1;
    let max_page = dataset
        .campaigns
        .iter()
        .flat_map(|c| {
            std::iter::once(c.page.0).chain(
                c.likers
                    .iter()
                    .flat_map(|l| l.liked_pages.iter().flatten().map(|p| p.0)),
            )
        })
        .max()
        .unwrap_or(0) as usize
        + 1;
    let mut pseudo = Pseudonymizer::new(salt, max_user, max_page);

    let campaigns: Vec<CampaignData> = dataset
        .campaigns
        .iter()
        .map(|c| {
            let mut c2 = c.clone();
            c2.page = pseudo.page(c.page);
            c2.report = suppress_small_buckets(&c.report, k_anonymity);
            for l in &mut c2.likers {
                l.user = pseudo.user(l.user);
                if let Some(fs) = &mut l.friends {
                    for f in fs.iter_mut() {
                        *f = pseudo.user(*f);
                    }
                }
                if let Some(ps) = &mut l.liked_pages {
                    for p in ps.iter_mut() {
                        *p = pseudo.page(*p);
                    }
                }
            }
            c2
        })
        .collect();
    Dataset {
        campaigns,
        baseline: dataset
            .baseline
            .iter()
            .map(|b| BaselineRecord {
                user: pseudo.user(b.user),
                like_count: b.like_count,
            })
            .collect(),
        launch: dataset.launch,
        global_report: suppress_small_buckets(&dataset.global_report, k_anonymity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignSpec, Promotion};
    use crate::collector::LikerRecord;
    use likelab_osn::Targeting;
    use likelab_sim::SimTime;

    fn liker(id: u32, friends: Vec<u32>, pages: Vec<u32>) -> LikerRecord {
        LikerRecord {
            user: UserId(id),
            first_seen: SimTime::at_day(1),
            total_friend_count: Some(friends.len() + 10),
            friends: Some(friends.into_iter().map(UserId).collect()),
            liked_pages: Some(pages.into_iter().map(PageId).collect()),
            gone_at_collection: false,
            crawl_outcome: crate::collector::CrawlOutcome::Complete,
        }
    }

    fn dataset() -> Dataset {
        let mut report = AudienceReport {
            total: 3,
            female: 1,
            male: 2,
            age_counts: [2, 1, 0, 0, 0, 0],
            ..Default::default()
        };
        report.country_counts.insert("India".into(), 2);
        report.country_counts.insert("USA".into(), 1);
        Dataset {
            campaigns: vec![CampaignData {
                spec: CampaignSpec {
                    label: "FB-IND".into(),
                    promotion: Promotion::PlatformAds {
                        targeting: Targeting::worldwide(),
                        daily_budget_cents: 600.0,
                        duration_days: 15,
                    },
                },
                page: PageId(7),
                observations: vec![],
                likers: vec![
                    liker(3, vec![5, 9], vec![1, 2]),
                    liker(5, vec![3], vec![2, 4]),
                ],
                report,
                monitoring_days: Some(22),
                terminated_after_month: 1,
                termination_unknown: 0,
                inactive: false,
                coverage: crate::crawler::CrawlCoverage::default(),
            }],
            baseline: vec![BaselineRecord {
                user: UserId(9),
                like_count: 34,
            }],
            launch: SimTime::at_day(100),
            global_report: AudienceReport::default(),
        }
    }

    #[test]
    fn ids_are_remapped_consistently() {
        let d = anonymize(&dataset(), 99, 2);
        let likers = &d.campaigns[0].likers;
        // User 3 appears as a liker and inside user 5's friend list: both
        // occurrences must carry the same pseudonym.
        let pseudo_3 = likers[0].user;
        assert_eq!(likers[1].friends.as_ref().unwrap()[0], pseudo_3);
        // User 5 likewise.
        let pseudo_5 = likers[1].user;
        assert!(likers[0].friends.as_ref().unwrap().contains(&pseudo_5));
        // The baseline user 9 is a friend of 3: same pseudonym in both.
        let pseudo_9 = d.baseline[0].user;
        assert!(likers[0].friends.as_ref().unwrap().contains(&pseudo_9));
    }

    #[test]
    fn raw_ids_disappear_under_most_salts() {
        let raw = dataset();
        let d = anonymize(&raw, 1234, 2);
        // The specific identity mapping changes (statistically certain for
        // this salt, asserted to catch a broken shuffle).
        assert_ne!(
            d.campaigns[0].likers[0].user,
            raw.campaigns[0].likers[0].user
        );
    }

    #[test]
    fn analyses_are_invariant_under_anonymization() {
        let raw = dataset();
        let anon = anonymize(&raw, 42, 0);
        assert_eq!(raw.total_likes(), anon.total_likes());
        assert_eq!(raw.observed_friendships(), anon.observed_friendships());
        assert_eq!(raw.observed_page_likes(), anon.observed_page_likes());
        // Per-liker structural quantities survive: like counts, friend
        // counts, first-seen times.
        for (a, b) in raw.campaigns[0]
            .likers
            .iter()
            .zip(&anon.campaigns[0].likers)
        {
            assert_eq!(a.total_friend_count, b.total_friend_count);
            assert_eq!(
                a.liked_pages.as_ref().map(Vec::len),
                b.liked_pages.as_ref().map(Vec::len)
            );
            assert_eq!(a.first_seen, b.first_seen);
        }
    }

    #[test]
    fn small_buckets_are_suppressed() {
        let d = anonymize(&dataset(), 7, 2);
        let report = &d.campaigns[0].report;
        assert_eq!(report.country_counts["India"], 2, "at k stays");
        assert_eq!(report.country_counts["USA"], 0, "below k suppressed");
        assert_eq!(report.age_counts[0], 2);
        assert_eq!(report.age_counts[1], 0);
        assert_eq!(report.total, 3, "suppression is visible, not silent");
    }

    #[test]
    fn same_salt_same_pseudonyms() {
        let a = anonymize(&dataset(), 5, 0);
        let b = anonymize(&dataset(), 5, 0);
        assert_eq!(a.campaigns[0].likers[0].user, b.campaigns[0].likers[0].user);
        let c = anonymize(&dataset(), 6, 0);
        assert_ne!(a.campaigns[0].likers[0].user, c.campaigns[0].likers[0].user);
    }
}
