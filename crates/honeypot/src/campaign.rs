//! Campaign specifications: how each honeypot page gets promoted.
//!
//! A campaign is either a legitimate page-like ad buy (5 of the paper's 13)
//! or a farm order (the other 8). The spec carries everything Table 1
//! reports about it: provider, location, budget, and duration.

use likelab_farms::Region;
use likelab_osn::Targeting;
use serde::{Deserialize, Serialize};

/// How a honeypot page is promoted.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Promotion {
    /// Legitimate platform ads ("Facebook.com — Page like ads").
    PlatformAds {
        /// Ad targeting.
        targeting: Targeting,
        /// Daily budget in cents ($6/day in the paper).
        daily_budget_cents: f64,
        /// Campaign length in days (15 in the paper).
        duration_days: u64,
    },
    /// A like-farm order.
    FarmOrder {
        /// Roster index of the farm.
        farm: usize,
        /// Ordered region.
        region: Region,
        /// Ordered like count at paper scale (1000 in the paper).
        likes: usize,
        /// Price paid, in cents (Table 1's budget column).
        price_cents: u64,
        /// Advertised delivery window, as marketed ("3 days", "3-5 days").
        advertised_duration: String,
    },
}

/// One of the study's campaigns.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Short label, e.g. "FB-USA" or "AL-ALL".
    pub label: String,
    /// The promotion method.
    pub promotion: Promotion,
}

impl CampaignSpec {
    /// Table 1's "Provider" column.
    pub fn provider<'a>(&self, farm_names: &'a [String]) -> &'a str {
        match &self.promotion {
            Promotion::PlatformAds { .. } => "Facebook.com",
            Promotion::FarmOrder { farm, .. } => farm_names[*farm].as_str(),
        }
    }

    /// Table 1's "Location" column.
    pub fn location(&self) -> String {
        match &self.promotion {
            Promotion::PlatformAds { targeting, .. } => match &targeting.countries {
                None => "Worldwide".to_string(),
                Some(cs) => cs
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join("+"),
            },
            Promotion::FarmOrder { region, .. } => region.to_string(),
        }
    }

    /// Table 1's "Budget" column.
    pub fn budget(&self) -> String {
        match &self.promotion {
            Promotion::PlatformAds {
                daily_budget_cents, ..
            } => format!("${:.0}/day", daily_budget_cents / 100.0),
            Promotion::FarmOrder { price_cents, .. } => {
                format!("${:.2}", *price_cents as f64 / 100.0)
            }
        }
    }

    /// Table 1's "Duration" column.
    pub fn duration(&self) -> String {
        match &self.promotion {
            Promotion::PlatformAds { duration_days, .. } => format!("{duration_days} days"),
            Promotion::FarmOrder {
                advertised_duration,
                ..
            } => advertised_duration.clone(),
        }
    }

    /// True for legitimate ad campaigns.
    pub fn is_platform_ads(&self) -> bool {
        matches!(self.promotion, Promotion::PlatformAds { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_osn::Country;

    fn ads_spec() -> CampaignSpec {
        CampaignSpec {
            label: "FB-USA".into(),
            promotion: Promotion::PlatformAds {
                targeting: Targeting::country(Country::Usa),
                daily_budget_cents: 600.0,
                duration_days: 15,
            },
        }
    }

    fn farm_spec() -> CampaignSpec {
        CampaignSpec {
            label: "SF-ALL".into(),
            promotion: Promotion::FarmOrder {
                farm: 1,
                region: Region::Worldwide,
                likes: 1_000,
                price_cents: 1_499,
                advertised_duration: "3 days".into(),
            },
        }
    }

    #[test]
    fn table1_columns_render() {
        let names = vec![
            "BoostLikes.com".to_string(),
            "SocialFormula.com".to_string(),
        ];
        let ads = ads_spec();
        assert_eq!(ads.provider(&names), "Facebook.com");
        assert_eq!(ads.location(), "USA");
        assert_eq!(ads.budget(), "$6/day");
        assert_eq!(ads.duration(), "15 days");
        assert!(ads.is_platform_ads());

        let farm = farm_spec();
        assert_eq!(farm.provider(&names), "SocialFormula.com");
        assert_eq!(farm.location(), "Worldwide");
        assert_eq!(farm.budget(), "$14.99");
        assert_eq!(farm.duration(), "3 days");
        assert!(!farm.is_platform_ads());
    }

    #[test]
    fn worldwide_ads_location() {
        let spec = CampaignSpec {
            label: "FB-ALL".into(),
            promotion: Promotion::PlatformAds {
                targeting: Targeting::worldwide(),
                daily_budget_cents: 600.0,
                duration_days: 15,
            },
        };
        assert_eq!(spec.location(), "Worldwide");
    }
}
