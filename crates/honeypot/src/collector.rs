//! Profile collection: what the study gathered about each liker.
//!
//! After the campaigns, the paper "crawled public information from the
//! likers' profiles, obtaining the lists of liked pages as well as friend
//! lists" and, a month later, re-checked which liker accounts still existed.
//! Both passes run through the privacy-enforcing crawl API with retries.

use crate::crawler::PageMonitor;
use likelab_graph::{PageId, UserId};
use likelab_osn::{CrawlApi, CrawlError, OsnWorld};
use likelab_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Everything the study holds about one liker.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LikerRecord {
    /// The liker.
    pub user: UserId,
    /// When the crawler first saw the like (poll-quantized).
    pub first_seen: SimTime,
    /// Public friend list (None = private).
    pub friends: Option<Vec<UserId>>,
    /// Total friend count as shown on the profile, when public.
    pub total_friend_count: Option<usize>,
    /// Public liked-pages list (None = private).
    pub liked_pages: Option<Vec<PageId>>,
    /// Whether the profile was already gone at collection time.
    pub gone_at_collection: bool,
}

/// Crawl every observed liker's profile. Transient failures are retried;
/// profiles of already-terminated accounts come back marked gone.
pub fn collect_profiles(
    world: &OsnWorld,
    api: &mut CrawlApi,
    monitor: &PageMonitor,
) -> Vec<LikerRecord> {
    let mut records = Vec::new();
    for (user, first_seen) in monitor.first_seen() {
        match api.profile_with_retry(world, *user, 5) {
            Ok(p) => records.push(LikerRecord {
                user: *user,
                first_seen: *first_seen,
                friends: p.friends,
                total_friend_count: p.total_friend_count,
                liked_pages: p.liked_pages,
                gone_at_collection: false,
            }),
            Err(CrawlError::Gone) => records.push(LikerRecord {
                user: *user,
                first_seen: *first_seen,
                friends: None,
                total_friend_count: None,
                liked_pages: None,
                gone_at_collection: true,
            }),
            Err(CrawlError::Transient) => {
                // Gave up after retries: keep the liker with no profile data,
                // exactly what a stubbornly failing crawl leaves you with.
                records.push(LikerRecord {
                    user: *user,
                    first_seen: *first_seen,
                    friends: None,
                    total_friend_count: None,
                    liked_pages: None,
                    gone_at_collection: false,
                });
            }
        }
    }
    records
}

/// The month-later pass: how many of `users` are gone now.
pub fn count_terminated(world: &OsnWorld, api: &mut CrawlApi, users: &[UserId]) -> usize {
    users
        .iter()
        .filter(|u| matches!(api.profile_with_retry(world, **u, 5), Err(CrawlError::Gone)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::CrawlerConfig;
    use likelab_osn::{
        ActorClass, Country, CrawlConfig, Gender, PageCategory, PrivacySettings, Profile,
    };
    use likelab_sim::Rng;

    fn setup() -> (OsnWorld, PageMonitor, CrawlApi) {
        let mut w = OsnWorld::new();
        // u0 public, u1 private, u2 public.
        for fl in [true, false, true] {
            w.create_account(
                Profile {
                    gender: Gender::Female,
                    age: 22,
                    country: Country::Usa,
                    home_region: 0,
                },
                ActorClass::Bot(1),
                PrivacySettings {
                    friend_list_public: fl,
                    likes_public: fl,
                    searchable: true,
                },
                SimTime::EPOCH,
            );
        }
        w.add_friendship(UserId(0), UserId(1));
        let p = w.create_page("h", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        for i in 0..3 {
            w.record_like(UserId(i), p, SimTime::at_day(1));
        }
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let mut api = CrawlApi::new(CrawlConfig { failure_prob: 0.0 }, Rng::seed_from_u64(3));
        m.poll(&w, &mut api, SimTime::at_day(2));
        (w, m, api)
    }

    #[test]
    fn profiles_respect_privacy() {
        let (w, m, mut api) = setup();
        let records = collect_profiles(&w, &mut api, &m);
        assert_eq!(records.len(), 3);
        let r0 = records.iter().find(|r| r.user == UserId(0)).unwrap();
        assert_eq!(r0.friends.as_deref(), Some(&[UserId(1)][..]));
        assert!(r0.liked_pages.is_some());
        let r1 = records.iter().find(|r| r.user == UserId(1)).unwrap();
        assert!(r1.friends.is_none());
        assert!(r1.liked_pages.is_none());
        assert!(!r1.gone_at_collection);
    }

    #[test]
    fn terminated_likers_are_marked_gone() {
        let (mut w, m, mut api) = setup();
        w.terminate_account(UserId(2), SimTime::at_day(3));
        let records = collect_profiles(&w, &mut api, &m);
        let r2 = records.iter().find(|r| r.user == UserId(2)).unwrap();
        assert!(r2.gone_at_collection);
        assert!(r2.friends.is_none());
    }

    #[test]
    fn first_seen_travels_with_the_record() {
        let (w, m, mut api) = setup();
        let records = collect_profiles(&w, &mut api, &m);
        assert!(records.iter().all(|r| r.first_seen == SimTime::at_day(2)));
    }

    #[test]
    fn count_terminated_matches_status() {
        let (mut w, m, mut api) = setup();
        let users = m.likers();
        assert_eq!(count_terminated(&w, &mut api, &users), 0);
        w.terminate_account(UserId(0), SimTime::at_day(40));
        w.terminate_account(UserId(1), SimTime::at_day(41));
        assert_eq!(count_terminated(&w, &mut api, &users), 2);
    }
}
