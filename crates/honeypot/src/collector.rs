//! Profile collection: what the study gathered about each liker.
//!
//! After the campaigns, the paper "crawled public information from the
//! likers' profiles, obtaining the lists of liked pages as well as friend
//! lists" and, a month later, re-checked which liker accounts still existed.
//! Both passes run through the privacy-enforcing crawl API with jittered
//! exponential backoff and an optional per-pass request budget, and every
//! record says *why* its fields are what they are: a private profile and a
//! crawl that gave up are different facts, and blending them biased the
//! original pipeline.

use crate::crawler::PageMonitor;
use likelab_graph::{PageId, UserId};
use likelab_osn::{CrawlApi, CrawlError, OsnWorld, RetryPolicy};
use likelab_sim::SimTime;
use serde::{Deserialize, Serialize};

/// How the collection crawl of one liker's profile ended.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrawlOutcome {
    /// The profile was fetched; empty fields mean *private*, nothing else.
    #[default]
    Complete,
    /// The profile no longer exists (terminated account).
    Gone,
    /// Retries or the request budget ran out; empty fields mean *unknown*.
    GaveUp,
}

/// Everything the study holds about one liker.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LikerRecord {
    /// The liker.
    pub user: UserId,
    /// When the crawler first saw the like (poll-quantized).
    pub first_seen: SimTime,
    /// Public friend list (None = private, or unknown when the crawl gave up).
    pub friends: Option<Vec<UserId>>,
    /// Total friend count as shown on the profile, when public.
    pub total_friend_count: Option<usize>,
    /// Public liked-pages list (None = private, or unknown when the crawl
    /// gave up).
    pub liked_pages: Option<Vec<PageId>>,
    /// Whether the profile was already gone at collection time.
    pub gone_at_collection: bool,
    /// How the collection crawl ended — distinguishes "private" from
    /// "the crawler never got an answer".
    pub crawl_outcome: CrawlOutcome,
}

/// Knobs for one collection pass.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CollectionConfig {
    /// Retry/backoff behavior per profile.
    pub retry: RetryPolicy,
    /// Optional cap on requests this pass may issue (measured against the
    /// API's global request counter). Once exhausted, remaining likers are
    /// recorded as [`CrawlOutcome::GaveUp`] without issuing requests.
    pub request_budget: Option<u64>,
}

/// Crawl every observed liker's profile at virtual time `at` (the cursor
/// advances through backoff waits). Transient failures are retried under
/// the policy; profiles of already-terminated accounts come back marked
/// gone; exhausted retries or budget leave an explicit
/// [`CrawlOutcome::GaveUp`] record.
pub fn collect_profiles(
    world: &OsnWorld,
    api: &mut CrawlApi,
    monitor: &PageMonitor,
    at: &mut SimTime,
    config: &CollectionConfig,
) -> Vec<LikerRecord> {
    let start_requests = api.requests();
    let mut records = Vec::new();
    for (user, first_seen) in monitor.first_seen() {
        let budget_left = config
            .request_budget
            .map(|b| api.requests() - start_requests < b)
            .unwrap_or(true);
        let blank = |outcome: CrawlOutcome| LikerRecord {
            user: *user,
            first_seen: *first_seen,
            friends: None,
            total_friend_count: None,
            liked_pages: None,
            gone_at_collection: outcome == CrawlOutcome::Gone,
            crawl_outcome: outcome,
        };
        if !budget_left {
            records.push(blank(CrawlOutcome::GaveUp));
            continue;
        }
        match api.profile_with_retry(world, *user, at, &config.retry) {
            Ok(p) => records.push(LikerRecord {
                user: *user,
                first_seen: *first_seen,
                friends: p.friends,
                total_friend_count: p.total_friend_count,
                liked_pages: p.liked_pages,
                gone_at_collection: false,
                crawl_outcome: CrawlOutcome::Complete,
            }),
            Err(CrawlError::Gone) => records.push(blank(CrawlOutcome::Gone)),
            Err(_) => records.push(blank(CrawlOutcome::GaveUp)),
        }
    }
    records
}

/// The month-later termination re-check, with the unknowns accounted for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TerminationProbe {
    /// Accounts confirmed gone.
    pub terminated: usize,
    /// Accounts whose probe never got an answer (retries exhausted) —
    /// *not* evidence of survival, and previously miscounted as such.
    pub unknown: usize,
}

/// The month-later pass: how many of `users` are gone now, and how many
/// could not be determined at all. Classifying a retry-exhausted fetch as
/// "not terminated" would bias the disposability counts downward, so the
/// unknowns are returned alongside.
pub fn check_terminations(
    world: &OsnWorld,
    api: &mut CrawlApi,
    users: &[UserId],
    at: &mut SimTime,
    retry: &RetryPolicy,
) -> TerminationProbe {
    let mut probe = TerminationProbe::default();
    for u in users {
        match api.profile_with_retry(world, *u, at, retry) {
            Err(CrawlError::Gone) => probe.terminated += 1,
            Ok(_) => {}
            Err(_) => probe.unknown += 1,
        }
    }
    probe
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::CrawlerConfig;
    use likelab_osn::{
        ActorClass, Country, CrawlConfig, Gender, PageCategory, PrivacySettings, Profile,
    };
    use likelab_sim::Rng;

    fn setup() -> (OsnWorld, PageMonitor, CrawlApi) {
        let mut w = OsnWorld::new();
        // u0 public, u1 private, u2 public.
        for fl in [true, false, true] {
            w.create_account(
                Profile {
                    gender: Gender::Female,
                    age: 22,
                    country: Country::Usa,
                    home_region: 0,
                },
                ActorClass::Bot(1),
                PrivacySettings {
                    friend_list_public: fl,
                    likes_public: fl,
                    searchable: true,
                },
                SimTime::EPOCH,
            );
        }
        w.add_friendship(UserId(0), UserId(1));
        let p = w.create_page("h", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        for i in 0..3 {
            w.record_like(UserId(i), p, SimTime::at_day(1));
        }
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let mut api = CrawlApi::new(CrawlConfig::clean(), Rng::seed_from_u64(3));
        m.poll(&w, &mut api, SimTime::at_day(2));
        (w, m, api)
    }

    fn collect(world: &OsnWorld, api: &mut CrawlApi, m: &PageMonitor) -> Vec<LikerRecord> {
        let mut at = SimTime::at_day(22);
        collect_profiles(world, api, m, &mut at, &CollectionConfig::default())
    }

    #[test]
    fn profiles_respect_privacy() {
        let (w, m, mut api) = setup();
        let records = collect(&w, &mut api, &m);
        assert_eq!(records.len(), 3);
        let r0 = records.iter().find(|r| r.user == UserId(0)).unwrap();
        assert_eq!(r0.friends.as_deref(), Some(&[UserId(1)][..]));
        assert!(r0.liked_pages.is_some());
        assert_eq!(r0.crawl_outcome, CrawlOutcome::Complete);
        let r1 = records.iter().find(|r| r.user == UserId(1)).unwrap();
        assert!(r1.friends.is_none());
        assert!(r1.liked_pages.is_none());
        assert!(!r1.gone_at_collection);
        assert_eq!(
            r1.crawl_outcome,
            CrawlOutcome::Complete,
            "private is a complete answer, not a crawl failure"
        );
    }

    #[test]
    fn terminated_likers_are_marked_gone() {
        let (mut w, m, mut api) = setup();
        w.terminate_account(UserId(2), SimTime::at_day(3));
        let records = collect(&w, &mut api, &m);
        let r2 = records.iter().find(|r| r.user == UserId(2)).unwrap();
        assert!(r2.gone_at_collection);
        assert!(r2.friends.is_none());
        assert_eq!(r2.crawl_outcome, CrawlOutcome::Gone);
    }

    #[test]
    fn first_seen_travels_with_the_record() {
        let (w, m, mut api) = setup();
        let records = collect(&w, &mut api, &m);
        assert!(records.iter().all(|r| r.first_seen == SimTime::at_day(2)));
    }

    #[test]
    fn gave_up_is_distinguished_from_private() {
        let (w, m, _) = setup();
        let mut broken = CrawlApi::new(CrawlConfig::noise(1.0), Rng::seed_from_u64(8));
        let records = collect(&w, &mut broken, &m);
        assert_eq!(records.len(), 3);
        for r in &records {
            assert_eq!(r.crawl_outcome, CrawlOutcome::GaveUp);
            assert!(!r.gone_at_collection, "gave-up is not gone");
            assert!(r.friends.is_none());
        }
    }

    #[test]
    fn request_budget_caps_the_pass() {
        let (w, m, mut api) = setup();
        let config = CollectionConfig {
            retry: RetryPolicy::default(),
            request_budget: Some(2),
        };
        let mut at = SimTime::at_day(22);
        let before = api.requests();
        let records = collect_profiles(&w, &mut api, &m, &mut at, &config);
        assert_eq!(records.len(), 3, "every liker still gets a record");
        assert_eq!(api.requests() - before, 2, "budget is respected");
        let gave_up = records
            .iter()
            .filter(|r| r.crawl_outcome == CrawlOutcome::GaveUp)
            .count();
        assert_eq!(gave_up, 1, "the unbudgeted liker is explicit");
    }

    #[test]
    fn termination_probe_matches_status() {
        let (mut w, m, mut api) = setup();
        let users = m.likers();
        let mut at = SimTime::at_day(52);
        let probe = check_terminations(&w, &mut api, &users, &mut at, &RetryPolicy::default());
        assert_eq!(probe, TerminationProbe::default());
        w.terminate_account(UserId(0), SimTime::at_day(40));
        w.terminate_account(UserId(1), SimTime::at_day(41));
        let probe = check_terminations(&w, &mut api, &users, &mut at, &RetryPolicy::default());
        assert_eq!(probe.terminated, 2);
        assert_eq!(probe.unknown, 0);
    }

    #[test]
    fn termination_probe_counts_unknowns_instead_of_hiding_them() {
        let (w, m, _) = setup();
        let users = m.likers();
        let mut broken = CrawlApi::new(CrawlConfig::noise(1.0), Rng::seed_from_u64(6));
        let mut at = SimTime::at_day(52);
        let probe = check_terminations(&w, &mut broken, &users, &mut at, &RetryPolicy::default());
        assert_eq!(probe.terminated, 0);
        assert_eq!(probe.unknown, 3, "no answer is not 'alive'");
    }
}
