//! The monitoring crawler.
//!
//! The paper "monitored the liking activity on the honeypot pages by
//! crawling them, using Selenium web driver, every 2 hours to check for new
//! likes. At the end of the campaigns, we reduced the monitoring frequency
//! to once a day, and stopped monitoring when a page did not receive a like
//! for more than a week." [`PageMonitor`] is that loop, driven by the
//! simulation clock; it owns the *observed* first-seen time of every liker —
//! the sampled series behind Figure 2.
//!
//! The real crawler was throttled and occasionally down, so the monitor has
//! to survive fault regimes (see `likelab_osn::crawl_api::FaultProfile`):
//! the quiet-stop rule only fires on *successful* polls (a week of failed
//! polls proves nothing about like activity), and a circuit breaker backs
//! off to a catch-up poll after sustained failure instead of burning
//! requests against a throttled or downed endpoint.

use likelab_graph::{PageId, UserId};
use likelab_osn::{CrawlApi, CrawlError, OsnWorld};
use likelab_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Circuit breaker for the poll loop: after `trip_after` consecutive failed
/// polls the monitor stops polling at its normal cadence and schedules a
/// single catch-up poll `cooldown` later. The breaker closes again on the
/// first successful poll.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CircuitBreakerConfig {
    /// Consecutive failed polls before the breaker opens.
    pub trip_after: u32,
    /// Delay until the catch-up poll once open.
    pub cooldown: SimDuration,
}

impl Default for CircuitBreakerConfig {
    fn default() -> Self {
        CircuitBreakerConfig {
            trip_after: 3,
            cooldown: SimDuration::hours(6),
        }
    }
}

/// Crawler cadence configuration (defaults are the paper's).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CrawlerConfig {
    /// Poll interval while the campaign runs.
    pub active_interval: SimDuration,
    /// Poll interval after the campaign ends.
    pub settled_interval: SimDuration,
    /// Stop after this long without a new like (post-campaign), judged only
    /// from successful polls.
    pub quiet_stop: SimDuration,
    /// Backoff behavior under sustained poll failure.
    pub breaker: CircuitBreakerConfig,
    /// Unconditional stop this long after campaign end — the bound that
    /// keeps a permanently-downed crawl target from extending monitoring
    /// forever. Far beyond any quiet-stop under realistic fault profiles.
    pub hard_stop: SimDuration,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            active_interval: SimDuration::hours(2),
            settled_interval: SimDuration::DAY,
            quiet_stop: SimDuration::WEEK,
            breaker: CircuitBreakerConfig::default(),
            hard_stop: SimDuration::days(60),
        }
    }
}

/// One crawl snapshot of a page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// Poll time.
    pub at: SimTime,
    /// Total visible likes at that moment.
    pub total_likes: usize,
    /// Likers first seen by this poll.
    pub new_likers: usize,
    /// Previously seen likers missing from this poll (cumulative count of
    /// distinct disappearances so far — removed likes, the paper's named
    /// future-work observation).
    pub disappeared_total: usize,
    /// Whether the poll failed (transient crawl error).
    pub failed: bool,
}

/// Per-campaign crawl coverage accounting: how much of the intended
/// measurement actually landed. The poll-side counters are filled by
/// [`PageMonitor`]; the profile-side counters by the collection pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlCoverage {
    /// Polls attempted.
    pub polls: u64,
    /// Polls that failed (any cause).
    pub failed_polls: u64,
    /// Failed polls rejected by the rate limiter.
    pub rate_limited_polls: u64,
    /// Failed polls swallowed by an outage window.
    pub outage_polls: u64,
    /// Times the circuit breaker opened.
    pub circuit_trips: u64,
    /// Liker profiles fetched completely at collection time.
    pub profiles_complete: u64,
    /// Liker profiles that returned `Gone` (terminated accounts).
    pub profiles_gone: u64,
    /// Liker profiles the collector gave up on (retries or budget
    /// exhausted) — explicitly *not* the same as private or terminated.
    pub profiles_gave_up: u64,
}

impl CrawlCoverage {
    /// Fraction of polls that succeeded (1.0 when no polls happened).
    pub fn poll_success_rate(&self) -> f64 {
        if self.polls == 0 {
            1.0
        } else {
            (self.polls - self.failed_polls) as f64 / self.polls as f64
        }
    }

    /// Fraction of liker profiles resolved to a definite answer (complete
    /// or gone) at collection time; 1.0 when there were no likers.
    pub fn profile_coverage(&self) -> f64 {
        let total = self.profiles_complete + self.profiles_gone + self.profiles_gave_up;
        if total == 0 {
            1.0
        } else {
            (self.profiles_complete + self.profiles_gone) as f64 / total as f64
        }
    }
}

/// The monitor of one honeypot page.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PageMonitor {
    /// The monitored page.
    pub page: PageId,
    config: CrawlerConfig,
    campaign_end: SimTime,
    launched: SimTime,
    last_new_like: SimTime,
    observations: Vec<Observation>,
    first_seen: BTreeMap<UserId, SimTime>,
    disappeared: BTreeMap<UserId, SimTime>,
    /// Likers visible at the last successful poll, sorted by id — the
    /// persistent seen-set the incremental diff runs against.
    present: Vec<UserId>,
    /// Consecutive failed polls (resets on success).
    consecutive_failures: u32,
    coverage: CrawlCoverage,
    stopped_at: Option<SimTime>,
}

impl PageMonitor {
    /// Start monitoring `page`; `campaign_end` is when the paid promotion
    /// ends (the crawler slows down after it).
    pub fn new(
        page: PageId,
        launched: SimTime,
        campaign_end: SimTime,
        config: CrawlerConfig,
    ) -> Self {
        PageMonitor {
            page,
            config,
            campaign_end,
            launched,
            last_new_like: launched,
            observations: Vec::new(),
            first_seen: BTreeMap::new(),
            disappeared: BTreeMap::new(),
            present: Vec::new(),
            consecutive_failures: 0,
            coverage: CrawlCoverage::default(),
            stopped_at: None,
        }
    }

    /// Execute one poll at `now`. Returns the time of the next poll, or
    /// `None` when monitoring has stopped.
    pub fn poll(&mut self, world: &OsnWorld, api: &mut CrawlApi, now: SimTime) -> Option<SimTime> {
        if self.stopped_at.is_some() {
            return None;
        }
        self.coverage.polls += 1;
        let succeeded = match api.page_likers(world, self.page, now) {
            Ok(likers) => {
                self.consecutive_failures = 0;
                let new = self.diff_likers(&likers, now);
                if new > 0 {
                    self.last_new_like = now;
                }
                self.observations.push(Observation {
                    at: now,
                    total_likes: likers.len(),
                    new_likers: new,
                    disappeared_total: self.disappeared.len(),
                    failed: false,
                });
                true
            }
            Err(e) => {
                self.consecutive_failures += 1;
                self.coverage.failed_polls += 1;
                match e {
                    CrawlError::RateLimited { .. } => self.coverage.rate_limited_polls += 1,
                    CrawlError::Outage => self.coverage.outage_polls += 1,
                    _ => {}
                }
                self.observations.push(Observation {
                    at: now,
                    total_likes: self
                        .observations
                        .iter()
                        .rev()
                        .find(|o| !o.failed)
                        .map(|o| o.total_likes)
                        .unwrap_or(0),
                    new_likers: 0,
                    disappeared_total: self.disappeared.len(),
                    failed: true,
                });
                false
            }
        };
        // Stop rule: a quiet week after the campaign (or after the last
        // straggler like, whichever is later) ends monitoring. This is what
        // turns the paper's 15-day campaigns into 22-day monitoring windows.
        // Judged only on successful polls: a week of failed polls proves
        // nothing about like activity (likes are cumulative, so the first
        // successful poll after an outage reveals anything that arrived).
        let quiet_since = self.last_new_like.max(self.campaign_end);
        if succeeded
            && now > self.campaign_end
            && now.saturating_since(quiet_since) >= self.config.quiet_stop
        {
            self.stopped_at = Some(now);
            return None;
        }
        // Bound: a permanently-unreachable page cannot extend monitoring
        // forever just because no successful poll ever confirms quiet.
        if now.saturating_since(self.campaign_end) >= self.config.hard_stop {
            self.stopped_at = Some(now);
            return None;
        }
        // Sustained failure: open the circuit breaker and schedule a
        // catch-up poll after the cooldown instead of burning requests.
        if self.consecutive_failures >= self.config.breaker.trip_after {
            if self.consecutive_failures == self.config.breaker.trip_after {
                self.coverage.circuit_trips += 1;
                likelab_obs::metrics::counter("crawl.circuit_open", 1);
            }
            return Some(now + self.config.breaker.cooldown);
        }
        let interval = if now < self.campaign_end {
            self.config.active_interval
        } else {
            self.config.settled_interval
        };
        Some(now + interval)
    }

    /// Diff the freshly crawled liker list against the persistent seen-set
    /// from the previous successful poll. Returns the number of likers
    /// first seen by this poll. O(|current| log |current|) for the sort
    /// plus a linear merge — the monitor never rescans its full history.
    fn diff_likers(&mut self, likers: &[UserId], now: SimTime) -> usize {
        let mut current: Vec<UserId> = likers.to_vec();
        current.sort_unstable();
        let mut new = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.present.len() || j < current.len() {
            match (self.present.get(i), current.get(j)) {
                (Some(p), Some(c)) if p == c => {
                    i += 1;
                    j += 1;
                }
                // In the previous snapshot but not this one: vanished. A
                // liker that later reappears stays recorded with its first
                // vanish time (entry is never overwritten).
                (Some(p), Some(c)) if p < c => {
                    self.disappeared.entry(*p).or_insert(now);
                    i += 1;
                }
                (Some(_), Some(c)) | (None, Some(c)) => {
                    // In this snapshot but not the previous one: brand-new,
                    // or a previously-vanished liker resurfacing.
                    if !self.first_seen.contains_key(c) {
                        self.first_seen.insert(*c, now);
                        new += 1;
                    }
                    j += 1;
                }
                (Some(p), None) => {
                    self.disappeared.entry(*p).or_insert(now);
                    i += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        self.present = current;
        new
    }

    /// The poll log.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Every liker the crawler ever saw, with observed first-seen times.
    pub fn first_seen(&self) -> &BTreeMap<UserId, SimTime> {
        &self.first_seen
    }

    /// Liker ids in first-seen order (ties broken by id).
    pub fn likers(&self) -> Vec<UserId> {
        let mut v: Vec<(UserId, SimTime)> = self.first_seen.iter().map(|(u, t)| (*u, *t)).collect();
        v.sort_by_key(|(u, t)| (*t, *u));
        v.into_iter().map(|(u, _)| u).collect()
    }

    /// Likers that vanished from the page during monitoring, with the poll
    /// time at which they were first seen missing.
    pub fn disappearances(&self) -> &BTreeMap<UserId, SimTime> {
        &self.disappeared
    }

    /// Poll-side coverage accounting so far (profile-side counters are
    /// filled by the collection pass; see [`CrawlCoverage`]).
    pub fn coverage(&self) -> CrawlCoverage {
        self.coverage
    }

    /// When monitoring stopped (None while still active).
    pub fn stopped_at(&self) -> Option<SimTime> {
        self.stopped_at
    }

    /// Days of monitoring, launch to stop (Table 1's "Monitoring" column).
    pub fn monitoring_days(&self) -> Option<u64> {
        self.stopped_at
            .map(|t| t.saturating_since(self.launched).as_secs().div_ceil(86_400))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_osn::{
        ActorClass, Country, CrawlConfig, Gender, PageCategory, PrivacySettings, Profile,
    };
    use likelab_sim::Rng;

    fn world_with_page(n_users: usize) -> (OsnWorld, PageId) {
        let mut w = OsnWorld::new();
        for _ in 0..n_users {
            w.create_account(
                Profile {
                    gender: Gender::Male,
                    age: 20,
                    country: Country::India,
                    home_region: 0,
                },
                ActorClass::ClickProne,
                PrivacySettings {
                    friend_list_public: true,
                    likes_public: true,
                    searchable: true,
                },
                SimTime::EPOCH,
            );
        }
        let p = w.create_page("h", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        (w, p)
    }

    fn api() -> CrawlApi {
        CrawlApi::new(CrawlConfig::clean(), Rng::seed_from_u64(5))
    }

    /// Drive the monitor poll-by-poll, letting likes land per `like_at`.
    fn run(
        world: &mut OsnWorld,
        page: PageId,
        monitor: &mut PageMonitor,
        mut likes: Vec<(UserId, SimTime)>,
        until: SimTime,
    ) {
        likes.sort_by_key(|(_, t)| *t);
        let mut api = api();
        let mut next = Some(SimTime::EPOCH);
        let mut li = 0;
        while let Some(t) = next {
            if t > until {
                break;
            }
            while li < likes.len() && likes[li].1 <= t {
                world.record_like(likes[li].0, page, likes[li].1);
                li += 1;
            }
            next = monitor.poll(world, &mut api, t);
        }
    }

    #[test]
    fn first_seen_is_quantized_to_polls() {
        let (mut w, p) = world_with_page(3);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        // A like at 0h30 is first seen at the 2h poll.
        let likes = vec![(UserId(0), SimTime::EPOCH + SimDuration::minutes(30))];
        run(&mut w, p, &mut m, likes, SimTime::at_day(1));
        assert_eq!(
            m.first_seen()[&UserId(0)],
            SimTime::EPOCH + SimDuration::hours(2)
        );
    }

    #[test]
    fn stops_after_a_quiet_week_post_campaign() {
        let (mut w, p) = world_with_page(2);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let likes = vec![
            (UserId(0), SimTime::at_day(1)),
            (UserId(1), SimTime::at_day(14)),
        ];
        run(&mut w, p, &mut m, likes, SimTime::at_day(60));
        let stop = m.stopped_at().expect("must stop");
        // Last like day 14 (seen during campaign); campaign ends day 15;
        // quiet week expires just past day 21; daily polls → day 22.
        assert_eq!(stop.day(), 22);
        assert_eq!(m.monitoring_days(), Some(22));
    }

    #[test]
    fn late_likes_extend_monitoring() {
        let (mut w, p) = world_with_page(2);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let likes = vec![
            (UserId(0), SimTime::at_day(1)),
            (UserId(1), SimTime::at_day(20)), // post-campaign straggler
        ];
        run(&mut w, p, &mut m, likes, SimTime::at_day(60));
        let stop = m.stopped_at().unwrap();
        assert!(stop.day() >= 27, "straggler resets the quiet clock: {stop}");
        assert_eq!(m.likers().len(), 2);
    }

    #[test]
    fn poll_cadence_switches_after_campaign() {
        let (mut w, p) = world_with_page(1);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(2),
            CrawlerConfig::default(),
        );
        let mut api = api();
        // Keep a like trickle so it doesn't stop.
        w.record_like(UserId(0), p, SimTime::EPOCH);
        let next = m.poll(&w, &mut api, SimTime::EPOCH).unwrap();
        assert_eq!(next, SimTime::EPOCH + SimDuration::hours(2), "active: 2h");
        let next = m.poll(&w, &mut api, SimTime::at_day(3)).unwrap();
        assert_eq!(next, SimTime::at_day(4), "settled: daily");
    }

    #[test]
    fn failures_are_recorded_and_carry_last_count() {
        let (mut w, p) = world_with_page(1);
        w.record_like(UserId(0), p, SimTime::EPOCH);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let mut api = CrawlApi::new(CrawlConfig::noise(1.0), Rng::seed_from_u64(1));
        m.poll(&w, &mut api, SimTime::EPOCH + SimDuration::hours(2));
        assert!(m.observations()[0].failed);
        assert_eq!(m.observations()[0].total_likes, 0);
        let mut ok_api = api_ok();
        m.poll(&w, &mut ok_api, SimTime::EPOCH + SimDuration::hours(4));
        let mut bad_api = CrawlApi::new(CrawlConfig::noise(1.0), Rng::seed_from_u64(2));
        m.poll(&w, &mut bad_api, SimTime::EPOCH + SimDuration::hours(6));
        let last = m.observations().last().unwrap();
        assert!(last.failed);
        assert_eq!(last.total_likes, 1, "carries the last good count");
        let cov = m.coverage();
        assert_eq!(cov.polls, 3);
        assert_eq!(cov.failed_polls, 2);
    }

    fn api_ok() -> CrawlApi {
        CrawlApi::new(CrawlConfig::clean(), Rng::seed_from_u64(9))
    }

    #[test]
    fn likers_ordered_by_first_seen() {
        let (mut w, p) = world_with_page(3);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let likes = vec![
            (UserId(2), SimTime::at_day(3)),
            (UserId(0), SimTime::at_day(1)),
            (UserId(1), SimTime::at_day(2)),
        ];
        run(&mut w, p, &mut m, likes, SimTime::at_day(30));
        assert_eq!(m.likers(), vec![UserId(0), UserId(1), UserId(2)]);
    }

    #[test]
    fn disappearances_are_tracked_live() {
        let (mut w, p) = world_with_page(3);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let mut api = api_ok();
        for i in 0..3 {
            w.record_like(UserId(i), p, SimTime::at_day(1));
        }
        m.poll(&w, &mut api, SimTime::at_day(2));
        assert_eq!(m.disappearances().len(), 0);
        // Account 1 is terminated: its like vanishes from the page.
        w.terminate_account(UserId(1), SimTime::at_day(3));
        m.poll(&w, &mut api, SimTime::at_day(4));
        assert_eq!(m.disappearances().len(), 1);
        assert_eq!(m.disappearances()[&UserId(1)], SimTime::at_day(4));
        let last = m.observations().last().unwrap();
        assert_eq!(last.disappeared_total, 1);
        assert_eq!(last.total_likes, 2);
        // The liker stays in first_seen: the crawler knew them.
        assert!(m.first_seen().contains_key(&UserId(1)));
    }

    #[test]
    fn reappearing_liker_keeps_first_vanish_time_and_is_not_new() {
        let (mut w, p) = world_with_page(2);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let mut api = api_ok();
        w.record_like(UserId(0), p, SimTime::at_day(1));
        w.record_like(UserId(1), p, SimTime::at_day(1));
        m.poll(&w, &mut api, SimTime::at_day(2));
        w.terminate_account(UserId(1), SimTime::at_day(3));
        m.poll(&w, &mut api, SimTime::at_day(4));
        assert_eq!(m.disappearances()[&UserId(1)], SimTime::at_day(4));
        // The account comes back (reinstated) — like visible again.
        w.reinstate_account(UserId(1));
        m.poll(&w, &mut api, SimTime::at_day(6));
        let last = m.observations().last().unwrap();
        assert_eq!(last.new_likers, 0, "reappearance is not a new like");
        assert_eq!(last.total_likes, 2);
        assert_eq!(
            m.disappearances()[&UserId(1)],
            SimTime::at_day(4),
            "first vanish time is preserved"
        );
        // And a second vanish does not overwrite it either.
        w.terminate_account(UserId(1), SimTime::at_day(7));
        m.poll(&w, &mut api, SimTime::at_day(8));
        assert_eq!(m.disappearances()[&UserId(1)], SimTime::at_day(4));
    }

    /// Regression for the quiet-stop bug: a week-long outage must not end
    /// monitoring — likes arriving during (or after) the outage are still
    /// collected once the crawl surface recovers.
    #[test]
    fn outage_week_does_not_stop_monitoring() {
        let (mut w, p) = world_with_page(3);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let mut good = api_ok();
        let mut bad = CrawlApi::new(CrawlConfig::noise(1.0), Rng::seed_from_u64(7));
        w.record_like(UserId(0), p, SimTime::at_day(1));
        let mut next = m.poll(&w, &mut good, SimTime::at_day(2)).unwrap();
        // Days 16..23: every poll fails — a full post-campaign quiet week
        // of nothing but crawl errors.
        next = next.max(SimTime::at_day(16));
        while next < SimTime::at_day(23) {
            next = m
                .poll(&w, &mut bad, next)
                .expect("a failed-poll week must not stop monitoring");
        }
        assert!(m.stopped_at().is_none());
        // Likes arrived while the crawler was blind; the first successful
        // poll picks them up and monitoring continues.
        w.record_like(UserId(1), p, SimTime::at_day(20));
        w.record_like(UserId(2), p, SimTime::at_day(22));
        let after = m.poll(&w, &mut good, next).expect("still monitoring");
        assert!(m.stopped_at().is_none());
        assert_eq!(m.likers().len(), 3, "outage-era likes are recovered");
        assert!(after > next);
        assert!(m.coverage().failed_polls > 0);
    }

    #[test]
    fn circuit_breaker_trips_to_catchup_cadence_and_recovers() {
        let (mut w, p) = world_with_page(1);
        w.record_like(UserId(0), p, SimTime::EPOCH);
        let config = CrawlerConfig::default();
        let mut m = PageMonitor::new(p, SimTime::EPOCH, SimTime::at_day(15), config);
        let mut bad = CrawlApi::new(CrawlConfig::noise(1.0), Rng::seed_from_u64(3));
        let mut t = SimTime::at_day(1);
        for i in 0..config.breaker.trip_after {
            let next = m.poll(&w, &mut bad, t).unwrap();
            let expect = if i + 1 == config.breaker.trip_after {
                t + config.breaker.cooldown
            } else {
                t + config.active_interval
            };
            assert_eq!(next, expect, "poll {i}");
            t = next;
        }
        assert_eq!(m.coverage().circuit_trips, 1);
        // While open, stays on the cooldown cadence without re-counting.
        let next = m.poll(&w, &mut bad, t).unwrap();
        assert_eq!(next, t + config.breaker.cooldown);
        assert_eq!(m.coverage().circuit_trips, 1, "one trip, not one per poll");
        // A successful catch-up poll closes the breaker.
        let mut good = api_ok();
        let next2 = m.poll(&w, &mut good, next).unwrap();
        assert_eq!(next2, next + config.active_interval, "normal cadence back");
    }

    #[test]
    fn hard_stop_bounds_a_permanent_outage() {
        let (w, p) = world_with_page(1);
        let config = CrawlerConfig::default();
        let mut m = PageMonitor::new(p, SimTime::EPOCH, SimTime::at_day(15), config);
        let mut bad = CrawlApi::new(CrawlConfig::noise(1.0), Rng::seed_from_u64(4));
        let mut next = Some(SimTime::EPOCH);
        let mut polls = 0u32;
        while let Some(t) = next {
            next = m.poll(&w, &mut bad, t);
            polls += 1;
            assert!(polls < 100_000, "monitor must terminate");
        }
        let stop = m.stopped_at().expect("hard stop fired");
        assert_eq!(stop.day(), 15 + config.hard_stop.as_secs() / 86_400);
    }

    #[test]
    fn stopped_monitor_refuses_polls() {
        let (w, p) = world_with_page(1);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(1),
            CrawlerConfig::default(),
        );
        let mut a = api_ok();
        // Way past campaign end with zero likes → stops at first poll.
        assert_eq!(m.poll(&w, &mut a, SimTime::at_day(30)), None);
        assert!(m.stopped_at().is_some());
        assert_eq!(m.poll(&w, &mut a, SimTime::at_day(31)), None);
    }
}
