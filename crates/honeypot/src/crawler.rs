//! The monitoring crawler.
//!
//! The paper "monitored the liking activity on the honeypot pages by
//! crawling them, using Selenium web driver, every 2 hours to check for new
//! likes. At the end of the campaigns, we reduced the monitoring frequency
//! to once a day, and stopped monitoring when a page did not receive a like
//! for more than a week." [`PageMonitor`] is that loop, driven by the
//! simulation clock; it owns the *observed* first-seen time of every liker —
//! the sampled series behind Figure 2.

use likelab_graph::{PageId, UserId};
use likelab_osn::{CrawlApi, OsnWorld};
use likelab_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Crawler cadence configuration (defaults are the paper's).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CrawlerConfig {
    /// Poll interval while the campaign runs.
    pub active_interval: SimDuration,
    /// Poll interval after the campaign ends.
    pub settled_interval: SimDuration,
    /// Stop after this long without a new like (post-campaign).
    pub quiet_stop: SimDuration,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            active_interval: SimDuration::hours(2),
            settled_interval: SimDuration::DAY,
            quiet_stop: SimDuration::WEEK,
        }
    }
}

/// One crawl snapshot of a page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// Poll time.
    pub at: SimTime,
    /// Total visible likes at that moment.
    pub total_likes: usize,
    /// Likers first seen by this poll.
    pub new_likers: usize,
    /// Previously seen likers missing from this poll (cumulative count of
    /// distinct disappearances so far — removed likes, the paper's named
    /// future-work observation).
    pub disappeared_total: usize,
    /// Whether the poll failed (transient crawl error).
    pub failed: bool,
}

/// The monitor of one honeypot page.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PageMonitor {
    /// The monitored page.
    pub page: PageId,
    config: CrawlerConfig,
    campaign_end: SimTime,
    launched: SimTime,
    last_new_like: SimTime,
    observations: Vec<Observation>,
    first_seen: BTreeMap<UserId, SimTime>,
    disappeared: BTreeMap<UserId, SimTime>,
    stopped_at: Option<SimTime>,
}

impl PageMonitor {
    /// Start monitoring `page`; `campaign_end` is when the paid promotion
    /// ends (the crawler slows down after it).
    pub fn new(
        page: PageId,
        launched: SimTime,
        campaign_end: SimTime,
        config: CrawlerConfig,
    ) -> Self {
        PageMonitor {
            page,
            config,
            campaign_end,
            launched,
            last_new_like: launched,
            observations: Vec::new(),
            first_seen: BTreeMap::new(),
            disappeared: BTreeMap::new(),
            stopped_at: None,
        }
    }

    /// Execute one poll at `now`. Returns the time of the next poll, or
    /// `None` when monitoring has stopped.
    pub fn poll(&mut self, world: &OsnWorld, api: &mut CrawlApi, now: SimTime) -> Option<SimTime> {
        if self.stopped_at.is_some() {
            return None;
        }
        match api.page_likers(world, self.page) {
            Ok(likers) => {
                let mut new = 0usize;
                let current: std::collections::BTreeSet<UserId> = likers.iter().copied().collect();
                for u in &likers {
                    if !self.first_seen.contains_key(u) {
                        self.first_seen.insert(*u, now);
                        new += 1;
                    }
                }
                // Removed likes: previously seen likers no longer on the
                // page (terminated accounts, retracted likes). A liker that
                // later reappears stays recorded with its first vanish time.
                for u in self.first_seen.keys() {
                    if !current.contains(u) && !self.disappeared.contains_key(u) {
                        self.disappeared.insert(*u, now);
                    }
                }
                if new > 0 {
                    self.last_new_like = now;
                }
                self.observations.push(Observation {
                    at: now,
                    total_likes: likers.len(),
                    new_likers: new,
                    disappeared_total: self.disappeared.len(),
                    failed: false,
                });
            }
            Err(_) => {
                self.observations.push(Observation {
                    at: now,
                    total_likes: self
                        .observations
                        .iter()
                        .rev()
                        .find(|o| !o.failed)
                        .map(|o| o.total_likes)
                        .unwrap_or(0),
                    new_likers: 0,
                    disappeared_total: self.disappeared.len(),
                    failed: true,
                });
            }
        }
        // Stop rule: a quiet week after the campaign (or after the last
        // straggler like, whichever is later) ends monitoring. This is what
        // turns the paper's 15-day campaigns into 22-day monitoring windows.
        let quiet_since = self.last_new_like.max(self.campaign_end);
        if now > self.campaign_end && now.saturating_since(quiet_since) >= self.config.quiet_stop {
            self.stopped_at = Some(now);
            return None;
        }
        let interval = if now < self.campaign_end {
            self.config.active_interval
        } else {
            self.config.settled_interval
        };
        Some(now + interval)
    }

    /// The poll log.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Every liker the crawler ever saw, with observed first-seen times.
    pub fn first_seen(&self) -> &BTreeMap<UserId, SimTime> {
        &self.first_seen
    }

    /// Liker ids in first-seen order (ties broken by id).
    pub fn likers(&self) -> Vec<UserId> {
        let mut v: Vec<(UserId, SimTime)> = self.first_seen.iter().map(|(u, t)| (*u, *t)).collect();
        v.sort_by_key(|(u, t)| (*t, *u));
        v.into_iter().map(|(u, _)| u).collect()
    }

    /// Likers that vanished from the page during monitoring, with the poll
    /// time at which they were first seen missing.
    pub fn disappearances(&self) -> &BTreeMap<UserId, SimTime> {
        &self.disappeared
    }

    /// When monitoring stopped (None while still active).
    pub fn stopped_at(&self) -> Option<SimTime> {
        self.stopped_at
    }

    /// Days of monitoring, launch to stop (Table 1's "Monitoring" column).
    pub fn monitoring_days(&self) -> Option<u64> {
        self.stopped_at
            .map(|t| t.saturating_since(self.launched).as_secs().div_ceil(86_400))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likelab_osn::{
        ActorClass, Country, CrawlConfig, Gender, PageCategory, PrivacySettings, Profile,
    };
    use likelab_sim::Rng;

    fn world_with_page(n_users: usize) -> (OsnWorld, PageId) {
        let mut w = OsnWorld::new();
        for _ in 0..n_users {
            w.create_account(
                Profile {
                    gender: Gender::Male,
                    age: 20,
                    country: Country::India,
                    home_region: 0,
                },
                ActorClass::ClickProne,
                PrivacySettings {
                    friend_list_public: true,
                    likes_public: true,
                    searchable: true,
                },
                SimTime::EPOCH,
            );
        }
        let p = w.create_page("h", "", None, PageCategory::Honeypot, SimTime::EPOCH);
        (w, p)
    }

    fn api() -> CrawlApi {
        CrawlApi::new(CrawlConfig { failure_prob: 0.0 }, Rng::seed_from_u64(5))
    }

    /// Drive the monitor poll-by-poll, letting likes land per `like_at`.
    fn run(
        world: &mut OsnWorld,
        page: PageId,
        monitor: &mut PageMonitor,
        mut likes: Vec<(UserId, SimTime)>,
        until: SimTime,
    ) {
        likes.sort_by_key(|(_, t)| *t);
        let mut api = api();
        let mut next = Some(SimTime::EPOCH);
        let mut li = 0;
        while let Some(t) = next {
            if t > until {
                break;
            }
            while li < likes.len() && likes[li].1 <= t {
                world.record_like(likes[li].0, page, likes[li].1);
                li += 1;
            }
            next = monitor.poll(world, &mut api, t);
        }
    }

    #[test]
    fn first_seen_is_quantized_to_polls() {
        let (mut w, p) = world_with_page(3);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        // A like at 0h30 is first seen at the 2h poll.
        let likes = vec![(UserId(0), SimTime::EPOCH + SimDuration::minutes(30))];
        run(&mut w, p, &mut m, likes, SimTime::at_day(1));
        assert_eq!(
            m.first_seen()[&UserId(0)],
            SimTime::EPOCH + SimDuration::hours(2)
        );
    }

    #[test]
    fn stops_after_a_quiet_week_post_campaign() {
        let (mut w, p) = world_with_page(2);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let likes = vec![
            (UserId(0), SimTime::at_day(1)),
            (UserId(1), SimTime::at_day(14)),
        ];
        run(&mut w, p, &mut m, likes, SimTime::at_day(60));
        let stop = m.stopped_at().expect("must stop");
        // Last like day 14 (seen during campaign); campaign ends day 15;
        // quiet week expires just past day 21; daily polls → day 22.
        assert_eq!(stop.day(), 22);
        assert_eq!(m.monitoring_days(), Some(22));
    }

    #[test]
    fn late_likes_extend_monitoring() {
        let (mut w, p) = world_with_page(2);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let likes = vec![
            (UserId(0), SimTime::at_day(1)),
            (UserId(1), SimTime::at_day(20)), // post-campaign straggler
        ];
        run(&mut w, p, &mut m, likes, SimTime::at_day(60));
        let stop = m.stopped_at().unwrap();
        assert!(stop.day() >= 27, "straggler resets the quiet clock: {stop}");
        assert_eq!(m.likers().len(), 2);
    }

    #[test]
    fn poll_cadence_switches_after_campaign() {
        let (mut w, p) = world_with_page(1);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(2),
            CrawlerConfig::default(),
        );
        let mut api = api();
        // Keep a like trickle so it doesn't stop.
        w.record_like(UserId(0), p, SimTime::EPOCH);
        let next = m.poll(&w, &mut api, SimTime::EPOCH).unwrap();
        assert_eq!(next, SimTime::EPOCH + SimDuration::hours(2), "active: 2h");
        let next = m.poll(&w, &mut api, SimTime::at_day(3)).unwrap();
        assert_eq!(next, SimTime::at_day(4), "settled: daily");
    }

    #[test]
    fn failures_are_recorded_and_carry_last_count() {
        let (mut w, p) = world_with_page(1);
        w.record_like(UserId(0), p, SimTime::EPOCH);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let mut api = CrawlApi::new(CrawlConfig { failure_prob: 1.0 }, Rng::seed_from_u64(1));
        m.poll(&w, &mut api, SimTime::EPOCH + SimDuration::hours(2));
        assert!(m.observations()[0].failed);
        assert_eq!(m.observations()[0].total_likes, 0);
        let mut ok_api = api_ok();
        m.poll(&w, &mut ok_api, SimTime::EPOCH + SimDuration::hours(4));
        let mut bad_api = CrawlApi::new(CrawlConfig { failure_prob: 1.0 }, Rng::seed_from_u64(2));
        m.poll(&w, &mut bad_api, SimTime::EPOCH + SimDuration::hours(6));
        let last = m.observations().last().unwrap();
        assert!(last.failed);
        assert_eq!(last.total_likes, 1, "carries the last good count");
    }

    fn api_ok() -> CrawlApi {
        CrawlApi::new(CrawlConfig { failure_prob: 0.0 }, Rng::seed_from_u64(9))
    }

    #[test]
    fn likers_ordered_by_first_seen() {
        let (mut w, p) = world_with_page(3);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let likes = vec![
            (UserId(2), SimTime::at_day(3)),
            (UserId(0), SimTime::at_day(1)),
            (UserId(1), SimTime::at_day(2)),
        ];
        run(&mut w, p, &mut m, likes, SimTime::at_day(30));
        assert_eq!(m.likers(), vec![UserId(0), UserId(1), UserId(2)]);
    }

    #[test]
    fn disappearances_are_tracked_live() {
        let (mut w, p) = world_with_page(3);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let mut api = api_ok();
        for i in 0..3 {
            w.record_like(UserId(i), p, SimTime::at_day(1));
        }
        m.poll(&w, &mut api, SimTime::at_day(2));
        assert_eq!(m.disappearances().len(), 0);
        // Account 1 is terminated: its like vanishes from the page.
        w.terminate_account(UserId(1), SimTime::at_day(3));
        m.poll(&w, &mut api, SimTime::at_day(4));
        assert_eq!(m.disappearances().len(), 1);
        assert_eq!(m.disappearances()[&UserId(1)], SimTime::at_day(4));
        let last = m.observations().last().unwrap();
        assert_eq!(last.disappeared_total, 1);
        assert_eq!(last.total_likes, 2);
        // The liker stays in first_seen: the crawler knew them.
        assert!(m.first_seen().contains_key(&UserId(1)));
    }

    #[test]
    fn stopped_monitor_refuses_polls() {
        let (w, p) = world_with_page(1);
        let mut m = PageMonitor::new(
            p,
            SimTime::EPOCH,
            SimTime::at_day(1),
            CrawlerConfig::default(),
        );
        let mut a = api_ok();
        // Way past campaign end with zero likes → stops at first poll.
        assert_eq!(m.poll(&w, &mut a, SimTime::at_day(30)), None);
        assert!(m.stopped_at().is_some());
        assert_eq!(m.poll(&w, &mut a, SimTime::at_day(31)), None);
    }
}
