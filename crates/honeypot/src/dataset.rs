//! The study dataset: what ended up on the authors' (encrypted) disk.
//!
//! One [`CampaignData`] per honeypot page — observations, liker records,
//! the admin report, the month-later termination count — plus the baseline
//! directory sample used as Figure 4's reference, all bundled into a
//! [`Dataset`] the analysis crate consumes.

use crate::campaign::CampaignSpec;
use crate::collector::LikerRecord;
use crate::crawler::{CrawlCoverage, Observation};
use likelab_graph::{PageId, UserId};
use likelab_osn::AudienceReport;
use likelab_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Everything collected for one campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignData {
    /// The campaign spec (label, promotion, pricing).
    pub spec: CampaignSpec,
    /// The honeypot page.
    pub page: PageId,
    /// Crawl snapshots.
    pub observations: Vec<Observation>,
    /// Collected liker records, in first-seen order.
    pub likers: Vec<LikerRecord>,
    /// The page-admin audience report.
    pub report: AudienceReport,
    /// Days the page was monitored (None for inactive campaigns).
    pub monitoring_days: Option<u64>,
    /// Liker accounts found terminated a month after the campaigns.
    pub terminated_after_month: usize,
    /// Liker accounts whose month-later probe never got an answer —
    /// neither confirmed alive nor terminated.
    pub termination_unknown: usize,
    /// True when the provider took payment and delivered nothing
    /// (BL-ALL and MS-ALL in the paper).
    pub inactive: bool,
    /// Crawl coverage accounting for this campaign: polls attempted and
    /// lost, circuit-breaker trips, profile-collection outcomes.
    pub coverage: CrawlCoverage,
}

impl CampaignData {
    /// Total likes garnered (Table 1's "#Likes").
    pub fn like_count(&self) -> usize {
        self.likers.len()
    }

    /// Liker ids in first-seen order.
    pub fn liker_ids(&self) -> Vec<UserId> {
        self.likers.iter().map(|l| l.user).collect()
    }
}

/// One baseline-sample record (a random directory profile).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BaselineRecord {
    /// The sampled user.
    pub user: UserId,
    /// Their page-like count at sampling time.
    pub like_count: usize,
}

/// The full study dataset.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Per-campaign data, in Table 1 order.
    pub campaigns: Vec<CampaignData>,
    /// The random baseline sample (2000 users in the paper).
    pub baseline: Vec<BaselineRecord>,
    /// Campaign launch time (all campaigns launched together).
    pub launch: SimTime,
    /// The global-platform audience report (Table 2's last row).
    pub global_report: AudienceReport,
}

impl Dataset {
    /// A campaign by label.
    pub fn campaign(&self, label: &str) -> Option<&CampaignData> {
        self.campaigns.iter().find(|c| c.spec.label == label)
    }

    /// Total likes across all campaigns (the paper collected 6,292).
    pub fn total_likes(&self) -> usize {
        self.campaigns.iter().map(CampaignData::like_count).sum()
    }

    /// Total likes across farm campaigns only (paper: 4,523).
    pub fn farm_likes(&self) -> usize {
        self.campaigns
            .iter()
            .filter(|c| !c.spec.is_platform_ads())
            .map(CampaignData::like_count)
            .sum()
    }

    /// Total likes across platform-ad campaigns only (paper: 1,769).
    pub fn ad_likes(&self) -> usize {
        self.campaigns
            .iter()
            .filter(|c| c.spec.is_platform_ads())
            .map(CampaignData::like_count)
            .sum()
    }

    /// Total friendship relations observed on likers' public lists — the
    /// full list lengths the crawler saw, including friends beyond the
    /// simulated window (the paper reports over 1 million such entries).
    pub fn observed_friendships(&self) -> usize {
        self.campaigns
            .iter()
            .flat_map(|c| c.likers.iter())
            .filter_map(|l| l.total_friend_count)
            .sum()
    }

    /// Total page likes observed on likers' public like lists (the paper's
    /// "more than 6.3 million total likes by users who liked our pages").
    pub fn observed_page_likes(&self) -> usize {
        self.campaigns
            .iter()
            .flat_map(|c| c.likers.iter())
            .filter_map(|l| l.liked_pages.as_ref().map(Vec::len))
            .sum()
    }

    /// Aggregate crawl coverage across all campaigns.
    pub fn total_coverage(&self) -> CrawlCoverage {
        let mut total = CrawlCoverage::default();
        for c in &self.campaigns {
            total.polls += c.coverage.polls;
            total.failed_polls += c.coverage.failed_polls;
            total.rate_limited_polls += c.coverage.rate_limited_polls;
            total.outage_polls += c.coverage.outage_polls;
            total.circuit_trips += c.coverage.circuit_trips;
            total.profiles_complete += c.coverage.profiles_complete;
            total.profiles_gone += c.coverage.profiles_gone;
            total.profiles_gave_up += c.coverage.profiles_gave_up;
        }
        total
    }

    /// Serialize to pretty JSON (the machine-readable export).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Promotion;
    use likelab_osn::Targeting;

    fn liker(id: u32, n_friends: usize, n_pages: usize, public: bool) -> LikerRecord {
        LikerRecord {
            user: UserId(id),
            first_seen: SimTime::at_day(1),
            friends: public.then(|| (0..n_friends as u32).map(UserId).collect()),
            total_friend_count: public.then_some(n_friends),
            liked_pages: public.then(|| (0..n_pages as u32).map(PageId).collect()),
            gone_at_collection: false,
            crawl_outcome: crate::collector::CrawlOutcome::Complete,
        }
    }

    fn data(label: &str, ads: bool, likers: Vec<LikerRecord>) -> CampaignData {
        CampaignData {
            spec: CampaignSpec {
                label: label.into(),
                promotion: if ads {
                    Promotion::PlatformAds {
                        targeting: Targeting::worldwide(),
                        daily_budget_cents: 600.0,
                        duration_days: 15,
                    }
                } else {
                    Promotion::FarmOrder {
                        farm: 0,
                        region: likelab_farms::Region::Worldwide,
                        likes: 1_000,
                        price_cents: 7_000,
                        advertised_duration: "15 days".into(),
                    }
                },
            },
            page: PageId(0),
            observations: vec![],
            likers,
            report: AudienceReport::default(),
            monitoring_days: Some(22),
            terminated_after_month: 0,
            termination_unknown: 0,
            inactive: false,
            coverage: CrawlCoverage::default(),
        }
    }

    fn dataset() -> Dataset {
        Dataset {
            campaigns: vec![
                data(
                    "FB-ALL",
                    true,
                    vec![liker(0, 10, 100, true), liker(1, 5, 50, false)],
                ),
                data("BL-USA", false, vec![liker(2, 800, 60, true)]),
            ],
            baseline: vec![BaselineRecord {
                user: UserId(9),
                like_count: 34,
            }],
            launch: SimTime::at_day(100),
            global_report: AudienceReport::default(),
        }
    }

    #[test]
    fn totals_split_by_promotion_kind() {
        let d = dataset();
        assert_eq!(d.total_likes(), 3);
        assert_eq!(d.ad_likes(), 2);
        assert_eq!(d.farm_likes(), 1);
    }

    #[test]
    fn observed_aggregates_skip_private_profiles() {
        let d = dataset();
        // Public profiles: 10 + 800 friends reported; the private one is
        // invisible.
        assert_eq!(d.observed_friendships(), 810);
        assert_eq!(d.observed_page_likes(), 160);
    }

    #[test]
    fn lookup_by_label() {
        let d = dataset();
        assert_eq!(d.campaign("BL-USA").unwrap().like_count(), 1);
        assert!(d.campaign("XX").is_none());
    }

    #[test]
    fn json_round_trip() {
        let d = dataset();
        let json = d.to_json().unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total_likes(), d.total_likes());
        assert_eq!(back.campaigns[0].spec.label, "FB-ALL");
    }
}
