//! # likelab-honeypot — the paper's measurement methodology
//!
//! The instrumented side of the study: honeypot pages with deflection
//! disclaimers and per-page admin accounts ([`page`]), the campaign roster
//! ([`campaign`]), the Selenium-equivalent monitoring crawler with the
//! paper's exact cadence — every 2 hours during campaigns, daily after,
//! stop after a quiet week ([`crawler`]) — the liker-profile collector and
//! the month-later termination recheck ([`collector`]), and the resulting
//! dataset the analysis pipeline consumes ([`dataset`]).

pub mod anonymize;
pub mod campaign;
pub mod collector;
pub mod crawler;
pub mod dataset;
pub mod page;

pub use anonymize::{anonymize, suppress_small_buckets, Pseudonymizer};
pub use campaign::{CampaignSpec, Promotion};
pub use collector::{
    check_terminations, collect_profiles, CollectionConfig, CrawlOutcome, LikerRecord,
    TerminationProbe,
};
pub use crawler::{CircuitBreakerConfig, CrawlCoverage, CrawlerConfig, Observation, PageMonitor};
pub use dataset::{BaselineRecord, CampaignData, Dataset};
pub use page::{deploy_honeypot, HONEYPOT_DISCLAIMER, HONEYPOT_NAME};
