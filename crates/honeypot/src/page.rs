//! Honeypot page deployment.
//!
//! The paper created 13 pages named "Virtual Electricity", intentionally
//! empty, each under a distinct administrator account, with a description
//! designed to deflect genuine interest.

use likelab_graph::{PageId, UserId};
use likelab_osn::{ActorClass, Country, Gender, OsnWorld, PageCategory, PrivacySettings, Profile};
use likelab_sim::SimTime;

/// The honeypot page name used throughout the study.
pub const HONEYPOT_NAME: &str = "Virtual Electricity";

/// The deflection disclaimer in every honeypot's description.
pub const HONEYPOT_DISCLAIMER: &str = "This is not a real page, so please do not like it.";

/// Create one honeypot page plus its dedicated administrator account
/// ("using a different administrator account (owner) for each page").
pub fn deploy_honeypot(world: &mut OsnWorld, at: SimTime) -> (PageId, UserId) {
    let owner = world.create_account(
        Profile {
            gender: Gender::Male,
            age: 30,
            country: Country::Usa,
            home_region: 0,
        },
        ActorClass::Organic,
        PrivacySettings {
            friend_list_public: false,
            likes_public: false,
            searchable: false,
        },
        at,
    );
    let page = world.create_page(
        HONEYPOT_NAME,
        HONEYPOT_DISCLAIMER,
        Some(owner),
        PageCategory::Honeypot,
        at,
    );
    (page, owner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honeypot_is_branded_and_owned() {
        let mut w = OsnWorld::new();
        let (page, owner) = deploy_honeypot(&mut w, SimTime::at_day(5));
        let p = w.page(page);
        assert!(p.is_honeypot());
        assert_eq!(p.name, HONEYPOT_NAME);
        assert!(p.description.contains("do not like it"));
        assert_eq!(p.owner, Some(owner));
        assert_eq!(p.created_at, SimTime::at_day(5));
    }

    #[test]
    fn each_deployment_gets_its_own_admin() {
        let mut w = OsnWorld::new();
        let (_, o1) = deploy_honeypot(&mut w, SimTime::EPOCH);
        let (_, o2) = deploy_honeypot(&mut w, SimTime::EPOCH);
        assert_ne!(o1, o2);
    }
}
