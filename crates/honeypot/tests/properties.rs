//! Property-based tests of the crawler's observation invariants.

use likelab_graph::{PageId, UserId};
use likelab_honeypot::{CrawlerConfig, PageMonitor};
use likelab_osn::{
    ActorClass, Country, CrawlApi, CrawlConfig, FaultProfile, Gender, OsnWorld, OutageRegime,
    PageCategory, PrivacySettings, Profile, RateLimitRegime,
};
use likelab_sim::{Rng, SimDuration, SimTime};
use proptest::prelude::*;

fn world_with(n: u32) -> (OsnWorld, PageId) {
    let mut w = OsnWorld::new();
    for _ in 0..n {
        w.create_account(
            Profile {
                gender: Gender::Male,
                age: 21,
                country: Country::India,
                home_region: 0,
            },
            ActorClass::ClickProne,
            PrivacySettings {
                friend_list_public: true,
                likes_public: true,
                searchable: true,
            },
            SimTime::EPOCH,
        );
    }
    let p = w.create_page("h", "", None, PageCategory::Honeypot, SimTime::EPOCH);
    (w, p)
}

proptest! {
    /// Whatever the like schedule, the crawler's view is sound: first-seen
    /// times are poll times at or after the like, counts are monotone in
    /// truth, and every liker the platform holds is eventually seen.
    #[test]
    fn crawler_observation_is_sound(
        likes in prop::collection::vec((0u32..40, 0u64..15 * 86_400), 1..60),
    ) {
        let (mut world, page) = world_with(40);
        let mut monitor = PageMonitor::new(
            page,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let mut api = CrawlApi::new(CrawlConfig::clean(), Rng::seed_from_u64(1));
        let mut schedule: Vec<(u32, u64)> = likes.clone();
        schedule.sort_by_key(|(_, t)| *t);
        let mut li = 0usize;
        let mut next = Some(SimTime::EPOCH);
        let mut like_time: std::collections::HashMap<UserId, SimTime> = Default::default();
        while let Some(now) = next {
            if now > SimTime::at_day(40) {
                break;
            }
            while li < schedule.len() && SimTime::from_secs(schedule[li].1) <= now {
                let (u, t) = schedule[li];
                if world.record_like(UserId(u), page, SimTime::from_secs(t)) {
                    like_time.entry(UserId(u)).or_insert(SimTime::from_secs(t));
                }
                li += 1;
            }
            next = monitor.poll(&world, &mut api, now);
        }
        // Every real liker was seen, at or after their like time.
        for (u, t) in &like_time {
            let seen = monitor.first_seen().get(u).copied()
                .unwrap_or_else(|| panic!("liker {u} never seen"));
            prop_assert!(seen >= *t);
            prop_assert!(
                seen.since(*t) <= SimDuration::days(1),
                "lag bounded by the settled interval"
            );
        }
        prop_assert_eq!(monitor.first_seen().len(), like_time.len(), "no phantoms");
        // Observation totals never exceed the number of distinct likers and
        // only grow (no disappearances here — nobody is terminated).
        let mut last = 0usize;
        for o in monitor.observations() {
            prop_assert!(o.total_likes <= like_time.len());
            prop_assert!(o.total_likes >= last);
            prop_assert_eq!(o.disappeared_total, 0);
            last = o.total_likes;
        }
        // The monitor stopped (the schedule is finite).
        prop_assert!(monitor.stopped_at().is_some());
    }

    /// Terminations during monitoring surface as disappearances, and the
    /// disappearance counter is monotone.
    #[test]
    fn disappearance_counter_is_monotone(
        n_likers in 2u32..30,
        kill in prop::collection::vec(0u32..30, 1..10),
    ) {
        let (mut world, page) = world_with(30);
        for u in 0..n_likers {
            world.record_like(UserId(u), page, SimTime::EPOCH + SimDuration::hours(1));
        }
        let mut monitor = PageMonitor::new(
            page,
            SimTime::EPOCH,
            SimTime::at_day(15),
            CrawlerConfig::default(),
        );
        let mut api = CrawlApi::new(CrawlConfig::clean(), Rng::seed_from_u64(2));
        let mut next = monitor.poll(&world, &mut api, SimTime::EPOCH + SimDuration::hours(2));
        let mut kills = kill.iter().filter(|k| **k < n_likers);
        let mut day = 1u64;
        while let Some(now) = next {
            if now > SimTime::at_day(30) {
                break;
            }
            if now.day() >= day {
                if let Some(k) = kills.next() {
                    world.terminate_account(UserId(*k), now);
                }
                day = now.day() + 1;
            }
            next = monitor.poll(&world, &mut api, now);
        }
        let series: Vec<usize> = monitor
            .observations()
            .iter()
            .map(|o| o.disappeared_total)
            .collect();
        prop_assert!(series.windows(2).all(|w| w[0] <= w[1]));
        // Everyone recorded as disappeared was really terminated.
        for u in monitor.disappearances().keys() {
            prop_assert!(!world.account(*u).is_active());
        }
    }

    /// Chaos: under *any* fault profile — random noise, rate limits,
    /// outages — the monitor never stops while the campaign is active, the
    /// request accounting stays consistent (`requests == successes +
    /// failures`), and the whole run is a pure function of the profile and
    /// seed. (The byte-for-byte "faults disabled reproduces the golden
    /// checklist" half of this invariant lives in tests/golden_checklist.rs
    /// at the workspace root, which runs the full study with the default
    /// quiet profile.)
    #[test]
    fn chaos_profiles_keep_monitor_invariants(
        seed in 0u64..1_000,
        failure_prob in 0.0f64..0.9,
        // 0 disables the regime; small windows throttle hard.
        max_per_hour in 0u32..40,
        (outage_on, mean_up_hours, mean_down_hours) in (0u32..2, 1u64..48, 1u64..24),
        likes in prop::collection::vec((0u32..20, 0u64..15 * 86_400), 1..30),
    ) {
        let config = CrawlConfig {
            failure_prob,
            faults: FaultProfile {
                rate_limit: (max_per_hour > 0).then_some(RateLimitRegime { max_per_hour }),
                outage: (outage_on == 1).then_some(OutageRegime {
                    mean_uptime: SimDuration::hours(mean_up_hours),
                    mean_downtime: SimDuration::hours(mean_down_hours),
                }),
            },
        };
        let campaign_end = SimTime::at_day(15);
        let run = || {
            let (mut world, page) = world_with(20);
            let mut monitor =
                PageMonitor::new(page, SimTime::EPOCH, campaign_end, CrawlerConfig::default());
            let mut api = CrawlApi::new(config, Rng::seed_from_u64(seed));
            let mut schedule: Vec<(u32, u64)> = likes.clone();
            schedule.sort_by_key(|(_, t)| *t);
            let mut li = 0usize;
            let mut next = Some(SimTime::EPOCH);
            while let Some(now) = next {
                while li < schedule.len() && SimTime::from_secs(schedule[li].1) <= now {
                    let (u, t) = schedule[li];
                    world.record_like(UserId(u), page, SimTime::from_secs(t));
                    li += 1;
                }
                next = monitor.poll(&world, &mut api, now);
            }
            let stats = *api.stats();
            (monitor, stats)
        };
        let (monitor, stats) = run();
        // The monitor terminated (hard stop bounds even permanent outage)
        // and never stopped while the campaign was running.
        let stopped = monitor.stopped_at().expect("monitor must terminate");
        prop_assert!(stopped > campaign_end, "stopped at {stopped} during campaign");
        // Coverage identity: every request is either a success or a
        // failure of exactly one kind.
        prop_assert_eq!(stats.requests, stats.successes + stats.failures());
        prop_assert_eq!(
            stats.failures(),
            stats.transient + stats.rate_limited + stats.outage
        );
        let cov = monitor.coverage();
        prop_assert_eq!(cov.polls as usize, monitor.observations().len());
        prop_assert_eq!(
            cov.failed_polls as usize,
            monitor.observations().iter().filter(|o| o.failed).count()
        );
        prop_assert!(cov.rate_limited_polls + cov.outage_polls <= cov.failed_polls);
        // Determinism: the same profile and seed reproduce the identical
        // observation log and stats.
        let (monitor2, stats2) = run();
        prop_assert_eq!(monitor.observations(), monitor2.observations());
        prop_assert_eq!(stats, stats2);
    }
}
