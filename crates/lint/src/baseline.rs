//! The checked-in findings baseline (`lint-baseline.json`).
//!
//! Pre-existing findings are recorded here so they do not fail the build,
//! while anything *new* does. Entries are keyed on
//! `(rule, file, trimmed snippet)` rather than line numbers, so unrelated
//! edits that shift a file do not invalidate the baseline; `count` allows
//! several identical lines in one file. Refresh the file with
//! `LIKELAB_UPDATE_LINT_BASELINE=1` (or `--update-baseline`), mirroring
//! the golden-checklist convention (`LIKELAB_UPDATE_GOLDEN=1`).

use crate::diagnostics::{json_escape, Finding};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One baseline entry: a known finding, identified structurally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Rule id the finding belongs to.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// The trimmed offending line as it appeared when baselined.
    pub snippet: String,
    /// How many identical `(rule, file, snippet)` findings are accepted.
    pub count: usize,
    /// The call chain recorded when the entry was baselined (for
    /// interprocedural rules). Informational only: matching ignores it so
    /// entries survive refactors that reroute the chain.
    pub path: Vec<String>,
}

/// A parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// The accepted findings.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Build a baseline that accepts exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        // BTreeMap keys the grouping, so entry order is deterministic
        // (sorted by file, then rule, then snippet) with no post-sort.
        let mut counts: BTreeMap<(String, String, String), (usize, Vec<String>)> = BTreeMap::new();
        for f in findings {
            let slot = counts
                .entry((f.rule.to_string(), f.file.clone(), f.snippet.clone()))
                .or_insert((0, Vec::new()));
            slot.0 += 1;
            if slot.1.is_empty() {
                slot.1 = f.path.clone();
            }
        }
        let mut entries: Vec<Entry> = counts
            .into_iter()
            .map(|((rule, file, snippet), (count, path))| Entry {
                rule,
                file,
                snippet,
                count,
                path,
            })
            .collect();
        entries.sort_by(|a, b| (&a.file, &a.rule, &a.snippet).cmp(&(&b.file, &b.rule, &b.snippet)));
        Baseline { entries }
    }

    /// Split findings into `(new, baselined)` and report stale entries.
    ///
    /// Each entry's `count` is consumed by matching findings; findings in
    /// excess of the count are new. Entries with leftover count are stale.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>, Vec<String>) {
        let mut budget: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            *budget
                .entry((e.rule.clone(), e.file.clone(), e.snippet.clone()))
                .or_insert(0) += e.count;
        }
        let mut fresh = Vec::new();
        let mut matched = Vec::new();
        for f in findings {
            let key = (f.rule.to_string(), f.file.clone(), f.snippet.clone());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    matched.push(f);
                }
                _ => fresh.push(f),
            }
        }
        let mut stale: Vec<String> = budget
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|((rule, file, snippet), n)| format!("{file}: [{rule}] x{n} {snippet}"))
            .collect();
        stale.sort();
        (fresh, matched, stale)
    }

    /// Serialize to the checked-in JSON format (one entry per line).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            let path = if e.path.is_empty() {
                String::new()
            } else {
                format!(
                    ", \"path\": [{}]",
                    e.path
                        .iter()
                        .map(|p| format!("\"{}\"", json_escape(p)))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            let _ = write!(
                out,
                "{}\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"count\": {}, \"snippet\": \"{}\"{}}}",
                if i == 0 { "" } else { "," },
                json_escape(&e.rule),
                json_escape(&e.file),
                e.count,
                json_escape(&e.snippet),
                path,
            );
        }
        out.push_str(if self.entries.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        out
    }

    /// Parse the JSON format written by [`Baseline::to_json`].
    ///
    /// The parser accepts any standard JSON document of that shape
    /// (hand-edits with different whitespace are fine).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("baseline: expected an object")?;
        let entries_val = obj
            .iter()
            .find(|(k, _)| k == "entries")
            .map(|(_, v)| v)
            .ok_or("baseline: missing \"entries\"")?;
        let arr = entries_val
            .as_array()
            .ok_or("baseline: \"entries\" must be an array")?;
        let mut entries = Vec::with_capacity(arr.len());
        for item in arr {
            let e = item
                .as_object()
                .ok_or("baseline: entry must be an object")?;
            let get_str = |key: &str| -> Result<String, String> {
                e.iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline: entry missing string \"{key}\""))
            };
            let count = e
                .iter()
                .find(|(k, _)| k == "count")
                .and_then(|(_, v)| v.as_usize())
                .unwrap_or(1);
            let path = e
                .iter()
                .find(|(k, _)| k == "path")
                .and_then(|(_, v)| v.as_array())
                .map(|arr| {
                    arr.iter()
                        .filter_map(|v| v.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default();
            entries.push(Entry {
                rule: get_str("rule")?,
                file: get_str("file")?,
                snippet: get_str("snippet")?,
                count,
                path,
            });
        }
        Ok(Baseline { entries })
    }
}

/// A minimal recursive-descent JSON parser — just enough for the baseline
/// document, kept private to this module.
mod json {
    /// A parsed JSON value.
    #[derive(Debug)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool,
        /// Any number (stored as f64; baseline counts are small integers).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, as ordered key/value pairs.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_usize(&self) -> Option<usize> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("json: trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool),
            Some(b'f') => literal(b, pos, "false", Value::Bool),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("json: unexpected end of input".into()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b.len() >= *pos + word.len() && &b[*pos..*pos + word.len()] == word.as_bytes() {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("json: expected `{word}` at byte {pos}", pos = *pos))
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("json: expected `{}` at byte {}", c as char, *pos))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            expect(b, pos, b':')?;
            out.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("json: expected `,` or `}}` at byte {}", *pos)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("json: expected `,` or `]` at byte {}", *pos)),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("json: expected string at byte {}", *pos));
        }
        *pos += 1;
        let mut out = Vec::new();
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    *pos += 1;
                    return String::from_utf8(out).map_err(|e| format!("json: {e}"));
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or("json: truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|e| format!("json: {e}"))?;
                            let n = u32::from_str_radix(s, 16)
                                .map_err(|e| format!("json: bad \\u escape: {e}"))?;
                            let ch = char::from_u32(n).ok_or("json: invalid \\u codepoint")?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                            *pos += 4;
                        }
                        _ => return Err(format!("json: bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                _ => {
                    out.push(c);
                    *pos += 1;
                }
            }
        }
        Err("json: unterminated string".into())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| format!("json: {e}"))?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("json: bad number `{s}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            snippet: snippet.into(),
            hint: String::new(),
            path: Vec::new(),
        }
    }

    #[test]
    fn round_trip() {
        let fs = vec![
            finding("unwrap-in-library", "a.rs", "x.unwrap();"),
            finding("unwrap-in-library", "a.rs", "x.unwrap();"),
            finding("stdout-in-library", "b.rs", "println!(\"hi\");"),
        ];
        let b = Baseline::from_findings(&fs);
        let parsed = Baseline::parse(&b.to_json()).expect("round trip");
        assert_eq!(parsed.entries, b.entries);
        let dup = b.entries.iter().find(|e| e.file == "a.rs").expect("a.rs");
        assert_eq!(dup.count, 2);
    }

    #[test]
    fn apply_consumes_counts_and_reports_stale() {
        let known = vec![
            finding("unwrap-in-library", "a.rs", "x.unwrap();"),
            finding("unwrap-in-library", "a.rs", "x.unwrap();"),
            finding("ambient-time", "gone.rs", "Instant::now();"),
        ];
        let b = Baseline::from_findings(&known);
        // Now: one of the two unwraps is fixed, a brand new finding appears,
        // and gone.rs was deleted entirely.
        let now = vec![
            finding("unwrap-in-library", "a.rs", "x.unwrap();"),
            finding("unwrap-in-library", "c.rs", "y.unwrap();"),
        ];
        let (fresh, matched, stale) = b.apply(now);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].file, "c.rs");
        assert_eq!(matched.len(), 1);
        assert_eq!(stale.len(), 2, "{stale:?}"); // leftover count + gone.rs
    }

    #[test]
    fn parse_tolerates_hand_edits() {
        let text = r#"{ "version": 1,
            "entries": [ { "count": 3, "rule": "r", "snippet": "s \"q\" A", "file": "f.rs" } ] }"#;
        let b = Baseline::parse(text).expect("parse");
        assert_eq!(b.entries[0].count, 3);
        assert_eq!(b.entries[0].snippet, "s \"q\" A");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"entries\": 3}").is_err());
        assert!(Baseline::parse("{}").is_err());
    }

    #[test]
    fn path_is_recorded_but_not_matched_on() {
        let mut with_path = finding("panic-reachable-from-serve", "a.rs", "xs[i];");
        with_path.path = vec!["ServeEngine::ingest".into(), "leaf".into()];
        let b = Baseline::from_findings(std::slice::from_ref(&with_path));
        assert_eq!(b.entries[0].path, with_path.path);
        let parsed = Baseline::parse(&b.to_json()).expect("round trip");
        assert_eq!(parsed.entries, b.entries);
        // A refactor reroutes the chain: the entry still matches.
        let mut rerouted = with_path.clone();
        rerouted.path = vec!["ServeEngine::query".into(), "other".into(), "leaf".into()];
        let (fresh, matched, stale) = parsed.apply(vec![rerouted]);
        assert!(fresh.is_empty());
        assert_eq!(matched.len(), 1);
        assert!(stale.is_empty());
    }

    #[test]
    fn empty_baseline_round_trips() {
        let b = Baseline::from_findings(&[]);
        let parsed = Baseline::parse(&b.to_json()).expect("parse empty");
        assert!(parsed.entries.is_empty());
    }
}
