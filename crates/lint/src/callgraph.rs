//! The workspace call graph.
//!
//! Nodes are the `fn` items of every scanned file ([`crate::parse`]);
//! edges are syntactic call sites resolved by name through the file's
//! `use` map, the enclosing `impl` block, and crate proximity. The
//! resolver is deliberately conservative: an ambiguous name links to
//! nothing rather than to everything, so interprocedural findings carry
//! call paths that are real (each hop is a unique-name match), at the cost
//! of missing calls through heavily overloaded names. The honesty limits
//! are catalogued in DESIGN.md §4f.
//!
//! Resolution order for a bare call `name(…)`:
//! 1. a free fn `name` in the same file (same module preferred),
//! 2. the file's `use` map (`use crate_x::m::name;` → that crate's fn),
//! 3. a unique free fn `name` in the caller's crate,
//! 4. a unique free fn `name` in the workspace.
//!
//! `Type::name(…)` and `Self::name(…)` resolve against `impl Type`
//! blocks; `.name(…)` method calls resolve to a unique workspace method
//! of that name — except names on the [`STD_METHOD_NAMES`] denylist
//! (`push`, `get`, `insert`, …), which collide with std containers far
//! too often to link by name alone.

use crate::parse::ParsedFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names too common on std types to resolve by bare name.
pub const STD_METHOD_NAMES: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "clear",
    "extend",
    "contains",
    "contains_key",
    "sort",
    "sort_by",
    "sort_unstable",
    "drain",
    "join",
    "split",
    "split_at",
    "take",
    "find",
    "map",
    "filter",
    "fold",
    "sum",
    "min",
    "max",
    "abs",
    "floor",
    "ceil",
    "powi",
    "push_str",
    "to_string",
    "to_vec",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "default",
    "from",
    "into",
    "new",
    "with_capacity",
    "write",
    "read",
    "flush",
    "first",
    "last",
    "entry",
    "keys",
    "values",
    "collect",
    "count",
    "rev",
    "zip",
    "chain",
    "any",
    "all",
    "position",
    "retain",
    "truncate",
    "resize",
    "reserve",
    "swap",
    "replace",
    "expect",
    "unwrap",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "as_slice",
    "trim",
    "starts_with",
    "ends_with",
    "parse",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
];

/// One function node in the workspace graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index of the owning file in the `ParsedFile` slice.
    pub file: usize,
    /// Index into that file's `items.functions`.
    pub item: usize,
    /// Workspace-relative path of the owning file.
    pub rel_path: String,
    /// Owning crate name.
    pub crate_name: String,
    /// Bare fn name.
    pub name: String,
    /// `impl`/`trait` self type, when any.
    pub self_ty: Option<String>,
    /// `Type::name` or bare `name` — the diagnostic label.
    pub qualified: String,
    /// True for fns inside `#[cfg(test)]` regions.
    pub is_test: bool,
}

/// One resolved call site inside a caller's body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee node index.
    pub callee: usize,
    /// 0-based line of the call in the caller's file.
    pub line: usize,
    /// Top-level argument texts of the call.
    pub args: Vec<String>,
    /// Receiver identifier for `recv.name(…)` method calls.
    pub receiver: Option<String>,
}

/// The workspace call graph: nodes plus per-caller call sites.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every fn item in the workspace, in (file, item) order.
    pub nodes: Vec<FnNode>,
    /// `calls[i]` are the resolved call sites inside `nodes[i]`.
    pub calls: Vec<Vec<CallSite>>,
    /// `owner[file]` maps 0-based lines to the innermost fn node on that
    /// line (`usize::MAX` for lines outside any fn).
    pub owner: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Build the graph over every parsed file.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, pf) in files.iter().enumerate() {
            for (ii, f) in pf.items.functions.iter().enumerate() {
                nodes.push(FnNode {
                    file: fi,
                    item: ii,
                    rel_path: pf.rel_path.clone(),
                    crate_name: pf.crate_name.clone(),
                    name: f.name.clone(),
                    self_ty: f.self_ty.clone(),
                    qualified: f.qualified_name(),
                    is_test: f.is_test,
                });
            }
        }
        // Line → innermost-fn ownership per file (inner fns come later in
        // source order and overwrite their outer's lines).
        let mut owner: Vec<Vec<usize>> = files
            .iter()
            .map(|pf| vec![usize::MAX; pf.masked.code.len()])
            .collect();
        for (ni, n) in nodes.iter().enumerate() {
            let f = &files[n.file].items.functions[n.item];
            for line in f.sig_line..=f.body_end.min(owner[n.file].len().saturating_sub(1)) {
                owner[n.file][line] = ni;
            }
        }

        let index = NameIndex::new(&nodes);
        let mut calls: Vec<Vec<CallSite>> = vec![Vec::new(); nodes.len()];
        for (fi, pf) in files.iter().enumerate() {
            for (line_idx, line) in pf.masked.code.iter().enumerate() {
                let caller = owner[fi][line_idx];
                if caller == usize::MAX {
                    continue;
                }
                for site in call_tokens(line) {
                    let resolved = index.resolve(&site, &nodes[caller], pf, &nodes);
                    if let Some(callee) = resolved {
                        if callee == caller {
                            continue; // self-recursion adds nothing to paths
                        }
                        let args = split_call_args(&pf.masked.code, line_idx, site.open_paren_col);
                        calls[caller].push(CallSite {
                            callee,
                            line: line_idx,
                            args,
                            receiver: site.receiver.clone(),
                        });
                    }
                }
            }
        }
        CallGraph {
            nodes,
            calls,
            owner,
        }
    }

    /// Breadth-first reachability from `entries`; returns, for each
    /// reached node, the call path (entry-first list of node indices).
    pub fn reach_from(&self, entries: &[usize]) -> BTreeMap<usize, Vec<usize>> {
        let mut paths: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut queue = VecDeque::new();
        for &e in entries {
            if let std::collections::btree_map::Entry::Vacant(v) = paths.entry(e) {
                v.insert(vec![e]);
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            let base = paths[&n].clone();
            for site in &self.calls[n] {
                if let std::collections::btree_map::Entry::Vacant(v) = paths.entry(site.callee) {
                    let mut p = base.clone();
                    p.push(site.callee);
                    v.insert(p);
                    queue.push_back(site.callee);
                }
            }
        }
        paths
    }

    /// Render a node path as `a → b → c` using qualified names.
    pub fn render_path(&self, path: &[usize]) -> Vec<String> {
        path.iter()
            .map(|&n| self.nodes[n].qualified.clone())
            .collect()
    }
}

/// A raw call token found on a line, before resolution.
#[derive(Debug)]
struct RawCall {
    /// The called name.
    name: String,
    /// Qualifier: `Some("Type")` for `Type::name(`, `Some("Self")` for
    /// `Self::name(`.
    qualifier: Option<String>,
    /// Receiver identifier for `.name(` method calls (`self`, a local, or
    /// the last segment of a field chain).
    receiver: Option<String>,
    /// Column of the opening paren.
    open_paren_col: usize,
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "loop", "move", "in", "as", "let", "else",
    "impl", "where", "use", "pub", "mod", "unsafe", "dyn", "ref", "mut", "break", "continue",
];

/// Find call-shaped tokens on one masked line.
fn call_tokens(line: &str) -> Vec<RawCall> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    for i in 0..bytes.len() {
        if bytes[i] != b'(' {
            continue;
        }
        // Walk back over the identifier directly before `(`.
        let mut s = i;
        while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
            s -= 1;
        }
        if s == i {
            continue; // `(` not preceded by an ident
        }
        let name = &line[s..i];
        if name.as_bytes()[0].is_ascii_digit() || CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // `name!` macro? The `!` sits between ident and paren — which means
        // bytes[i-1] is `!`, so we never got here. But `name !(` spaced —
        // ignore that edge.
        let before = &bytes[..s];
        let (qualifier, receiver) = if before.ends_with(b"::") {
            // `Qual::name(` — walk back the qualifier ident.
            let mut q = s - 2;
            while q > 0 && (bytes[q - 1].is_ascii_alphanumeric() || bytes[q - 1] == b'_') {
                q -= 1;
            }
            (Some(line[q..s - 2].to_string()), None)
        } else if before.ends_with(b".") {
            // `recv.name(` — the receiver is the ident chain's last segment.
            let mut r = s - 1;
            while r > 0 && (bytes[r - 1].is_ascii_alphanumeric() || bytes[r - 1] == b'_') {
                r -= 1;
            }
            let recv = &line[r..s - 1];
            (None, Some(recv.to_string()))
        } else {
            (None, None)
        };
        out.push(RawCall {
            name: name.to_string(),
            qualifier,
            receiver,
            open_paren_col: i,
        });
    }
    out
}

/// Capture the top-level argument texts of a call whose `(` is at
/// `(line_idx, col)`, spanning up to 80 lines.
fn split_call_args(code: &[String], line_idx: usize, col: usize) -> Vec<String> {
    let mut args = Vec::new();
    let mut cur = String::new();
    let mut depth = 0i32;
    for (k, line) in code.iter().enumerate().skip(line_idx).take(80) {
        let start = if k == line_idx { col } else { 0 };
        for b in line.bytes().skip(start) {
            match b {
                b'(' | b'[' | b'{' => {
                    depth += 1;
                    if depth > 1 {
                        cur.push(b as char);
                    }
                }
                b')' | b']' | b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        let t = cur.trim();
                        if !t.is_empty() {
                            args.push(t.to_string());
                        }
                        return args;
                    }
                    cur.push(b as char);
                }
                b',' if depth == 1 => {
                    let t = cur.trim();
                    if !t.is_empty() {
                        args.push(t.to_string());
                    }
                    cur.clear();
                }
                _ => {
                    if depth >= 1 {
                        cur.push(b as char);
                    }
                }
            }
        }
        cur.push(' ');
    }
    args
}

/// Name-based candidate index.
struct NameIndex {
    /// name → node indices of free fns (no self type).
    free: BTreeMap<String, Vec<usize>>,
    /// name → node indices of fns under some `impl`/`trait`.
    assoc: BTreeMap<String, Vec<usize>>,
    /// (self_ty, name) → node indices.
    typed: BTreeMap<(String, String), Vec<usize>>,
}

impl NameIndex {
    fn new(nodes: &[FnNode]) -> NameIndex {
        let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut assoc: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if n.is_test {
                continue;
            }
            match &n.self_ty {
                None => free.entry(n.name.clone()).or_default().push(i),
                Some(t) => {
                    assoc.entry(n.name.clone()).or_default().push(i);
                    typed
                        .entry((t.clone(), n.name.clone()))
                        .or_default()
                        .push(i);
                }
            }
        }
        NameIndex { free, assoc, typed }
    }

    fn resolve(
        &self,
        raw: &RawCall,
        caller: &FnNode,
        caller_file: &ParsedFile,
        nodes: &[FnNode],
    ) -> Option<usize> {
        if let Some(q) = &raw.qualifier {
            // `Type::name(` / `Self::name(`.
            let ty = if q == "Self" {
                caller.self_ty.clone()?
            } else {
                q.clone()
            };
            let cands = self.typed.get(&(ty, raw.name.clone()))?;
            return pick(cands, caller, nodes);
        }
        if let Some(recv) = &raw.receiver {
            // `self.name(` resolves within the caller's own impl first.
            if recv == "self" {
                if let Some(ty) = &caller.self_ty {
                    if let Some(cands) = self.typed.get(&(ty.clone(), raw.name.clone())) {
                        if let Some(hit) = pick(cands, caller, nodes) {
                            return Some(hit);
                        }
                    }
                }
            }
            // General method call: unique-name resolution, denylist guarded.
            if STD_METHOD_NAMES.contains(&raw.name.as_str()) {
                return None;
            }
            let cands = self.assoc.get(&raw.name)?;
            return pick(cands, caller, nodes);
        }
        // Bare call: same file → use map → same crate → workspace.
        let cands = self.free.get(&raw.name)?;
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| nodes[c].file == caller.file)
            .collect();
        if same_file.len() == 1 {
            return Some(same_file[0]);
        }
        if let Some(u) = caller_file.items.uses.iter().find(|u| u.ident == raw.name) {
            let crate_of_use = u.path.split("::").next().unwrap_or("").replace('_', "-");
            let via_use: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| nodes[c].crate_name == crate_of_use)
                .collect();
            if via_use.len() == 1 {
                return Some(via_use[0]);
            }
        }
        pick(cands, caller, nodes)
    }
}

/// Disambiguate candidates: unique workspace match, else unique
/// same-crate match, else nothing.
fn pick(cands: &[usize], caller: &FnNode, nodes: &[FnNode]) -> Option<usize> {
    if cands.len() == 1 {
        return Some(cands[0]);
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| nodes[c].crate_name == caller.crate_name)
        .collect();
    if same_crate.len() == 1 {
        return Some(same_crate[0]);
    }
    None
}

/// The set of node indices whose `(rel_path suffix, self_ty, name)` match
/// an entry-point spec. Used by `panic-reachable-from-serve`.
pub fn match_entries(graph: &CallGraph, specs: &[(&str, Option<&str>, &str)]) -> Vec<usize> {
    let mut out = BTreeSet::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        if n.is_test {
            continue;
        }
        for (path_suffix, self_ty, name) in specs {
            if n.name == *name
                && n.rel_path.ends_with(path_suffix)
                && (self_ty.is_none() || n.self_ty.as_deref() == *self_ty)
            {
                out.insert(i);
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::tokenizer::mask;
    use crate::walk::FileKind;

    fn pf(rel_path: &str, crate_name: &str, src: &str) -> ParsedFile {
        let masked = mask(src);
        let items = parse::parse(&masked);
        ParsedFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            kind: FileKind::Library,
            masked,
            items,
        }
    }

    fn node(g: &CallGraph, q: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.qualified == q)
            .unwrap_or_else(|| panic!("no node {q}: {:?}", g.nodes))
    }

    fn callees(g: &CallGraph, q: &str) -> Vec<String> {
        g.calls[node(g, q)]
            .iter()
            .map(|c| g.nodes[c.callee].qualified.clone())
            .collect()
    }

    #[test]
    fn bare_calls_resolve_within_file_then_crate() {
        let files = vec![
            pf(
                "crates/a/src/lib.rs",
                "a",
                "pub fn top() { helper(); remote(); }\nfn helper() {}\n",
            ),
            pf("crates/b/src/lib.rs", "b", "pub fn remote() {}\n"),
        ];
        let g = CallGraph::build(&files);
        assert_eq!(callees(&g, "top"), vec!["helper", "remote"]);
    }

    #[test]
    fn use_map_disambiguates_across_crates() {
        let files = vec![
            pf(
                "crates/a/src/lib.rs",
                "a",
                "use b_lib::shared;\npub fn top() { shared(); }\n",
            ),
            pf("crates/b/src/lib.rs", "b-lib", "pub fn shared() {}\n"),
            pf("crates/c/src/lib.rs", "c-lib", "pub fn shared() {}\n"),
        ];
        let g = CallGraph::build(&files);
        assert_eq!(callees(&g, "top"), vec!["shared"]);
        let callee = g.calls[node(&g, "top")][0].callee;
        assert_eq!(g.nodes[callee].crate_name, "b-lib");
    }

    #[test]
    fn ambiguous_without_use_links_nothing() {
        let files = vec![
            pf("crates/a/src/lib.rs", "a", "pub fn top() { shared(); }\n"),
            pf("crates/b/src/lib.rs", "b", "pub fn shared() {}\n"),
            pf("crates/c/src/lib.rs", "c", "pub fn shared() {}\n"),
        ];
        let g = CallGraph::build(&files);
        assert!(callees(&g, "top").is_empty());
    }

    #[test]
    fn self_and_typed_calls_resolve() {
        let src = "struct Engine;\nimpl Engine {\n    pub fn ingest(&mut self) { self.fold(); Engine::stat(); Self::stat(); }\n    fn fold(&mut self) {}\n    fn stat() {}\n}\n";
        let g = CallGraph::build(&[pf("crates/a/src/serve.rs", "a", src)]);
        assert_eq!(
            callees(&g, "Engine::ingest"),
            vec!["Engine::fold", "Engine::stat", "Engine::stat"]
        );
    }

    #[test]
    fn denylisted_method_names_do_not_link() {
        let files = vec![pf(
            "crates/a/src/lib.rs",
            "a",
            "struct P;\nimpl P {\n    pub fn push(&mut self, v: u32) { panic!(\"boom\") }\n}\n\
             pub fn caller(v: &mut Vec<u32>) { v.push(1); }\n",
        )];
        let g = CallGraph::build(&files);
        assert!(
            callees(&g, "caller").is_empty(),
            "std-colliding method names must not link"
        );
    }

    #[test]
    fn unique_method_call_links() {
        let files = vec![pf(
            "crates/a/src/lib.rs",
            "a",
            "struct T;\nimpl T {\n    pub fn absorb_batch(&mut self) {}\n}\n\
             pub fn caller(t: &mut T) { t.absorb_batch(); }\n",
        )];
        let g = CallGraph::build(&files);
        assert_eq!(callees(&g, "caller"), vec!["T::absorb_batch"]);
    }

    #[test]
    fn reachability_produces_shortest_paths() {
        let src = "pub fn a() { b(); }\npub fn b() { c(); }\npub fn c() {}\npub fn d() { c(); }\n";
        let g = CallGraph::build(&[pf("crates/a/src/lib.rs", "a", src)]);
        let paths = g.reach_from(&[node(&g, "a")]);
        let to_c = paths.get(&node(&g, "c")).expect("c reachable");
        assert_eq!(g.render_path(to_c), vec!["a", "b", "c"]);
        assert!(!paths.contains_key(&node(&g, "d")));
    }

    #[test]
    fn call_args_are_captured() {
        let src = "pub fn top(rng: &mut Rng) { helper(rng, 1 + 2, vec![3, 4]); }\nfn helper(r: &mut Rng, x: u32, v: Vec<u32>) {}\n";
        let g = CallGraph::build(&[pf("crates/a/src/lib.rs", "a", src)]);
        let site = &g.calls[node(&g, "top")][0];
        assert_eq!(site.args, vec!["rng", "1 + 2", "vec![3, 4]"]);
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let src = "pub fn top() { println!(\"x\"); assert_eq!(1, 1); }\nfn println() {}\n";
        let g = CallGraph::build(&[pf("crates/a/src/main.rs", "a", src)]);
        assert!(callees(&g, "top").is_empty());
    }

    #[test]
    fn entry_matching_by_suffix_type_and_name() {
        let src = "struct ServeEngine;\nimpl ServeEngine {\n    pub fn ingest(&mut self) {}\n    pub fn other(&mut self) {}\n}\n";
        let g = CallGraph::build(&[pf("crates/core/src/serve.rs", "likelab-core", src)]);
        let entries = match_entries(&g, &[("/serve.rs", Some("ServeEngine"), "ingest")]);
        assert_eq!(entries.len(), 1);
        assert_eq!(g.nodes[entries[0]].qualified, "ServeEngine::ingest");
    }
}
