//! Per-function dataflow summaries over the item tree.
//!
//! The interprocedural rules need three kinds of facts that neither the
//! tokenizer nor the call graph carries on its own:
//!
//! - **Rng values**: which identifiers in a function are seeded-stream
//!   values — parameters whose declared type mentions `Rng`, and locals
//!   bound from `Rng::…` constructors, `derive_stream_seed`, or a
//!   `.split(…)` of an already-known Rng value. Tracking by *type and
//!   construction* is what lets the rules catch an `&mut Rng` named
//!   `sampler` that the name-based `rng-shared-across-parallel` scan
//!   cannot see.
//! - **Parallel boundaries**: the `parallel_map`/`parallel_jobs` call
//!   spans inside each function, with their full argument text.
//! - **Hazard parameters**: the fixpoint of "this parameter ends up
//!   captured by a parallel closure without an intervening
//!   `split`/`derive_stream_seed`, either directly or by being passed on
//!   to another hazard parameter". Each hazard carries a witness chain so
//!   diagnostics can say *reachable via a → b → c*.
//!
//! Everything here is a summary of masked source lines, not of an AST;
//! the approximations (word-level capture detection, bare-identifier
//! argument matching) are documented per item and in DESIGN.md §4f.

use crate::callgraph::CallGraph;
use crate::parse::ParsedFile;
use crate::rules::{balanced_span, closure_params};
use crate::tokenizer::find_word;
use std::collections::{BTreeMap, BTreeSet};

/// How a function came to hold an Rng value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RngOrigin {
    /// The value is the parameter with this index (self excluded).
    Param(usize),
    /// The value is a local bound on this 0-based line.
    Constructed(usize),
}

/// One `parallel_map`/`parallel_jobs` call inside a function.
#[derive(Clone, Debug)]
pub struct ParallelSpan {
    /// 0-based line of the call.
    pub line: usize,
    /// The balanced `(…)` argument text, newlines included.
    pub text: String,
}

/// The dataflow summary of one function (indexed like `CallGraph::nodes`).
#[derive(Clone, Debug, Default)]
pub struct FnFacts {
    /// Known Rng values by identifier.
    pub rng_values: BTreeMap<String, RngOrigin>,
    /// Parallel boundaries in the body.
    pub parallel: Vec<ParallelSpan>,
}

/// Spellings that prove a binding is a seeded-stream value.
const RNG_CONSTRUCTORS: &[&str] = &["Rng::", "derive_stream_seed", "seed_from_u64"];

/// Compute per-function facts for every node of the graph.
pub fn fn_facts(files: &[ParsedFile], graph: &CallGraph) -> Vec<FnFacts> {
    let mut out = vec![FnFacts::default(); graph.nodes.len()];
    for (ni, node) in graph.nodes.iter().enumerate() {
        let pf = &files[node.file];
        let f = &pf.items.functions[node.item];
        let facts = &mut out[ni];
        for (pi, p) in f.params.iter().enumerate() {
            if crate::tokenizer::contains_word(&p.ty, "Rng") {
                facts
                    .rng_values
                    .insert(p.name.clone(), RngOrigin::Param(pi));
            }
        }
        // Locals: two extra passes so `let b = a.split(i)` resolves after
        // `a` itself became known.
        for _ in 0..3 {
            let mut grew = false;
            for line_idx in f.sig_line..=f.body_end.min(pf.masked.code.len().saturating_sub(1)) {
                if graph.owner[node.file][line_idx] != ni {
                    continue;
                }
                let line = &pf.masked.code[line_idx];
                let Some((name, _)) = let_binding(line) else {
                    continue;
                };
                if facts.rng_values.contains_key(name) {
                    continue;
                }
                let stmt = join_statement(&pf.masked.code, line_idx);
                let constructed = RNG_CONSTRUCTORS.iter().any(|c| stmt.contains(c))
                    || facts
                        .rng_values
                        .keys()
                        .any(|known| stmt.contains(&format!("{known}.split(")));
                if constructed {
                    facts
                        .rng_values
                        .insert(name.to_string(), RngOrigin::Constructed(line_idx));
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        // Parallel boundaries.
        for line_idx in f.sig_line..=f.body_end.min(pf.masked.code.len().saturating_sub(1)) {
            if graph.owner[node.file][line_idx] != ni {
                continue;
            }
            let line = &pf.masked.code[line_idx];
            let call =
                find_word(line, "parallel_map", 0).or_else(|| find_word(line, "parallel_jobs", 0));
            let Some(pos) = call else { continue };
            let Some(open) = line[pos..].find('(') else {
                continue;
            };
            facts.parallel.push(ParallelSpan {
                line: line_idx,
                text: balanced_span(&pf.masked.code, line_idx, pos + open),
            });
        }
    }
    out
}

/// A parallel span is stream-safe when it derives a per-item stream
/// anywhere inside — the same evidence `rng-shared-across-parallel` uses.
pub fn span_is_stream_safe(span: &str) -> bool {
    span.contains(".split(") || span.contains("derive_stream_seed")
}

/// The Rng values of `facts` captured by `span` (word match, closure
/// parameters excluded). Empty for stream-safe spans.
pub fn captured_rng_values<'a>(facts: &'a FnFacts, span: &str) -> Vec<&'a str> {
    if span_is_stream_safe(span) {
        return Vec::new();
    }
    let params = closure_params(span);
    facts
        .rng_values
        .keys()
        .filter(|name| find_word(span, name, 0).is_some() && !params.iter().any(|p| p == *name))
        .map(String::as_str)
        .collect()
}

/// Why a parameter is a hazard.
#[derive(Clone, Copy, Debug)]
pub enum Witness {
    /// Captured by a parallel span on this line of the owning function.
    Direct {
        /// 0-based line of the parallel call.
        line: usize,
    },
    /// Passed on to `param` of `callee`, which is itself a hazard.
    Via {
        /// Callee node index.
        callee: usize,
        /// Callee parameter index.
        param: usize,
        /// 0-based line of the forwarding call.
        line: usize,
    },
}

/// `hazards[node][param]` exists when that parameter reaches a parallel
/// boundary un-split through some call chain.
pub fn hazard_params(graph: &CallGraph, facts: &[FnFacts]) -> Vec<BTreeMap<usize, Witness>> {
    let mut hazards: Vec<BTreeMap<usize, Witness>> = vec![BTreeMap::new(); graph.nodes.len()];
    // Seed: direct captures of a parameter.
    for (ni, f) in facts.iter().enumerate() {
        for span in &f.parallel {
            for name in captured_rng_values(f, &span.text) {
                if let Some(RngOrigin::Param(pi)) = f.rng_values.get(name) {
                    hazards[ni]
                        .entry(*pi)
                        .or_insert(Witness::Direct { line: span.line });
                }
            }
        }
    }
    // Propagate: a parameter forwarded (as a bare identifier) into a
    // hazard parameter is a hazard too.
    loop {
        let mut grew = false;
        for ni in 0..graph.nodes.len() {
            for site in &graph.calls[ni] {
                let callee_hazards: Vec<(usize, usize)> = hazards[site.callee]
                    .keys()
                    .map(|&p| (p, site.line))
                    .collect();
                for (cp, line) in callee_hazards {
                    let Some(arg) = site.args.get(cp) else {
                        continue;
                    };
                    let Some(name) = arg_ident(arg) else { continue };
                    if let Some(RngOrigin::Param(pi)) = facts[ni].rng_values.get(name) {
                        if !hazards[ni].contains_key(pi) {
                            hazards[ni].insert(
                                *pi,
                                Witness::Via {
                                    callee: site.callee,
                                    param: cp,
                                    line,
                                },
                            );
                            grew = true;
                        }
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    hazards
}

/// Follow a hazard's witness chain downward; returns the node path
/// starting at `node` and the line of the final parallel capture.
pub fn hazard_sink(
    hazards: &[BTreeMap<usize, Witness>],
    node: usize,
    param: usize,
) -> (Vec<usize>, usize) {
    let mut path = vec![node];
    let (mut n, mut p) = (node, param);
    let mut guard = 0usize;
    loop {
        guard += 1;
        match hazards[n].get(&p) {
            Some(Witness::Direct { line }) => return (path, *line),
            Some(Witness::Via {
                callee,
                param,
                line,
            }) if guard < 64 => {
                path.push(*callee);
                let fallback = *line;
                n = *callee;
                p = *param;
                if !hazards[n].contains_key(&p) {
                    return (path, fallback);
                }
            }
            _ => return (path, 0),
        }
    }
}

/// Walk *up* the graph from `(node, param)` to a function that constructs
/// the Rng value it forwards; returns the chain root-first, ending at
/// `node`. Falls back to `[node]` when no workspace caller feeds it.
pub fn rng_root_chain(
    graph: &CallGraph,
    facts: &[FnFacts],
    node: usize,
    param: usize,
) -> Vec<usize> {
    let mut chain = vec![node];
    let mut cur = (node, param);
    let mut visited: BTreeSet<(usize, usize)> = BTreeSet::new();
    'outer: while visited.insert(cur) {
        for (ci, sites) in graph.calls.iter().enumerate() {
            if graph.nodes[ci].is_test {
                continue;
            }
            for site in sites {
                if site.callee != cur.0 {
                    continue;
                }
                let Some(arg) = site.args.get(cur.1) else {
                    continue;
                };
                let Some(name) = arg_ident(arg) else { continue };
                match facts[ci].rng_values.get(name) {
                    Some(RngOrigin::Constructed(_)) => {
                        chain.push(ci);
                        chain.reverse();
                        return chain;
                    }
                    Some(RngOrigin::Param(p)) => {
                        chain.push(ci);
                        cur = (ci, *p);
                        continue 'outer;
                    }
                    None => {}
                }
            }
        }
        break;
    }
    chain.reverse();
    chain
}

/// The bare identifier an argument passes, if it is one (`&mut rng` →
/// `rng`; `rng.split(i)` and richer expressions return `None`).
pub fn arg_ident(arg: &str) -> Option<&str> {
    let s = arg.trim().trim_start_matches('&').trim_start();
    let s = s.strip_prefix("mut ").unwrap_or(s).trim();
    let ok = !s.is_empty()
        && s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
        && !s.as_bytes()[0].is_ascii_digit();
    ok.then_some(s)
}

/// `let [mut] name = …` on one masked line → `(name, rhs)`.
pub fn let_binding(line: &str) -> Option<(&str, &str)> {
    let at = find_word(line, "let", 0)?;
    let rest = line[at + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest
        .bytes()
        .position(|b| !(b.is_ascii_alphanumeric() || b == b'_'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    let (name, tail) = rest.split_at(end);
    // Skip a type ascription, stop at `=` (but not `==`).
    let eq = tail.find('=')?;
    if tail.as_bytes().get(eq + 1) == Some(&b'=') {
        return None;
    }
    Some((name, tail[eq + 1..].trim()))
}

/// Join the statement starting at `idx` (up to 6 lines or the first `;`).
pub fn join_statement(code: &[String], idx: usize) -> String {
    let mut joined = String::new();
    for line in code.iter().skip(idx).take(6) {
        joined.push_str(line.trim());
        joined.push(' ');
        if line.trim_end().ends_with(';') {
            break;
        }
    }
    joined
}

// ---------------------------------------------------------------------------
// Panic sites (for panic-reachable-from-serve)
// ---------------------------------------------------------------------------

/// Classify a masked line's panic potential: `.unwrap()`, `.expect(…)`,
/// a panicking macro, or slice/array indexing. Attribute lines are never
/// panic sites.
pub fn panic_kind_on_line(line: &str) -> Option<&'static str> {
    if line.trim_start().starts_with("#[") || line.trim_start().starts_with("#!") {
        return None;
    }
    if line.contains(".unwrap()") {
        return Some(".unwrap()");
    }
    if method_call(line, ".expect") {
        return Some(".expect(…)");
    }
    for (word, label) in [
        ("panic", "panic!"),
        ("unreachable", "unreachable!"),
        ("todo", "todo!"),
        ("unimplemented", "unimplemented!"),
    ] {
        if find_word(line, word, 0)
            .is_some_and(|p| line.as_bytes().get(p + word.len()) == Some(&b'!'))
        {
            return Some(label);
        }
    }
    if indexing_on_line(line) {
        return Some("indexing");
    }
    None
}

/// Does the line index into a value (`xs[i]`, `buf[a..b]`)? A `[` counts
/// when the previous non-space byte ends an expression (identifier, `)`,
/// or `]`) — array literals, types, and `vec![…]` do not match.
pub fn indexing_on_line(line: &str) -> bool {
    let bytes = line.as_bytes();
    for i in 0..bytes.len() {
        if bytes[i] != b'[' {
            continue;
        }
        let mut j = i;
        while j > 0 && bytes[j - 1] == b' ' {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let prev = bytes[j - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            // `vec![`-style macros end with `!` which already fails this
            // test. A keyword before `[` means a slice TYPE (`&mut [T]`,
            // `dyn [T]`, `as [u8; 4]`), not an indexing expression.
            let mut s = j - 1;
            while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
                s -= 1;
            }
            if matches!(&line[s..j], "mut" | "dyn" | "as" | "in" | "impl") {
                continue;
            }
            return true;
        }
    }
    false
}

/// Is `name` followed directly by `(` somewhere in the line?
fn method_call(line: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let at = from + pos + name.len();
        if line.as_bytes().get(at) == Some(&b'(') {
            return true;
        }
        from = from + pos + 1;
    }
    false
}

// ---------------------------------------------------------------------------
// Float accumulation (for float-order-sensitivity)
// ---------------------------------------------------------------------------

/// Sinks that fold floats in iteration order: reassociation under a
/// different order changes the bits. Complementary to
/// `ORDER_SAFE_SINKS`, which (correctly for integers) treats `.sum::` as
/// order-free.
pub const FLOAT_FOLD_SINKS: &[&str] = &[
    ".sum::<f64>",
    ".sum::<f32>",
    ".product::<f64>",
    ".product::<f32>",
    ".fold(0.0",
    ".fold(0f64",
    ".fold(0f32",
    ".fold(1.0",
];

/// Identifiers in this file declared with a float type (`x: f64`) or
/// bound from a float literal (`let x = 0.0`). Non-test lines only.
pub fn float_idents(file: &crate::tokenizer::MaskedFile) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (idx, line) in file.code.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        for ty in ["f64", "f32"] {
            let mut from = 0;
            while let Some(pos) = find_word(line, ty, from) {
                let before = line[..pos].trim_end();
                if let Some(before_colon) = before.strip_suffix(':') {
                    if let Some(name) = trailing_ident(before_colon.trim_end()) {
                        out.insert(name.to_string());
                    }
                }
                from = pos + ty.len();
            }
        }
        if let Some((name, rhs)) = let_binding(line) {
            if is_float_literal(rhs.trim_end_matches(';').trim()) {
                out.insert(name.to_string());
            }
        }
    }
    out
}

/// `0.0`, `-1.5`, `2.0e9` — a bare float literal.
fn is_float_literal(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s);
    !s.is_empty()
        && s.contains('.')
        && s.bytes()
            .all(|b| b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'-')
}

/// Float accumulations (`name += …`) in `span` onto captured (non-param)
/// identifiers from `floats`.
pub fn captured_float_accumulation(span: &str, floats: &BTreeSet<String>) -> Option<String> {
    let params = closure_params(span);
    let mut from = 0;
    while let Some(pos) = span[from..].find("+=") {
        let at = from + pos;
        if let Some(name) = trailing_ident(span[..at].trim_end()) {
            if floats.contains(name) && !params.iter().any(|p| p == name) {
                return Some(name.to_string());
            }
        }
        from = at + 2;
    }
    None
}

/// The trailing identifier of a string slice, if it ends with one.
fn trailing_ident(s: &str) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut start = bytes.len();
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    if start == bytes.len() {
        return None;
    }
    let ident = &s[start..];
    ident
        .chars()
        .next()
        .filter(|c| c.is_ascii_alphabetic() || *c == '_')
        .map(|_| ident)
}

// ---------------------------------------------------------------------------
// Allocation sites (for alloc-in-hot-loop)
// ---------------------------------------------------------------------------

/// Files whose every function counts as hot, by basename — the posting
/// list, like-ledger, event-queue, and columnar kernels that dominate the
/// ≥10x scale profile. Other functions opt in with `// lint:hot`.
pub const HOT_FILE_BASENAMES: &[&str] = &["posting.rs", "likes.rs", "queue.rs", "columns.rs"];

/// Allocation spellings worth flagging in a hot loop.
const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    ".collect()",
    ".collect::<",
    "format!(",
    ".to_vec()",
    ".to_string()",
    ".to_owned()",
    "String::new(",
    "String::with_capacity(",
    "Box::new(",
];

/// The first allocation spelling on a masked line, if any.
pub fn alloc_on_line(line: &str) -> Option<&'static str> {
    ALLOC_PATTERNS.iter().find(|p| line.contains(**p)).copied()
}

/// Is this file hot by basename?
pub fn is_hot_file(rel_path: &str) -> bool {
    let base = rel_path.rsplit('/').next().unwrap_or(rel_path);
    HOT_FILE_BASENAMES.contains(&base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::tokenizer::mask;
    use crate::walk::FileKind;

    fn pf(rel_path: &str, crate_name: &str, src: &str) -> ParsedFile {
        let masked = mask(src);
        let items = parse::parse(&masked);
        ParsedFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            kind: FileKind::Library,
            masked,
            items,
        }
    }

    fn node(g: &CallGraph, q: &str) -> usize {
        g.nodes.iter().position(|n| n.qualified == q).expect(q)
    }

    #[test]
    fn rng_values_by_type_and_construction() {
        let src = "fn f(sampler: &mut Rng, n: u32) {\n\
                   let fresh = Rng::seed_from_u64(7);\n\
                   let child = fresh.split(1);\n\
                   let parts = name.split(',');\n\
                   let seed = derive_stream_seed(base, 3);\n}\n";
        let files = vec![pf("crates/a/src/lib.rs", "a", src)];
        let g = CallGraph::build(&files);
        let facts = fn_facts(&files, &g);
        let f = &facts[node(&g, "f")];
        assert_eq!(f.rng_values.get("sampler"), Some(&RngOrigin::Param(0)));
        assert_eq!(f.rng_values.get("fresh"), Some(&RngOrigin::Constructed(1)));
        assert_eq!(f.rng_values.get("child"), Some(&RngOrigin::Constructed(2)));
        assert_eq!(f.rng_values.get("seed"), Some(&RngOrigin::Constructed(4)));
        assert!(
            !f.rng_values.contains_key("parts"),
            "str split is not an Rng: {:?}",
            f.rng_values
        );
        assert!(!f.rng_values.contains_key("n"));
    }

    #[test]
    fn hazard_params_propagate_with_witnesses() {
        let src = "\
fn root(items: &[u32]) -> Vec<u64> {\n\
    let master = Rng::seed_from_u64(1);\n\
    middle(&master, items)\n\
}\n\
fn middle(sampler: &Rng, items: &[u32]) -> Vec<u64> {\n\
    leaf(sampler, items)\n\
}\n\
fn leaf(stream: &Rng, items: &[u32]) -> Vec<u64> {\n\
    parallel_map(Exec::auto(), items, |x| stream.peek(*x))\n\
}\n";
        let files = vec![pf("crates/a/src/lib.rs", "a", src)];
        let g = CallGraph::build(&files);
        let facts = fn_facts(&files, &g);
        let hz = hazard_params(&g, &facts);
        let leaf = node(&g, "leaf");
        let middle = node(&g, "middle");
        assert!(matches!(
            hz[leaf].get(&0),
            Some(Witness::Direct { line: 8 })
        ));
        assert!(matches!(hz[middle].get(&0), Some(Witness::Via { .. })));
        let (path, line) = hazard_sink(&hz, middle, 0);
        assert_eq!(path, vec![middle, leaf]);
        assert_eq!(line, 8);
        let chain = rng_root_chain(&g, &facts, leaf, 0);
        assert_eq!(
            g.render_path(&chain),
            vec!["root", "middle", "leaf"],
            "chain: {chain:?}"
        );
    }

    #[test]
    fn split_in_span_is_stream_safe() {
        let src = "\
fn leaf(stream: &Rng, items: &[u32]) -> Vec<u64> {\n\
    parallel_map(Exec::auto(), items, |x| stream.split(*x as u64).peek(1))\n\
}\n";
        let files = vec![pf("crates/a/src/lib.rs", "a", src)];
        let g = CallGraph::build(&files);
        let facts = fn_facts(&files, &g);
        let hz = hazard_params(&g, &facts);
        assert!(hz[node(&g, "leaf")].is_empty());
    }

    #[test]
    fn arg_ident_accepts_references_only() {
        assert_eq!(arg_ident("&mut rng"), Some("rng"));
        assert_eq!(arg_ident("& sampler"), Some("sampler"));
        assert_eq!(arg_ident("rng"), Some("rng"));
        assert_eq!(arg_ident("rng.split(3)"), None);
        assert_eq!(arg_ident("1 + 2"), None);
        assert_eq!(arg_ident("self.rng"), None);
    }

    #[test]
    fn panic_kinds() {
        assert_eq!(panic_kind_on_line("let v = x.unwrap();"), Some(".unwrap()"));
        assert_eq!(panic_kind_on_line("x.expect(  )"), Some(".expect(…)"));
        assert_eq!(panic_kind_on_line("panic!( )"), Some("panic!"));
        assert_eq!(panic_kind_on_line("unreachable!()"), Some("unreachable!"));
        assert_eq!(panic_kind_on_line("let y = xs[i];"), Some("indexing"));
        assert_eq!(panic_kind_on_line("let y = &xs[a..b];"), Some("indexing"));
        assert_eq!(panic_kind_on_line("let a = [0u8; 4];"), None);
        assert_eq!(panic_kind_on_line("let v = vec![1, 2];"), None);
        assert_eq!(panic_kind_on_line("fn f(x: [u8; 4]) {}"), None);
        assert_eq!(
            panic_kind_on_line("fn g(xs: &mut [u32], n: usize) {}"),
            None
        );
        assert_eq!(panic_kind_on_line("let b = x as [u8; 2];"), None);
        assert_eq!(panic_kind_on_line("#[derive(Debug)]"), None);
        assert_eq!(panic_kind_on_line("x.unwrap_or(0);"), None);
        assert_eq!(panic_kind_on_line("x.expect_err( );"), None);
    }

    #[test]
    fn float_idents_and_accumulation() {
        let file = mask(
            "fn f(score: f64, n: u32) {\n    let acc = 0.0;\n    let k = 3;\n    parallel_map(exec, items, |x| { acc += x; })\n}\n",
        );
        let floats = float_idents(&file);
        assert!(floats.contains("score"));
        assert!(floats.contains("acc"));
        assert!(!floats.contains("k"));
        let span = "(exec, items, |x| { acc += x; })";
        assert_eq!(
            captured_float_accumulation(span, &floats),
            Some("acc".to_string())
        );
        let safe = "(exec, items, |acc| { acc += 1.0; })";
        assert_eq!(captured_float_accumulation(safe, &floats), None);
    }

    #[test]
    fn alloc_and_hot_files() {
        assert_eq!(alloc_on_line("let v = Vec::new();"), Some("Vec::new("));
        assert_eq!(alloc_on_line("let s = format!(  );"), Some("format!("));
        assert_eq!(alloc_on_line("let t = xs.to_vec();"), Some(".to_vec()"));
        assert_eq!(alloc_on_line("out.push(x);"), None);
        assert!(is_hot_file("crates/osn/src/posting.rs"));
        assert!(is_hot_file("crates/sim/src/queue.rs"));
        assert!(!is_hot_file("crates/osn/src/world.rs"));
    }

    #[test]
    fn let_bindings_parse() {
        assert_eq!(
            let_binding("    let mut rng = Rng::seed_from_u64(9);"),
            Some(("rng", "Rng::seed_from_u64(9);"))
        );
        assert_eq!(let_binding("let x: u64 = 3;").map(|(n, _)| n), Some("x"));
        assert_eq!(let_binding("if x == y {"), None);
        assert_eq!(let_binding("letx = 3;"), None);
    }
}
