//! Findings and their human / JSON renderings.
//!
//! The JSON schema follows the obs exporter conventions (hand-rolled
//! writer, stable key order, versioned top-level document) so CI tooling
//! that already consumes `--metrics-out` documents can consume lint
//! reports the same way.

use std::fmt::Write as _;

/// One rule violation at a concrete source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (e.g. `unwrap-in-library`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// One-sentence suggestion for fixing or suppressing the finding.
    pub hint: String,
    /// For interprocedural rules: the call chain that reaches the site,
    /// entry-first (qualified fn names). Empty for per-file rules.
    pub path: Vec<String>,
}

/// A full lint report: live findings plus baseline accounting.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by the baseline — these fail the build.
    pub findings: Vec<Finding>,
    /// Findings matched (and therefore suppressed) by the baseline.
    pub baselined: Vec<Finding>,
    /// Baseline entries that matched nothing — candidates for removal
    /// at the next `LIKELAB_UPDATE_LINT_BASELINE=1` refresh.
    pub stale_baseline: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when no non-baselined finding remains.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering: one block per finding, then a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.snippet);
            if f.path.len() > 1 {
                let _ = writeln!(out, "    reachable via {}", f.path.join(" → "));
            }
            let _ = writeln!(out, "    hint: {}", f.hint);
        }
        if !self.stale_baseline.is_empty() {
            let _ = writeln!(
                out,
                "note: {} stale baseline entr{} (matched no finding); refresh with LIKELAB_UPDATE_LINT_BASELINE=1",
                self.stale_baseline.len(),
                if self.stale_baseline.len() == 1 { "y" } else { "ies" },
            );
        }
        let _ = writeln!(
            out,
            "{} finding{}, {} baselined, {} file{} scanned",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.baselined.len(),
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
        );
        out
    }

    /// JSON rendering (schema version 1):
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "findings": [{"rule": "...", "file": "...", "line": 3,
    ///                 "snippet": "...", "hint": "...", "path": ["a", "b"]}],
    ///   "baselined": 80,
    ///   "baselined_by_rule": {"unwrap-in-library": 80},
    ///   "stale_baseline": ["..."],
    ///   "files_scanned": 96
    /// }
    /// ```
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"snippet\": \"{}\", \"hint\": \"{}\", \"path\": [{}]}}",
                if i == 0 { "" } else { "," },
                json_escape(f.rule),
                json_escape(&f.file),
                f.line,
                json_escape(&f.snippet),
                json_escape(&f.hint),
                f.path
                    .iter()
                    .map(|p| format!("\"{}\"", json_escape(p)))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        let _ = writeln!(out, "  \"baselined\": {},", self.baselined.len());
        // Per-rule counts so CI can render a summary table without
        // shipping every baselined finding in full.
        let mut by_rule: std::collections::BTreeMap<&str, usize> =
            std::collections::BTreeMap::new();
        for f in &self.baselined {
            *by_rule.entry(f.rule).or_insert(0) += 1;
        }
        out.push_str("  \"baselined_by_rule\": {");
        for (i, (rule, n)) in by_rule.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\": {n}",
                if i == 0 { "" } else { ", " },
                json_escape(rule)
            );
        }
        out.push_str("},\n");
        out.push_str("  \"stale_baseline\": [");
        for (i, s) in self.stale_baseline.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\"",
                if i == 0 { "" } else { ", " },
                json_escape(s)
            );
        }
        out.push_str("],\n");
        let _ = writeln!(out, "  \"files_scanned\": {}", self.files_scanned);
        out.push('}');
        out
    }

    /// SARIF 2.1.0 rendering — the minimal document GitHub's code-scanning
    /// upload and PR annotations accept: one run, the rule catalog in the
    /// driver, one `result` per finding. Call chains are folded into the
    /// message text (SARIF code flows need column-level regions the line
    /// scanner does not have).
    pub fn render_sarif(&self) -> String {
        let mut out = String::from(
            "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"likelab-lint\",\n          \"informationUri\": \"LINTS.md\",\n          \"rules\": [",
        );
        for (i, r) in crate::rules::RULES.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
                if i == 0 { "" } else { "," },
                json_escape(r.id),
                json_escape(r.summary),
            );
        }
        out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let message = if f.path.len() > 1 {
                format!("{} (reachable via {})", f.hint, f.path.join(" → "))
            } else {
                f.hint.clone()
            };
            let _ = write!(
                out,
                "{}\n        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
                if i == 0 { "" } else { "," },
                json_escape(f.rule),
                json_escape(&message),
                json_escape(&f.file),
                f.line,
            );
        }
        out.push_str(if self.findings.is_empty() {
            "]\n    }\n  ]\n}\n"
        } else {
            "\n      ]\n    }\n  ]\n}\n"
        });
        out
    }
}

/// Escape a string for embedding in a JSON document (same rules as the
/// obs exporter: quotes, backslashes, and control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "unwrap-in-library",
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            snippet: "let v = m.get(\"k\").unwrap();".into(),
            hint: "propagate the error".into(),
            path: Vec::new(),
        }
    }

    fn pathed_finding() -> Finding {
        Finding {
            rule: "panic-reachable-from-serve",
            file: "crates/y/src/inner.rs".into(),
            line: 3,
            snippet: "let v = xs[i];".into(),
            hint: "use a non-panicking accessor".into(),
            path: vec!["ServeEngine::ingest".into(), "helper".into(), "leaf".into()],
        }
    }

    #[test]
    fn human_names_rule_file_and_line() {
        let r = Report {
            findings: vec![finding()],
            ..Report::default()
        };
        let h = r.render_human();
        assert!(h.contains("crates/x/src/lib.rs:7: [unwrap-in-library]"));
        assert!(h.contains("hint: propagate the error"));
        assert!(h.contains("1 finding"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let r = Report {
            findings: vec![finding()],
            stale_baseline: vec!["old entry".into()],
            files_scanned: 3,
            ..Report::default()
        };
        let j = r.render_json();
        assert!(j.contains("\"version\": 1"));
        assert!(j.contains("\"line\": 7"));
        assert!(j.contains("\\\"k\\\""), "snippet quotes escaped: {j}");
        assert!(j.contains("\"files_scanned\": 3"));
    }

    #[test]
    fn escape_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn human_renders_call_path() {
        let r = Report {
            findings: vec![pathed_finding()],
            ..Report::default()
        };
        let h = r.render_human();
        assert!(
            h.contains("reachable via ServeEngine::ingest → helper → leaf"),
            "{h}"
        );
    }

    #[test]
    fn json_includes_path_array() {
        let r = Report {
            findings: vec![pathed_finding()],
            ..Report::default()
        };
        let j = r.render_json();
        assert!(
            j.contains("\"path\": [\"ServeEngine::ingest\", \"helper\", \"leaf\"]"),
            "{j}"
        );
        let plain = Report {
            findings: vec![finding()],
            ..Report::default()
        };
        assert!(plain.render_json().contains("\"path\": []"));
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let r = Report {
            findings: vec![finding(), pathed_finding()],
            files_scanned: 2,
            ..Report::default()
        };
        let s = r.render_sarif();
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"name\": \"likelab-lint\""));
        // Every known rule is declared in the driver catalog.
        for rule in crate::rules::RULES {
            assert!(
                s.contains(&format!("\"id\": \"{}\"", rule.id)),
                "{}",
                rule.id
            );
        }
        assert!(s.contains("\"ruleId\": \"unwrap-in-library\""));
        assert!(s.contains("\"uri\": \"crates/y/src/inner.rs\""));
        assert!(s.contains("\"startLine\": 3"));
        assert!(
            s.contains("(reachable via ServeEngine::ingest → helper → leaf)"),
            "{s}"
        );
    }

    #[test]
    fn sarif_empty_report_is_well_formed() {
        let s = Report::default().render_sarif();
        assert!(s.contains("\"results\": []"));
    }
}
