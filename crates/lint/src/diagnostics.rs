//! Findings and their human / JSON renderings.
//!
//! The JSON schema follows the obs exporter conventions (hand-rolled
//! writer, stable key order, versioned top-level document) so CI tooling
//! that already consumes `--metrics-out` documents can consume lint
//! reports the same way.

use std::fmt::Write as _;

/// One rule violation at a concrete source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (e.g. `unwrap-in-library`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// One-sentence suggestion for fixing or suppressing the finding.
    pub hint: String,
}

/// A full lint report: live findings plus baseline accounting.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by the baseline — these fail the build.
    pub findings: Vec<Finding>,
    /// Findings matched (and therefore suppressed) by the baseline.
    pub baselined: Vec<Finding>,
    /// Baseline entries that matched nothing — candidates for removal
    /// at the next `LIKELAB_UPDATE_LINT_BASELINE=1` refresh.
    pub stale_baseline: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when no non-baselined finding remains.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering: one block per finding, then a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.snippet);
            let _ = writeln!(out, "    hint: {}", f.hint);
        }
        if !self.stale_baseline.is_empty() {
            let _ = writeln!(
                out,
                "note: {} stale baseline entr{} (matched no finding); refresh with LIKELAB_UPDATE_LINT_BASELINE=1",
                self.stale_baseline.len(),
                if self.stale_baseline.len() == 1 { "y" } else { "ies" },
            );
        }
        let _ = writeln!(
            out,
            "{} finding{}, {} baselined, {} file{} scanned",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.baselined.len(),
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
        );
        out
    }

    /// JSON rendering (schema version 1):
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "findings": [{"rule": "...", "file": "...", "line": 3,
    ///                 "snippet": "...", "hint": "..."}],
    ///   "baselined": 80,
    ///   "stale_baseline": ["..."],
    ///   "files_scanned": 96
    /// }
    /// ```
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"snippet\": \"{}\", \"hint\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                json_escape(f.rule),
                json_escape(&f.file),
                f.line,
                json_escape(&f.snippet),
                json_escape(&f.hint),
            );
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        let _ = writeln!(out, "  \"baselined\": {},", self.baselined.len());
        out.push_str("  \"stale_baseline\": [");
        for (i, s) in self.stale_baseline.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\"",
                if i == 0 { "" } else { ", " },
                json_escape(s)
            );
        }
        out.push_str("],\n");
        let _ = writeln!(out, "  \"files_scanned\": {}", self.files_scanned);
        out.push('}');
        out
    }
}

/// Escape a string for embedding in a JSON document (same rules as the
/// obs exporter: quotes, backslashes, and control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "unwrap-in-library",
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            snippet: "let v = m.get(\"k\").unwrap();".into(),
            hint: "propagate the error".into(),
        }
    }

    #[test]
    fn human_names_rule_file_and_line() {
        let r = Report {
            findings: vec![finding()],
            ..Report::default()
        };
        let h = r.render_human();
        assert!(h.contains("crates/x/src/lib.rs:7: [unwrap-in-library]"));
        assert!(h.contains("hint: propagate the error"));
        assert!(h.contains("1 finding"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let r = Report {
            findings: vec![finding()],
            stale_baseline: vec!["old entry".into()],
            files_scanned: 3,
            ..Report::default()
        };
        let j = r.render_json();
        assert!(j.contains("\"version\": 1"));
        assert!(j.contains("\"line\": 7"));
        assert!(j.contains("\\\"k\\\""), "snippet quotes escaped: {j}");
        assert!(j.contains("\"files_scanned\": 3"));
    }

    #[test]
    fn escape_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
