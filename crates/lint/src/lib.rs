//! # likelab-lint — determinism & hygiene analysis for the workspace
//!
//! Every headline number in the reproduction rests on one invariant: a
//! study run is **byte-identical** across worker counts, fault toggles,
//! and machines. That invariant is enforced dynamically by the
//! worker-invariance and golden-checklist tests — but a stray `HashMap`
//! iteration or ambient `SystemTime` call can slip into a rarely-executed
//! report path and break it silently. This crate catches those patterns
//! at the source level, before a test ever runs.
//!
//! It is a deliberately small, zero-external-dependency analyzer: a
//! hand-rolled tokenizer (strings/comments/attributes aware — no `syn`),
//! a syntactic layer on top of it — an item/function parser
//! ([`parse`]), a workspace call graph ([`callgraph`]), and per-function
//! dataflow summaries ([`dataflow`]) powering interprocedural rules with
//! `reachable via a → b → c` diagnostics — plus a rule engine with
//! per-line `// lint:allow(rule)` pragmas and a checked-in baseline
//! (`lint-baseline.json`) so pre-existing findings do not block the
//! build while new ones fail it.
//!
//! ## Usage
//!
//! ```text
//! likelab lint                         # via the main CLI
//! cargo run -p likelab-lint --         # standalone, same flags
//!     [--root DIR] [--format human|json|sarif]
//!     [--baseline lint-baseline.json] [--update-baseline]
//!     [--list-rules] [--explain RULE]
//! ```
//!
//! Exit status is 0 when the workspace is clean (modulo baseline), 1 when
//! any non-baselined finding remains, 2 on usage/IO errors. Refresh the
//! baseline with `LIKELAB_UPDATE_LINT_BASELINE=1` (mirroring the golden
//! checklist's `LIKELAB_UPDATE_GOLDEN=1` convention).
//!
//! The rule catalog lives in `LINTS.md` at the workspace root; rule ids
//! are stable and listed by [`rules::RULES`].
//!
//! ## Library example
//!
//! ```
//! use likelab_lint::{rules, walk::FileKind};
//!
//! let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
//! let findings = rules::scan_source("crates/x/src/lib.rs", "x", FileKind::Library, src);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "unwrap-in-library");
//! assert_eq!(findings[0].line, 1);
//! ```

pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod diagnostics;
pub mod parse;
pub mod rules;
pub mod tokenizer;
pub mod walk;

use baseline::Baseline;
use diagnostics::Report;
use std::fs;
use std::path::Path;

/// Options for a workspace lint run.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// Baseline file path (workspace-relative or absolute); `None` runs
    /// without a baseline.
    pub baseline: Option<String>,
    /// Rewrite the baseline to exactly the current findings.
    pub update_baseline: bool,
}

/// Lint the workspace rooted at `root`.
///
/// When `opts.update_baseline` is set, the baseline file is rewritten to
/// accept every current finding and the returned report is clean.
pub fn run(root: &Path, opts: &Options) -> Result<Report, String> {
    let files = walk::discover(root).map_err(|e| format!("scan {}: {e}", root.display()))?;
    // Phase 1: read, mask, and parse every file once. The parsed set is
    // shared by the per-file rules and the interprocedural passes.
    let mut parsed = Vec::with_capacity(files.len());
    for f in &files {
        let path = root.join(&f.rel_path);
        let source =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let masked = tokenizer::mask(&source);
        let items = parse::parse(&masked);
        parsed.push(parse::ParsedFile {
            rel_path: f.rel_path.clone(),
            crate_name: f.crate_name.clone(),
            kind: f.kind,
            masked,
            items,
        });
    }
    // Phase 2: per-file rules, then the workspace rules over the call graph.
    let mut all = Vec::new();
    for pf in &parsed {
        all.extend(rules::scan_masked(
            &pf.rel_path,
            &pf.crate_name,
            pf.kind,
            &pf.masked,
        ));
    }
    let graph = callgraph::CallGraph::build(&parsed);
    all.extend(rules::scan_workspace(&parsed, &graph));
    all.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let files_scanned = files.len();

    let Some(baseline_rel) = &opts.baseline else {
        return Ok(Report {
            findings: all,
            files_scanned,
            ..Report::default()
        });
    };
    let baseline_path = root.join(baseline_rel);

    if opts.update_baseline {
        let baseline = Baseline::from_findings(&all);
        fs::write(&baseline_path, baseline.to_json())
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        return Ok(Report {
            baselined: all,
            files_scanned,
            ..Report::default()
        });
    }

    let baseline = if baseline_path.exists() {
        let text = fs::read_to_string(&baseline_path)
            .map_err(|e| format!("read {}: {e}", baseline_path.display()))?;
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?
    } else {
        Baseline::default()
    };
    let (findings, baselined, stale_baseline) = baseline.apply(all);
    Ok(Report {
        findings,
        baselined,
        stale_baseline,
        files_scanned,
    })
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
