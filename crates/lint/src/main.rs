//! `likelab-lint` — standalone analyzer binary for CI.
//!
//! ```text
//! likelab-lint [--root DIR] [--format human|json|sarif]
//!              [--baseline lint-baseline.json] [--update-baseline]
//!              [--report-out FILE] [--list-rules] [--explain RULE]
//! ```
//!
//! Exit 0: clean (all findings baselined). Exit 1: non-baselined
//! findings. Exit 2: usage or IO error. Setting
//! `LIKELAB_UPDATE_LINT_BASELINE=1` is equivalent to `--update-baseline`.

use likelab_lint::{find_workspace_root, rules, run, Options};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Cli {
    root: Option<PathBuf>,
    format: Format,
    baseline: Option<String>,
    update_baseline: bool,
    report_out: Option<PathBuf>,
    list_rules: bool,
    explain: Option<String>,
}

fn usage() -> &'static str {
    "likelab-lint — determinism & hygiene analyzer (see LINTS.md)\n\n\
     USAGE:\n\
     \x20 likelab-lint [--root DIR] [--format human|json|sarif]\n\
     \x20              [--baseline lint-baseline.json] [--update-baseline]\n\
     \x20              [--report-out FILE] [--list-rules] [--explain RULE]\n\n\
     Exit 0 when clean, 1 on non-baselined findings, 2 on errors.\n\
     LIKELAB_UPDATE_LINT_BASELINE=1 is the same as --update-baseline."
}

/// Print the long-form description of one rule; error on unknown ids.
fn explain(id: &str) -> Result<String, String> {
    for r in rules::RULES {
        if r.id == id {
            return Ok(format!("{}\n  {}\n\n{}", r.id, r.summary, r.explain));
        }
    }
    let known: Vec<&str> = rules::RULES.iter().map(|r| r.id).collect();
    Err(format!(
        "unknown rule `{id}`; known rules: {}",
        known.join(", ")
    ))
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        root: None,
        format: Format::Human,
        baseline: None,
        update_baseline: std::env::var("LIKELAB_UPDATE_LINT_BASELINE").as_deref() == Ok("1"),
        report_out: None,
        list_rules: false,
        explain: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                cli.root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("human") => cli.format = Format::Human,
                Some("json") => cli.format = Format::Json,
                Some("sarif") => cli.format = Format::Sarif,
                _ => return Err("--format needs human|json|sarif".into()),
            },
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file path")?;
                cli.baseline = Some(v.clone());
            }
            "--update-baseline" => cli.update_baseline = true,
            "--report-out" => {
                let v = it.next().ok_or("--report-out needs a file path")?;
                cli.report_out = Some(PathBuf::from(v));
            }
            "--list-rules" => cli.list_rules = true,
            "--explain" => {
                let v = it.next().ok_or("--explain needs a rule id")?;
                cli.explain = Some(v.clone());
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if cli.list_rules {
        for r in rules::RULES {
            println!("{:28} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(id) = &cli.explain {
        match explain(id) {
            Ok(text) => {
                println!("{text}");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match cli.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("error: could not locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };
    let opts = Options {
        baseline: cli.baseline.clone(),
        update_baseline: cli.update_baseline,
    };
    let report = match run(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let rendered = match cli.format {
        Format::Human => report.render_human(),
        Format::Json => report.render_json(),
        Format::Sarif => report.render_sarif(),
    };
    if let Some(path) = &cli.report_out {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("error: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("lint report written to {}", path.display());
    }
    println!("{rendered}");
    if cli.update_baseline {
        eprintln!(
            "baseline updated with {} finding(s)",
            report.baselined.len()
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
