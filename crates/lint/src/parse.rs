//! A recursive-descent item parser over the masked token stream.
//!
//! The tokenizer ([`crate::tokenizer`]) answers "is this byte code?"; this
//! module answers "which *item* does this line belong to?". It produces a
//! per-file [`FileItems`] tree: every function with its line span, its
//! enclosing module path and `impl`/`trait` self type, its parameter list
//! (names and type text), its return-type text, the spans of the loops in
//! its body, and the file's `use` map. That is exactly the vocabulary the
//! call graph ([`crate::callgraph`]) and the dataflow summaries
//! ([`crate::dataflow`]) need — deliberately far short of a real AST.
//!
//! The parser is a single forward pass over line tokens with an explicit
//! frame stack (module / impl / fn / loop), so it is linear in the source
//! and cannot loop. Unbalanced braces (mid-edit files) degrade gracefully:
//! frames left open at EOF are closed at the last line.

use crate::tokenizer::MaskedFile;
use crate::walk::FileKind;

/// One fully analyzed source file: discovery metadata, the mask, and the
/// item tree. The workspace-wide passes (call graph, dataflow rules)
/// operate on a slice of these.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative, `/`-separated path.
    pub rel_path: String,
    /// Owning crate name (`likelab-sim`, …).
    pub crate_name: String,
    /// File classification for rule scoping.
    pub kind: FileKind,
    /// The masked source.
    pub masked: MaskedFile,
    /// The parsed item tree.
    pub items: FileItems,
}

/// One function parameter: the bound name (best effort for patterns) and
/// the raw type text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// The bound identifier (`rng` in `rng: &mut Rng`); for destructuring
    /// patterns, the last identifier before the colon.
    pub name: String,
    /// The type text, whitespace-normalized (`&mut Rng`).
    pub ty: String,
}

/// One `fn` item with its spans and signature facts.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's bare name.
    pub name: String,
    /// The `impl`/`trait` self type it belongs to (`ServeEngine` for
    /// `impl ServeEngine { fn ingest … }`), if any.
    pub self_ty: Option<String>,
    /// Inline module path within the file (e.g. `["imp"]`), excluding
    /// `#[cfg(test)]` modules which are tracked by `is_test`.
    pub module: Vec<String>,
    /// Parameters, in order. `self` receivers are not included; see
    /// [`FnItem::has_self`].
    pub params: Vec<Param>,
    /// Whether the function takes a `self` receiver.
    pub has_self: bool,
    /// Return-type text (empty for `()`).
    pub ret: String,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based line of the body's `{` (== `sig_line` for one-line sigs).
    pub body_start: usize,
    /// 0-based line of the matching `}`, inclusive.
    pub body_end: usize,
    /// True when the function lives in a `#[cfg(test)]` region.
    pub is_test: bool,
    /// True when the function is annotated `// lint:hot` (same line as the
    /// signature or any immediately preceding comment line).
    pub is_hot: bool,
    /// Body spans of `for`/`while`/`loop` loops, inclusive, innermost last.
    pub loops: Vec<(usize, usize)>,
}

impl FnItem {
    /// `Type::name` when the fn has a self type, else the bare name.
    pub fn qualified_name(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One resolved `use` binding: the local identifier and the full path it
/// names (`parallel_map` → `likelab_sim::parallel::parallel_map`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseDecl {
    /// The identifier visible in this file.
    pub ident: String,
    /// The full `::`-separated path.
    pub path: String,
}

/// Everything the later passes need to know about one file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    /// Every `fn` item, in source order (nested fns included).
    pub functions: Vec<FnItem>,
    /// The file's `use` bindings, in source order.
    pub uses: Vec<UseDecl>,
}

/// A code token: an identifier/keyword or a single punctuation byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tok<'a> {
    Ident(&'a str),
    P(u8),
}

/// Tokenize one masked line (code bytes only — the mask already removed
/// strings and comments).
fn line_tokens(line: &str) -> Vec<Tok<'_>> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphanumeric() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(Tok::Ident(&line[start..i]));
        } else if b == b' ' || b == b'\t' {
            i += 1;
        } else {
            out.push(Tok::P(b));
            i += 1;
        }
    }
    out
}

/// What an armed-but-not-yet-opened item is waiting for.
enum Pending {
    /// `mod name` waiting for `{` or `;`.
    Mod(String),
    /// `impl …`/`trait …` header, accumulating until `{`; the payload is
    /// the best-guess self type so far and whether a `for` was seen.
    ImplHeader { ty: String, after_for: bool },
    /// A `fn` signature, accumulating text until its body `{` (or `;`).
    FnSig {
        name: String,
        text: String,
        paren_depth: i32,
        sig_line: usize,
        is_hot: bool,
    },
    /// `for`/`while`/`loop` waiting for its body `{` at paren depth 0.
    Loop,
}

enum Frame {
    Mod { depth: i32 },
    Impl { depth: i32 },
    Fn { depth: i32, idx: usize },
    Loop { depth: i32, start: usize },
    Anon { depth: i32 },
}

/// Parse one masked file into its item tree.
pub fn parse(file: &MaskedFile) -> FileItems {
    let mut items = FileItems::default();
    let mut frames: Vec<Frame> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut depth: i32 = 0;
    // Paren/bracket depth, used to keep closure braces inside call
    // arguments from being taken for a pending loop/fn body.
    let mut paren: i32 = 0;
    let mut mod_path: Vec<String> = Vec::new();
    let mut impl_stack: Vec<String> = Vec::new();
    // `use` accumulation across lines until `;`.
    let mut use_text: Option<String> = None;

    for (line_idx, line) in file.code.iter().enumerate() {
        let toks = line_tokens(line);
        let mut k = 0usize;
        while k < toks.len() {
            let t = toks[k];
            // 1. Accumulating states run before keyword recognition.
            if let Some(text) = use_text.as_mut() {
                match t {
                    Tok::P(b';') => {
                        parse_use(use_text.take().unwrap_or_default().trim(), &mut items.uses);
                    }
                    _ => push_tok(text, t),
                }
                k += 1;
                continue;
            }
            match pending.take() {
                Some(Pending::Mod(name)) => match t {
                    Tok::P(b'{') => {
                        mod_path.push(name);
                        frames.push(Frame::Mod { depth });
                        depth += 1;
                        k += 1;
                        continue;
                    }
                    Tok::P(b';') => {
                        k += 1;
                        continue;
                    }
                    _ => {
                        // `mod` used oddly; drop the pending state.
                        pending = None;
                    }
                },
                Some(Pending::ImplHeader {
                    mut ty,
                    mut after_for,
                }) => match t {
                    Tok::P(b'{') => {
                        impl_stack.push(impl_self_ty(&ty));
                        frames.push(Frame::Impl { depth });
                        depth += 1;
                        k += 1;
                        continue;
                    }
                    Tok::P(b';') => {
                        k += 1;
                        continue;
                    }
                    Tok::Ident("for") => {
                        after_for = true;
                        ty.clear();
                        pending = Some(Pending::ImplHeader { ty, after_for });
                        k += 1;
                        continue;
                    }
                    Tok::Ident("where") => {
                        pending = Some(Pending::ImplHeader { ty, after_for });
                        k += 1;
                        continue;
                    }
                    other => {
                        push_tok(&mut ty, other);
                        pending = Some(Pending::ImplHeader { ty, after_for });
                        k += 1;
                        continue;
                    }
                },
                Some(Pending::FnSig {
                    name,
                    mut text,
                    mut paren_depth,
                    sig_line,
                    is_hot,
                }) => {
                    match t {
                        Tok::P(b'(') => {
                            paren_depth += 1;
                            text.push('(');
                        }
                        Tok::P(b')') => {
                            paren_depth -= 1;
                            text.push(')');
                        }
                        Tok::P(b'{') if paren_depth == 0 => {
                            let mut f = finish_fn_sig(&name, &text, sig_line, line_idx);
                            f.module = mod_path.clone();
                            f.self_ty = impl_stack.last().cloned();
                            f.is_test = *file.in_test.get(sig_line).unwrap_or(&false);
                            f.is_hot = is_hot;
                            let idx = items.functions.len();
                            items.functions.push(f);
                            frames.push(Frame::Fn { depth, idx });
                            depth += 1;
                            k += 1;
                            continue;
                        }
                        Tok::P(b';') if paren_depth == 0 => {
                            // Trait method declaration without a body.
                            k += 1;
                            continue;
                        }
                        other => push_tok(&mut text, other),
                    }
                    pending = Some(Pending::FnSig {
                        name,
                        text,
                        paren_depth,
                        sig_line,
                        is_hot,
                    });
                    k += 1;
                    continue;
                }
                Some(Pending::Loop) => match t {
                    Tok::P(b'{') if paren == 0 => {
                        frames.push(Frame::Loop {
                            depth,
                            start: line_idx,
                        });
                        depth += 1;
                        k += 1;
                        continue;
                    }
                    Tok::P(b'(') | Tok::P(b'[') => {
                        paren += 1;
                        pending = Some(Pending::Loop);
                        k += 1;
                        continue;
                    }
                    Tok::P(b')') | Tok::P(b']') => {
                        paren -= 1;
                        pending = Some(Pending::Loop);
                        k += 1;
                        continue;
                    }
                    Tok::P(b'{') => {
                        // A closure body inside the loop header's parens.
                        frames.push(Frame::Anon { depth });
                        depth += 1;
                        pending = Some(Pending::Loop);
                        k += 1;
                        continue;
                    }
                    Tok::P(b'}') => {
                        depth -= 1;
                        close_frames(
                            &mut frames,
                            depth,
                            line_idx,
                            &mut items,
                            &mut mod_path,
                            &mut impl_stack,
                        );
                        pending = Some(Pending::Loop);
                        k += 1;
                        continue;
                    }
                    Tok::P(b';') if paren == 0 => {
                        // `loop` used as something else / malformed; give up.
                        k += 1;
                        continue;
                    }
                    _ => {
                        pending = Some(Pending::Loop);
                        k += 1;
                        continue;
                    }
                },
                None => {}
            }

            // 2. Keyword recognition and brace bookkeeping.
            match t {
                Tok::Ident("mod") => {
                    if let Some(Tok::Ident(name)) = toks.get(k + 1) {
                        pending = Some(Pending::Mod((*name).to_string()));
                        k += 2;
                        continue;
                    }
                }
                Tok::Ident("impl") | Tok::Ident("trait") => {
                    pending = Some(Pending::ImplHeader {
                        ty: String::new(),
                        after_for: false,
                    });
                }
                Tok::Ident("fn") => {
                    if let Some(Tok::Ident(name)) = toks.get(k + 1) {
                        pending = Some(Pending::FnSig {
                            name: (*name).to_string(),
                            text: String::new(),
                            paren_depth: 0,
                            sig_line: line_idx,
                            is_hot: fn_is_hot(file, line_idx),
                        });
                        k += 2;
                        continue;
                    }
                }
                Tok::Ident("for") => {
                    // `for<'a>` in higher-ranked bounds is not a loop; a loop
                    // `for` is only meaningful inside a fn body.
                    let in_fn = frames.iter().any(|f| matches!(f, Frame::Fn { .. }));
                    let hrtb = matches!(toks.get(k + 1), Some(Tok::P(b'<')));
                    if in_fn && !hrtb && paren == 0 {
                        pending = Some(Pending::Loop);
                    }
                }
                Tok::Ident("while") | Tok::Ident("loop") => {
                    let in_fn = frames.iter().any(|f| matches!(f, Frame::Fn { .. }));
                    if in_fn && paren == 0 {
                        pending = Some(Pending::Loop);
                    }
                }
                Tok::Ident("use") => {
                    // Only at item position (start of a statement): the
                    // previous token on this line must be `;`, `{`, `}` or
                    // nothing. Good enough to skip `.use_xyz()` methods
                    // (those are idents anyway) and `pub use`.
                    use_text = Some(String::new());
                }
                Tok::P(b'(') | Tok::P(b'[') => paren += 1,
                Tok::P(b')') | Tok::P(b']') => paren -= 1,
                Tok::P(b'{') => {
                    frames.push(Frame::Anon { depth });
                    depth += 1;
                }
                Tok::P(b'}') => {
                    depth -= 1;
                    close_frames(
                        &mut frames,
                        depth,
                        line_idx,
                        &mut items,
                        &mut mod_path,
                        &mut impl_stack,
                    );
                }
                _ => {}
            }
            k += 1;
        }
    }
    // Close anything left open at EOF at the last line.
    let last = file.code.len().saturating_sub(1);
    close_frames(
        &mut frames,
        i32::MIN / 2,
        last,
        &mut items,
        &mut mod_path,
        &mut impl_stack,
    );
    items
}

/// Close every frame whose opening depth is ≥ the new depth.
fn close_frames(
    frames: &mut Vec<Frame>,
    depth: i32,
    line_idx: usize,
    items: &mut FileItems,
    mod_path: &mut Vec<String>,
    impl_stack: &mut Vec<String>,
) {
    while let Some(top) = frames.last() {
        let open = match top {
            Frame::Mod { depth }
            | Frame::Impl { depth }
            | Frame::Fn { depth, .. }
            | Frame::Loop { depth, .. }
            | Frame::Anon { depth } => *depth,
        };
        if open < depth {
            break;
        }
        match frames.pop() {
            Some(Frame::Mod { .. }) => {
                mod_path.pop();
            }
            Some(Frame::Impl { .. }) => {
                impl_stack.pop();
            }
            Some(Frame::Fn { idx, .. }) => {
                if let Some(f) = items.functions.get_mut(idx) {
                    f.body_end = line_idx;
                }
            }
            Some(Frame::Loop { start, .. }) => {
                // Attach to the innermost enclosing fn.
                if let Some(Frame::Fn { idx, .. }) =
                    frames.iter().rev().find(|f| matches!(f, Frame::Fn { .. }))
                {
                    if let Some(f) = items.functions.get_mut(*idx) {
                        f.loops.push((start, line_idx));
                    }
                }
            }
            _ => {}
        }
    }
}

/// Append a token to accumulated signature/header text with one space of
/// separation between identifiers.
fn push_tok(text: &mut String, t: Tok) {
    match t {
        Tok::Ident(w) => {
            if text
                .chars()
                .last()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                text.push(' ');
            }
            text.push_str(w);
        }
        Tok::P(b) => text.push(b as char),
    }
}

/// The self type of an accumulated impl/trait header: the last path
/// segment of the subject, generics stripped (`Foo` for `impl<T> Foo<T>`
/// and for `impl Display for Foo<T>` — the caller already cut at `for`).
fn impl_self_ty(header: &str) -> String {
    let mut base = header.trim();
    // Strip a leading generics list `<…>`.
    if base.starts_with('<') {
        let mut angle = 0i32;
        for (i, c) in base.char_indices() {
            match c {
                '<' => angle += 1,
                '>' => {
                    angle -= 1;
                    if angle == 0 {
                        base = base[i + 1..].trim();
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    // Cut at the subject's own generics.
    let base = base.split('<').next().unwrap_or(base).trim();
    // Last path segment, references stripped.
    let base = base.trim_start_matches('&').trim();
    base.rsplit("::").next().unwrap_or(base).trim().to_string()
}

/// Finish a collected fn signature: extract params and return type.
fn finish_fn_sig(name: &str, text: &str, sig_line: usize, body_line: usize) -> FnItem {
    // `text` is everything between the fn name and the body `{`, e.g.
    // `<T:Clone>(rng:&mut Rng,items:&[T])->Vec<u64> where T:Send`.
    let open = text.find('(');
    let mut params = Vec::new();
    let mut has_self = false;
    let mut ret = String::new();
    if let Some(open) = open {
        let close = matching_paren(text, open);
        let inner = &text[open + 1..close];
        for piece in split_top_level(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            let only_idents: Vec<&str> = piece
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .filter(|s| !s.is_empty())
                .collect();
            if only_idents.last() == Some(&"self") || only_idents.first() == Some(&"self") {
                has_self = true;
                continue;
            }
            if let Some((pat, ty)) = split_param(piece) {
                let name = pat
                    .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                    .find(|s| !s.is_empty() && *s != "mut")
                    .unwrap_or("_")
                    .to_string();
                params.push(Param {
                    name,
                    ty: ty.trim().to_string(),
                });
            }
        }
        // Return type: after the close paren, minus `->` and `where …`.
        let tail = &text[close + 1..];
        if let Some(arrow) = tail.find("->") {
            let mut r = &tail[arrow + 2..];
            if let Some(w) = find_where(r) {
                r = &r[..w];
            }
            ret = r.trim().to_string();
        }
    }
    FnItem {
        name: name.to_string(),
        self_ty: None,
        module: Vec::new(),
        params,
        has_self,
        ret,
        sig_line,
        body_start: body_line,
        body_end: body_line,
        is_test: false,
        is_hot: false,
        loops: Vec::new(),
    }
}

/// The index of the `)` matching the `(` at `open`.
fn matching_paren(text: &str, open: usize) -> usize {
    let mut depth = 0i32;
    for (i, c) in text.char_indices().skip(open) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    text.len().saturating_sub(1)
}

/// Split a parameter list on top-level commas (angle/paren/bracket aware;
/// `->` arrows do not count as closing angles).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let (mut round, mut square, mut angle) = (0i32, 0i32, 0i32);
    let mut start = 0usize;
    for i in 0..bytes.len() {
        match bytes[i] {
            b'(' => round += 1,
            b')' => round -= 1,
            b'[' => square += 1,
            b']' => square -= 1,
            b'<' => angle += 1,
            b'>' if i == 0 || bytes[i - 1] != b'-' => angle -= 1,
            b',' if round == 0 && square == 0 && angle == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Split `pattern: Type` at the first top-level single colon.
fn split_param(piece: &str) -> Option<(&str, &str)> {
    let bytes = piece.as_bytes();
    let (mut round, mut square, mut angle) = (0i32, 0i32, 0i32);
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => round += 1,
            b')' => round -= 1,
            b'[' => square += 1,
            b']' => square -= 1,
            b'<' => angle += 1,
            b'>' if i == 0 || bytes[i - 1] != b'-' => angle -= 1,
            b':' if round == 0 && square == 0 && angle == 0 => {
                if bytes.get(i + 1) == Some(&b':') {
                    i += 2;
                    continue;
                }
                return Some((&piece[..i], &piece[i + 1..]));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Find a top-level ` where ` keyword in return-type text.
fn find_where(s: &str) -> Option<usize> {
    crate::tokenizer::find_word(s, "where", 0)
}

/// Is the fn at `sig_line` annotated `// lint:hot`? The marker may sit on
/// the signature line itself or on any immediately preceding comment line.
fn fn_is_hot(file: &MaskedFile, sig_line: usize) -> bool {
    if file
        .raw
        .get(sig_line)
        .is_some_and(|l| l.contains("lint:hot"))
    {
        return true;
    }
    let mut i = sig_line;
    while i > 0 {
        i -= 1;
        let raw = file.raw[i].trim();
        // Attributes and comments may sit between the marker and the fn.
        if raw.starts_with("//") || raw.starts_with("#[") {
            if raw.contains("lint:hot") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Parse an accumulated `use` statement body (after `use`, before `;`)
/// into bindings. Handles `a::b::c`, `a::b as x`, `a::{b, c as d, e::f}`,
/// and ignores globs (`a::*`) — the call-graph resolver treats unresolved
/// names by crate proximity anyway.
fn parse_use(text: &str, out: &mut Vec<UseDecl>) {
    // Strip a leading visibility that the tokenizer folded in (`pub use`
    // arms the accumulator from `use`, so `pub` never lands here; `pub ( crate )`
    // forms do not either).
    expand_use(text.trim(), "", out);
}

fn expand_use(text: &str, prefix: &str, out: &mut Vec<UseDecl>) {
    let text = text.trim();
    if text.is_empty() || text == "*" {
        return;
    }
    if let Some(brace) = text.find('{') {
        // `head::{…}` — recurse into each top-level piece.
        let head = text[..brace].trim_end_matches("::").trim();
        let inner_end = text.rfind('}').unwrap_or(text.len());
        let inner = &text[brace + 1..inner_end];
        let joined = join_path(prefix, head);
        let mut depth = 0i32;
        let mut start = 0usize;
        let bytes = inner.as_bytes();
        for i in 0..bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                b',' if depth == 0 => {
                    expand_use(&inner[start..i], &joined, out);
                    start = i + 1;
                }
                _ => {}
            }
        }
        expand_use(&inner[start..], &joined, out);
        return;
    }
    // `path as alias` or plain `path`.
    let (path_part, alias) = match crate::tokenizer::find_word(text, "as", 0) {
        Some(pos) => (text[..pos].trim(), Some(text[pos + 2..].trim())),
        None => (text.trim(), None),
    };
    let full = join_path(prefix, path_part);
    let last = full.rsplit("::").next().unwrap_or(&full).to_string();
    let ident = alias.map(str::to_string).unwrap_or(last);
    if ident.is_empty() || ident == "*" {
        return;
    }
    out.push(UseDecl { ident, path: full });
}

fn join_path(prefix: &str, tail: &str) -> String {
    let tail = tail.trim().trim_start_matches("::").trim();
    if prefix.is_empty() {
        tail.to_string()
    } else if tail.is_empty() || tail == "self" {
        prefix.to_string()
    } else {
        format!("{prefix}::{tail}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::mask;

    fn parsed(src: &str) -> FileItems {
        parse(&mask(src))
    }

    #[test]
    fn simple_fn_with_span_and_params() {
        let src = "pub fn f(rng: &mut Rng, items: &[u32]) -> Vec<u64> {\n    body();\n}\n";
        let items = parsed(src);
        assert_eq!(items.functions.len(), 1);
        let f = &items.functions[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.sig_line, 0);
        assert_eq!(f.body_end, 2);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "rng");
        assert_eq!(f.params[0].ty, "&mut Rng");
        assert_eq!(f.params[1].name, "items");
        assert_eq!(f.ret, "Vec<u64>");
        assert!(!f.has_self);
    }

    #[test]
    fn impl_methods_get_self_ty() {
        let src = "struct ServeEngine;\nimpl ServeEngine {\n    pub fn ingest(&mut self, x: u64) -> bool {\n        true\n    }\n}\n";
        let items = parsed(src);
        assert_eq!(items.functions.len(), 1);
        let f = &items.functions[0];
        assert_eq!(f.self_ty.as_deref(), Some("ServeEngine"));
        assert_eq!(f.qualified_name(), "ServeEngine::ingest");
        assert!(f.has_self);
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].name, "x");
    }

    #[test]
    fn trait_impl_for_extracts_subject() {
        let src = "impl<T: Clone> Iterator for PostingIter<'_, T> {\n    fn next(&mut self) -> Option<u32> { None }\n}\n";
        let items = parsed(src);
        assert_eq!(
            items.functions[0].self_ty.as_deref(),
            Some("PostingIter"),
            "{:?}",
            items.functions[0]
        );
    }

    #[test]
    fn multiline_signature() {
        let src = "fn g(\n    a: u32,\n    b: HashMap<u32, Vec<u8>>,\n) -> u64\nwhere\n    u32: Copy,\n{\n    0\n}\n";
        let items = parsed(src);
        let f = &items.functions[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].name, "b");
        assert_eq!(f.params[1].ty, "HashMap<u32,Vec<u8>>");
        assert_eq!(f.ret, "u64");
        assert_eq!(f.body_start, 6);
        assert_eq!(f.body_end, 8);
    }

    #[test]
    fn loops_are_tracked_per_fn() {
        let src = "fn f(xs: &[u32]) -> u32 {\n    let mut t = 0;\n    for x in xs {\n        while t < *x {\n            t += 1;\n        }\n    }\n    loop {\n        break;\n    }\n    t\n}\n";
        let items = parsed(src);
        let f = &items.functions[0];
        // Inner loops close first.
        assert_eq!(f.loops, vec![(3, 5), (2, 6), (7, 9)], "{:?}", f.loops);
    }

    #[test]
    fn closure_brace_in_loop_header_is_not_the_body() {
        let src =
            "fn f(xs: &[u32]) {\n    for x in xs.iter().map(|v| { v + 1 }) {\n        use_it(x);\n    }\n}\n";
        let items = parsed(src);
        let f = &items.functions[0];
        assert_eq!(f.loops, vec![(1, 3)], "{:?}", f.loops);
    }

    #[test]
    fn modules_and_nesting() {
        let src = "mod outer {\n    pub mod inner {\n        pub fn deep() {}\n    }\n}\nfn shallow() {}\n";
        let items = parsed(src);
        assert_eq!(items.functions.len(), 2);
        assert_eq!(items.functions[0].module, vec!["outer", "inner"]);
        assert!(items.functions[1].module.is_empty());
    }

    #[test]
    fn out_of_line_mod_decl_is_ignored() {
        let src = "mod tests;\nfn f() {}\n";
        let items = parsed(src);
        assert_eq!(items.functions.len(), 1);
        assert!(items.functions[0].module.is_empty());
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n";
        let items = parsed(src);
        assert!(!items.functions[0].is_test);
        assert!(items.functions[1].is_test);
    }

    #[test]
    fn hot_annotation_is_detected() {
        let src = "// lint:hot — inner loop of the ledger scatter\nfn scatter() {}\nfn cold() {}\n";
        let items = parsed(src);
        assert!(items.functions[0].is_hot);
        assert!(!items.functions[1].is_hot);
    }

    #[test]
    fn use_map_handles_groups_aliases_and_globs() {
        let src = "use likelab_sim::parallel::{parallel_map, Exec as Ex};\nuse likelab_sim::Rng;\nuse std::collections::*;\nfn f() {}\n";
        let items = parsed(src);
        let find = |id: &str| {
            items
                .uses
                .iter()
                .find(|u| u.ident == id)
                .map(|u| u.path.clone())
        };
        assert_eq!(
            find("parallel_map").as_deref(),
            Some("likelab_sim::parallel::parallel_map")
        );
        assert_eq!(find("Ex").as_deref(), Some("likelab_sim::parallel::Exec"));
        assert_eq!(find("Rng").as_deref(), Some("likelab_sim::Rng"));
        assert!(find("*").is_none());
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let src = "fn f<F: for<'a> Fn(&'a u32)>(g: F) {\n    g(&1);\n}\n";
        let items = parsed(src);
        assert!(items.functions[0].loops.is_empty());
    }

    #[test]
    fn nested_fn_is_its_own_item() {
        let src = "fn outer() {\n    fn inner(x: u32) -> u32 { x }\n    inner(1);\n}\n";
        let items = parsed(src);
        assert_eq!(items.functions.len(), 2);
        assert_eq!(items.functions[0].name, "outer");
        assert_eq!(items.functions[1].name, "inner");
        assert_eq!(items.functions[0].body_end, 3);
        assert_eq!(items.functions[1].body_end, 1);
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        let items = parsed("fn f() {\n    if x {\n");
        assert_eq!(items.functions.len(), 1);
        let items = parsed("}}}}\nfn g() {}\n");
        assert_eq!(items.functions.len(), 1);
    }
}
