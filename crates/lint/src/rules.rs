//! The rule engine and the initial rule set.
//!
//! Every rule targets an invariant the workspace actually depends on
//! (see LINTS.md for the catalog with examples):
//!
//! - `nondeterministic-iteration` — iterating a `HashMap`/`HashSet` in
//!   library code; hash order varies across runs and platforms, which is
//!   exactly how byte-identical reports silently stop being byte-identical.
//! - `ambient-time` — `std::time::{SystemTime, Instant}` outside the
//!   `obs`/`bench` crates; simulated code must use `SimTime`.
//! - `ambient-randomness` — RNG sources not derived from the seeded
//!   `likelab_sim::Rng` stream family.
//! - `rng-shared-across-parallel` — an `Rng` reused inside
//!   `parallel_map`/`parallel_jobs` closures instead of a per-item
//!   `split` stream.
//! - `unwrap-in-library` — `.unwrap()`/`.expect(…)`/`panic!` in library
//!   code.
//! - `stdout-in-library` — `println!`/`print!`/`dbg!` in library code.
//! - `log-bypass` — direct ledger/graph mutation (`.ingest_batch(…)`,
//!   `.friends_mut(…)`) outside the world's recording hooks; bypassed
//!   mutations never reach the study log, so a captured log stops being
//!   replayable.
//!
//! Suppression: a `// lint:allow(rule-id): reason` pragma on the same
//! line or on immediately preceding comment lines; pre-existing findings
//! live in `lint-baseline.json` (see [`crate::baseline`]).

use crate::diagnostics::Finding;
use crate::tokenizer::{self, find_word, MaskedFile};
use crate::walk::FileKind;
use std::collections::BTreeSet;

/// Static description of one rule, for `--list-rules`, `--explain`, and
/// docs.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable identifier used in pragmas, baselines, and reports.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Multi-paragraph explanation for `--explain RULE`: why the rule
    /// exists, what it matches, and how to fix or suppress a finding.
    pub explain: &'static str,
}

/// Every rule the engine knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "nondeterministic-iteration",
        summary: "HashMap/HashSet iteration in library code (hash order is not deterministic)",
        explain: "Iterating a HashMap/HashSet visits entries in hash order, which differs\n\
                  across runs, platforms, and std versions. Any iteration whose order can\n\
                  reach output (report lines, log records, Vec construction) silently breaks\n\
                  the workspace's byte-identical replay contract.\n\
                  Fix: iterate a sorted Vec or a BTreeMap/BTreeSet, or collect-and-sort.\n\
                  Order-independent sinks (.count(), .sum(), .min()/.max(), collect into a\n\
                  keyed map) are recognized and allowed.\n\
                  Suppress: // lint:allow(nondeterministic-iteration): <why order cannot escape>",
    },
    RuleInfo {
        id: "ambient-time",
        summary: "std::time::{SystemTime, Instant} outside the obs/bench crates",
        explain: "Simulated code must take time from likelab_sim::SimTime so replays are\n\
                  reproducible; wall-clock reads make behavior depend on the host. Only the\n\
                  observability layer (likelab-obs) and the bench harness may read real time.\n\
                  Fix: thread SimTime through, or move the measurement into an obs span.\n\
                  Suppress: // lint:allow(ambient-time): <why wall time is required here>",
    },
    RuleInfo {
        id: "ambient-randomness",
        summary: "RNG source not derived from likelab_sim::Rng streams",
        explain: "thread_rng/OsRng/from_entropy/getrandom/RandomState inject host entropy,\n\
                  so two runs of the same seed diverge. All randomness must derive from the\n\
                  seeded likelab_sim::Rng family (seed_from_u64, split, derive_stream_seed).\n\
                  Fix: accept an Rng (or a seed) from the caller and derive from it.\n\
                  Suppress: // lint:allow(ambient-randomness): <why entropy is acceptable>",
    },
    RuleInfo {
        id: "rng-shared-across-parallel",
        summary: "Rng reused inside parallel_map/parallel_jobs instead of a split stream",
        explain: "A single Rng captured by a parallel closure is consumed in scheduling\n\
                  order, so results depend on worker count — the exact hazard the\n\
                  worker-invariance tests guard. Each parallel item must draw from its own\n\
                  stream. This rule matches rng-named captures inside a\n\
                  parallel_map/parallel_jobs span with no .split(…)/derive_stream_seed.\n\
                  Fix: let mut r = rng.split(item_index) inside the closure (DESIGN.md §4b).\n\
                  Suppress: // lint:allow(rng-shared-across-parallel): <why sharing is sound>",
    },
    RuleInfo {
        id: "unwrap-in-library",
        summary: ".unwrap()/.expect(...)/panic! in non-test library code",
        explain: "Library code that panics takes down the whole process — including the\n\
                  long-running serve loop — instead of surfacing a typed error the caller\n\
                  can handle. Binaries may exit; libraries must return Result/Option.\n\
                  Fix: propagate the error. Where the invariant is real and local, use\n\
                  .expect(\"<invariant>\") plus an allow pragma stating the invariant.\n\
                  Suppress: // lint:allow(unwrap-in-library): <the invariant>",
    },
    RuleInfo {
        id: "stdout-in-library",
        summary: "println!/print!/dbg! in library code (stdout belongs to the CLI)",
        explain: "Report bytes on stdout are part of the byte-identity contract; a stray\n\
                  println! in a library corrupts golden outputs. Libraries return\n\
                  strings/values and the CLI decides what to print; progress goes to stderr.\n\
                  Fix: return the text, or use eprintln! for diagnostics.\n\
                  Suppress: // lint:allow(stdout-in-library): <why stdout is the contract>",
    },
    RuleInfo {
        id: "log-bypass",
        summary: "ledger/graph mutated directly instead of through the world's logged hooks",
        explain: "OsnWorld records every mutation into the world log; the log is replayed\n\
                  byte-for-byte by `likelab replay` and the CI replay gate. Mutating the\n\
                  ledger or friend graph directly (.ingest_batch, .friends_mut) skips the\n\
                  log, so a captured log stops reproducing the run.\n\
                  Fix: mutate through OsnWorld (like/befriend/apply_event).\n\
                  Suppress: // lint:allow(log-bypass): <why this mutation is pre-log>",
    },
    RuleInfo {
        id: "rng-escapes-parallel",
        summary: "a typed Rng value reaches a parallel boundary through a call chain, un-split",
        explain: "Interprocedural companion to rng-shared-across-parallel: tracks values\n\
                  whose declared TYPE mentions Rng (or that are bound from Rng::…,\n\
                  .split(…), derive_stream_seed) through the call graph. If such a value —\n\
                  whatever its name — is captured by a parallel_map/parallel_jobs closure\n\
                  with no .split(…)/derive_stream_seed inside the span, every chain from the\n\
                  value's construction site to that boundary is a worker-count hazard. The\n\
                  diagnostic shows the chain: reachable via a → b → c.\n\
                  Fix: split a per-item stream inside the closure, or pass per-item seeds.\n\
                  Suppress: // lint:allow(rng-escapes-parallel): <why sharing is sound>",
    },
    RuleInfo {
        id: "panic-reachable-from-serve",
        summary: "panic/unwrap/expect/indexing reachable from the serve/tail entry points",
        explain: "The scoring service (ServeEngine::{ingest, ingest_frame, query,\n\
                  online_score}, ServeSession::handle_line, serve) and the log followers\n\
                  (TailReader::{next_record, drain}, FollowReader::poll) are long-running:\n\
                  one panic anywhere in their call graph kills the session and loses tail\n\
                  state. This rule walks the workspace call graph from those entry points\n\
                  and reports every .unwrap()/.expect(…)/panic!/unreachable!/indexing site\n\
                  it can reach, with the chain: reachable via a → b → c.\n\
                  Fix: return the error to the serve loop (it already degrades per-line),\n\
                  use .get(…) for lookups, or prove the invariant and add a pragma.\n\
                  Suppress: // lint:allow(panic-reachable-from-serve): <the invariant>",
    },
    RuleInfo {
        id: "float-order-sensitivity",
        summary: "float accumulation folded in hash or parallel-merge order",
        explain: "Float addition is not associative: summing the same set in a different\n\
                  order changes low bits, which the online/batch parity gate compares\n\
                  exactly. Two shapes are flagged: (1) a float fold (.sum::<f64>(),\n\
                  .product::<f64>(), .fold(0.0, …)) chained onto HashMap/HashSet iteration —\n\
                  note .sum() over *integers* is order-free and stays allowed under\n\
                  nondeterministic-iteration; (2) a captured float accumulator mutated\n\
                  (+=) inside a parallel_map/parallel_jobs closure.\n\
                  Fix: collect into a sorted Vec (or BTreeMap) before folding, or sum into\n\
                  per-item slots and combine in index order.\n\
                  Suppress: // lint:allow(float-order-sensitivity): <why order is fixed>",
    },
    RuleInfo {
        id: "alloc-in-hot-loop",
        summary: "per-iteration allocation inside loops of hot-path functions",
        explain: "The ≥10x scale campaign budgets the posting-list, like-ledger, event-queue\n\
                  and columnar kernels by allocations per event; a Vec::new/collect/format!\n\
                  /to_vec inside a loop there turns O(1) scratch into O(n) allocator\n\
                  traffic. Hot scope = functions in posting.rs/likes.rs/queue.rs/columns.rs\n\
                  plus any function annotated `// lint:hot`.\n\
                  Fix: hoist the allocation out of the loop, reuse a scratch buffer\n\
                  (clear() instead of new), or extend_from_slice into a preallocated Vec.\n\
                  Suppress: // lint:allow(alloc-in-hot-loop): <why per-iteration is intrinsic>",
    },
];

/// True when `id` names a known rule.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Scan one file's source text; returns pragma-free findings
/// (pragma-suppressed sites are dropped here, baseline handling is the
/// caller's job).
pub fn scan_source(rel_path: &str, crate_name: &str, kind: FileKind, source: &str) -> Vec<Finding> {
    scan_masked(rel_path, crate_name, kind, &tokenizer::mask(source))
}

/// Scan an already-masked file (the workspace driver masks once and
/// shares the result with the parser and the interprocedural passes).
pub fn scan_masked(
    rel_path: &str,
    crate_name: &str,
    kind: FileKind,
    masked: &MaskedFile,
) -> Vec<Finding> {
    let allowed = pragmas(&masked.raw);
    let ctx = Ctx {
        rel_path,
        crate_name,
        kind,
        file: masked,
        allowed: &allowed,
    };
    let mut findings = Vec::new();
    nondeterministic_iteration(&ctx, &mut findings);
    ambient_time(&ctx, &mut findings);
    ambient_randomness(&ctx, &mut findings);
    rng_shared_across_parallel(&ctx, &mut findings);
    unwrap_in_library(&ctx, &mut findings);
    stdout_in_library(&ctx, &mut findings);
    log_bypass(&ctx, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

struct Ctx<'a> {
    rel_path: &'a str,
    crate_name: &'a str,
    kind: FileKind,
    file: &'a MaskedFile,
    /// Per-line set of rule ids allowed by `lint:allow` pragmas.
    allowed: &'a [BTreeSet<String>],
}

impl Ctx<'_> {
    /// Is line `idx` (0-based) live library-ish code for `rule`?
    fn live(&self, idx: usize, rule: &str) -> bool {
        !self.file.in_test[idx] && !self.allowed[idx].contains(rule)
    }

    fn emit(&self, out: &mut Vec<Finding>, rule: &'static str, idx: usize, hint: String) {
        out.push(Finding {
            rule,
            file: self.rel_path.to_string(),
            line: idx + 1,
            snippet: self.file.raw[idx].trim().to_string(),
            hint,
            path: Vec::new(),
        });
    }
}

/// Collect `lint:allow(...)` pragmas: a pragma applies to its own line
/// and — when it sits on a comment-only line — to the lines that follow,
/// up to and including the next code line.
pub(crate) fn pragmas(raw: &[String]) -> Vec<BTreeSet<String>> {
    let mut out: Vec<BTreeSet<String>> = vec![BTreeSet::new(); raw.len()];
    let mut carried: BTreeSet<String> = BTreeSet::new();
    for (idx, line) in raw.iter().enumerate() {
        let own = parse_pragma(line);
        let trimmed = line.trim();
        let comment_only = trimmed.starts_with("//");
        out[idx].extend(carried.iter().cloned());
        out[idx].extend(own.iter().cloned());
        if comment_only {
            // Comment line: keep carrying (and add its own pragmas).
            carried.extend(own);
        } else {
            // Code line consumed whatever was carried.
            carried.clear();
        }
    }
    out
}

/// Extract rule ids from `lint:allow(a, b)` occurrences in a line.
fn parse_pragma(line: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find("lint:allow(") {
        let start = from + pos + "lint:allow(".len();
        let Some(close) = line[start..].find(')') else {
            break;
        };
        for id in line[start..start + close].split(',') {
            let id = id.trim();
            if !id.is_empty() {
                out.insert(id.to_string());
            }
        }
        from = start + close + 1;
    }
    out
}

// ---------------------------------------------------------------------------
// nondeterministic-iteration
// ---------------------------------------------------------------------------

/// Iteration methods whose order reflects hash order.
pub(crate) const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".into_keys()",
    ".values()",
    ".values_mut()",
    ".into_values()",
    ".drain()",
];

/// Statement sinks that make hash-order iteration harmless: full sorts,
/// order-independent folds, or collection into an unordered/ordered-by-key
/// container.
const ORDER_SAFE_SINKS: &[&str] = &[
    ".sort",
    ".count()",
    ".sum()",
    ".sum::",
    ".min()",
    ".min_by",
    ".max()",
    ".max_by",
    ".all(",
    ".any(",
    ".collect::<HashSet",
    ".collect::<HashMap",
    ".collect::<BTree",
    ".collect::<std::collections::HashSet",
    ".collect::<std::collections::HashMap",
    ".collect::<std::collections::BTree",
];

fn nondeterministic_iteration(ctx: &Ctx, out: &mut Vec<Finding>) {
    // Binaries render user-facing output, so hash-order leaks there break
    // byte-identity just like in libraries; only examples are exempt.
    if ctx.kind == FileKind::Example {
        return;
    }
    let hash_idents = hash_typed_idents(ctx.file);
    if hash_idents.is_empty() {
        return;
    }
    const RULE: &str = "nondeterministic-iteration";
    let code = &ctx.file.code;
    for idx in 0..code.len() {
        if !ctx.live(idx, RULE) {
            continue;
        }
        let line = &code[idx];
        let mut hit = false;
        // `for pat in <expr> {` where <expr>'s base identifier is hash-typed.
        // For-loop bodies are opaque to a line scanner, so no sink analysis
        // applies: order reaches the body, full stop.
        if let Some(expr) = for_loop_expr(line) {
            if base_ident(expr).is_some_and(|id| hash_idents.contains(id)) {
                hit = true;
            }
        }
        // `<ident>.iter()` and friends, unless the enclosing statement ends
        // in an order-independent sink.
        if !hit {
            'methods: for method in ITER_METHODS {
                let mut from = 0;
                while let Some(pos) = line[from..].find(method) {
                    let at = from + pos;
                    if receiver_ident(line, at).is_some_and(|id| hash_idents.contains(id))
                        && !statement_is_order_safe(code, idx)
                    {
                        hit = true;
                        break 'methods;
                    }
                    from = at + method.len();
                }
            }
        }
        if hit {
            ctx.emit(
                out,
                RULE,
                idx,
                "iterate a sorted Vec or a BTreeMap/BTreeSet instead, or add \
                 `// lint:allow(nondeterministic-iteration): <why order cannot escape>`"
                    .to_string(),
            );
        }
    }
}

/// Identifiers in this file declared with a `HashMap`/`HashSet` type:
/// `name: HashMap<…>` (let/param/field) or `name = HashMap::new()`-style
/// constructors. Collected from non-test lines only.
pub(crate) fn hash_typed_idents(file: &MaskedFile) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for (idx, line) in file.code.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = find_word(line, ty, from) {
                let before = &line[..pos];
                // `name: [&][mut] [std::collections::]HashMap<…>`
                let stripped = before
                    .trim_end()
                    .trim_end_matches("std::collections::")
                    .trim_end()
                    .trim_end_matches('&')
                    .trim_end()
                    .trim_end_matches("mut")
                    .trim_end()
                    .trim_end_matches('&')
                    .trim_end();
                if let Some(before_colon) = stripped.strip_suffix(':') {
                    if let Some(name) = trailing_ident(before_colon) {
                        idents.insert(name.to_string());
                    }
                }
                // `name = HashMap::new()` / with_capacity / from / default
                if line[pos..].starts_with(&format!("{ty}::")) {
                    if let Some(before_eq) = before.trim_end().strip_suffix('=') {
                        if let Some(name) = trailing_ident(before_eq.trim_end()) {
                            idents.insert(name.to_string());
                        }
                    }
                }
                from = pos + ty.len();
            }
        }
    }
    idents
}

/// The trailing identifier of a string slice, if it ends with one.
pub(crate) fn trailing_ident(s: &str) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut start = bytes.len();
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    if start == bytes.len() {
        return None;
    }
    // Reject if what precedes is `.` or `::`? No — `self.segments` is a
    // legitimate receiver; the ident is the final path segment.
    let ident = &s[start..];
    ident
        .chars()
        .next()
        .filter(|c| c.is_ascii_alphabetic() || *c == '_')
        .map(|_| ident)
}

/// For a `for pat in expr {` line, the `expr` text.
fn for_loop_expr(line: &str) -> Option<&str> {
    let for_pos = find_word(line, "for", 0)?;
    let in_pos = find_word(line, "in", for_pos + 3)?;
    let rest = &line[in_pos + 2..];
    let end = rest.rfind('{').unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// The base identifier of an iterated expression: `&mut self.segments`
/// → `segments`, `via.iter()` → `via`, `items` → `items`.
fn base_ident(expr: &str) -> Option<&str> {
    let expr = expr
        .trim_start_matches('&')
        .trim_start()
        .trim_start_matches("mut ")
        .trim();
    // Cut at the first `(`: a call like `neighbors(u)` is not a plain ident
    // chain, and method iteration is handled by the receiver scan.
    let head = &expr[..expr.find('(').map_or(expr.len(), |p| {
        // Walk back past the method name and its dot.
        expr[..p].rfind('.').unwrap_or(p.min(expr.len()))
    })];
    let last = head.rsplit('.').next()?.trim();
    let ok = !last.is_empty()
        && last.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && last.chars().next().is_some_and(|c| !c.is_ascii_digit());
    ok.then_some(last)
}

/// The receiver identifier of a method occurrence at byte `at`
/// (the position of the `.` starting e.g. `.iter()`).
pub(crate) fn receiver_ident(line: &str, at: usize) -> Option<&str> {
    trailing_ident(&line[..at])
}

/// Join the statement starting at line `idx` (up to 8 lines or the first
/// `;`) and test it for order-independent sinks.
pub(crate) fn statement_is_order_safe(code: &[String], idx: usize) -> bool {
    let mut joined = String::new();
    for line in code.iter().skip(idx).take(8) {
        joined.push_str(line.trim());
        joined.push(' ');
        if line.trim_end().ends_with(';') {
            break;
        }
    }
    ORDER_SAFE_SINKS.iter().any(|s| joined.contains(s))
}

// ---------------------------------------------------------------------------
// ambient-time
// ---------------------------------------------------------------------------

/// Crates allowed to read the wall clock: the observability layer (it
/// measures real time by design) and the bench harness.
const WALL_CLOCK_CRATES: &[&str] = &["likelab-obs", "likelab-bench"];

fn ambient_time(ctx: &Ctx, out: &mut Vec<Finding>) {
    if ctx.kind == FileKind::Example || WALL_CLOCK_CRATES.contains(&ctx.crate_name) {
        return;
    }
    const RULE: &str = "ambient-time";
    for idx in 0..ctx.file.code.len() {
        if !ctx.live(idx, RULE) {
            continue;
        }
        let line = &ctx.file.code[idx];
        if tokenizer::contains_word(line, "SystemTime") || tokenizer::contains_word(line, "Instant")
        {
            ctx.emit(
                out,
                RULE,
                idx,
                "simulated code must use likelab_sim::SimTime; wall-clock timing \
                 belongs in likelab-obs spans"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// ambient-randomness
// ---------------------------------------------------------------------------

/// Entropy sources that break run-to-run determinism.
const AMBIENT_RNG_WORDS: &[&str] = &[
    "thread_rng",
    "OsRng",
    "from_entropy",
    "getrandom",
    "RandomState",
];

fn ambient_randomness(ctx: &Ctx, out: &mut Vec<Finding>) {
    const RULE: &str = "ambient-randomness";
    for idx in 0..ctx.file.code.len() {
        if !ctx.live(idx, RULE) {
            continue;
        }
        let line = &ctx.file.code[idx];
        let hit = AMBIENT_RNG_WORDS
            .iter()
            .any(|w| tokenizer::contains_word(line, w))
            || line.contains("rand::random");
        if hit {
            ctx.emit(
                out,
                RULE,
                idx,
                "derive randomness from likelab_sim::Rng (seed_from_u64, split, \
                 derive_stream_seed) so runs stay reproducible"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// rng-shared-across-parallel
// ---------------------------------------------------------------------------

fn rng_shared_across_parallel(ctx: &Ctx, out: &mut Vec<Finding>) {
    if ctx.kind == FileKind::Example {
        return;
    }
    const RULE: &str = "rng-shared-across-parallel";
    let code = &ctx.file.code;
    for idx in 0..code.len() {
        if !ctx.live(idx, RULE) {
            continue;
        }
        let line = &code[idx];
        let call =
            find_word(line, "parallel_map", 0).or_else(|| find_word(line, "parallel_jobs", 0));
        let Some(pos) = call else { continue };
        let Some(open) = line[pos..].find('(') else {
            continue;
        };
        let span = balanced_span(code, idx, pos + open);
        if span_shares_rng(&span) {
            ctx.emit(
                out,
                RULE,
                idx,
                "give every parallel item its own stream: `let mut r = rng.split(i)` \
                 inside the closure (DESIGN.md §4b), never a captured Rng"
                    .to_string(),
            );
        }
    }
}

/// The text of a parenthesized call spanning from `(line idx, byte at)`
/// to the matching close (bounded at 80 lines).
pub(crate) fn balanced_span(code: &[String], idx: usize, at: usize) -> String {
    let mut depth = 0i32;
    let mut out = String::new();
    for (k, line) in code.iter().enumerate().skip(idx).take(80) {
        let start = if k == idx { at } else { 0 };
        for (j, b) in line.bytes().enumerate().skip(start) {
            match b {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        out.push_str(&line[start..=j]);
                        return out;
                    }
                }
                _ => {}
            }
        }
        out.push_str(&line[start..]);
        out.push('\n');
    }
    out
}

/// Does a `parallel_map(…)`/`parallel_jobs(…)` span capture an Rng without
/// deriving a per-item stream?
fn span_shares_rng(span: &str) -> bool {
    // Any stream derivation inside the span is proof of the safe pattern.
    if span.contains(".split(") || span.contains("derive_stream_seed") {
        return false;
    }
    // The closure's own parameters are per-item values (the caller already
    // split them); only captures are suspect.
    let params = closure_params(span);
    let mut from = 0;
    while let Some(pos) = find_rng_word(span, from) {
        let word = ident_at(span, pos);
        if !params.iter().any(|p| p == word) {
            return true;
        }
        from = pos + word.len().max(1);
    }
    false
}

/// Find the next rng-ish identifier (name containing `rng`, or the `Rng`
/// type used as a constructor) at or after `from`.
fn find_rng_word(span: &str, from: usize) -> Option<usize> {
    let lower = span.to_ascii_lowercase();
    let mut start = from;
    while let Some(rel) = lower.get(start..)?.find("rng") {
        let pos = start + rel;
        // Expand to the whole identifier around the match.
        let bytes = span.as_bytes();
        let mut s = pos;
        while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
            s -= 1;
        }
        // `Rng::seed_from_u64(…)` inside the closure is a fresh per-item
        // stream, not a capture.
        if span[s..].starts_with("Rng::") {
            start = pos + 3;
            continue;
        }
        return Some(s);
    }
    None
}

/// The full identifier starting at byte `pos`.
fn ident_at(span: &str, pos: usize) -> &str {
    let bytes = span.as_bytes();
    let mut end = pos;
    while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
        end += 1;
    }
    &span[pos..end]
}

/// The parameter identifiers of the first closure in the span
/// (`|a, (b, c)| …` → `["a", "b", "c"]`).
pub(crate) fn closure_params(span: &str) -> Vec<String> {
    let Some(first) = span.find('|') else {
        return Vec::new();
    };
    let Some(close_rel) = span[first + 1..].find('|') else {
        return Vec::new();
    };
    span[first + 1..first + 1 + close_rel]
        .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

// ---------------------------------------------------------------------------
// unwrap-in-library
// ---------------------------------------------------------------------------

fn unwrap_in_library(ctx: &Ctx, out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Library {
        return;
    }
    const RULE: &str = "unwrap-in-library";
    for idx in 0..ctx.file.code.len() {
        if !ctx.live(idx, RULE) {
            continue;
        }
        let line = &ctx.file.code[idx];
        let unwrap = line.contains(".unwrap()");
        let expect = find_method_call(line, ".expect");
        let panics =
            find_word(line, "panic", 0).is_some_and(|p| line.as_bytes().get(p + 5) == Some(&b'!'));
        if unwrap || expect || panics {
            ctx.emit(
                out,
                RULE,
                idx,
                "propagate the error (Result/Option) or, where the invariant is \
                 real, use .expect(\"<invariant>\") plus an allow pragma"
                    .to_string(),
            );
        }
    }
}

/// Is `name` followed directly by `(` somewhere in the line
/// (so `.expect(` matches but `.expect_err(` does not)?
fn find_method_call(line: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let at = from + pos + name.len();
        if line.as_bytes().get(at) == Some(&b'(') {
            return true;
        }
        from = from + pos + 1;
    }
    false
}

// ---------------------------------------------------------------------------
// stdout-in-library
// ---------------------------------------------------------------------------

fn stdout_in_library(ctx: &Ctx, out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Library {
        return;
    }
    const RULE: &str = "stdout-in-library";
    for idx in 0..ctx.file.code.len() {
        if !ctx.live(idx, RULE) {
            continue;
        }
        let line = &ctx.file.code[idx];
        let hit = ["println", "print", "dbg"].iter().any(|m| {
            find_word(line, m, 0).is_some_and(|p| line.as_bytes().get(p + m.len()) == Some(&b'!'))
        });
        if hit {
            ctx.emit(
                out,
                RULE,
                idx,
                "libraries return strings/values; printing belongs to src/main.rs \
                 (progress goes to stderr via eprintln!)"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// log-bypass
// ---------------------------------------------------------------------------

/// Mutating entry points that bypass `OsnWorld`'s event-recording hooks.
/// A mutation that skips the world never reaches the study log, so a
/// captured log stops being a sufficient statistic for replay.
const LOG_BYPASS_METHODS: &[&str] = &[".ingest_batch(", ".friends_mut("];

fn log_bypass(ctx: &Ctx, out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Library {
        return;
    }
    const RULE: &str = "log-bypass";
    for idx in 0..ctx.file.code.len() {
        if !ctx.live(idx, RULE) {
            continue;
        }
        let line = &ctx.file.code[idx];
        // The leading dot scopes this to call sites; `fn ingest_batch(` and
        // `pub fn friends_mut(` definitions don't match.
        if LOG_BYPASS_METHODS.iter().any(|m| line.contains(m)) {
            ctx.emit(
                out,
                RULE,
                idx,
                "mutate through OsnWorld (like/befriend/apply_event) so the world \
                 log records the change; sanctioned appender internals belong in \
                 the baseline"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Workspace (interprocedural) rules
// ---------------------------------------------------------------------------

use crate::callgraph::{match_entries, CallGraph};
use crate::dataflow::{self, RngOrigin};
use crate::parse::ParsedFile;

/// The long-running entry points for `panic-reachable-from-serve`:
/// `(path suffix, self type, fn name)`. Matched structurally so fixture
/// workspaces exercise the same specs as the real one.
pub const SERVE_ENTRY_POINTS: &[(&str, Option<&str>, &str)] = &[
    ("/serve.rs", Some("ServeEngine"), "ingest"),
    ("/serve.rs", Some("ServeEngine"), "ingest_frame"),
    ("/serve.rs", Some("ServeEngine"), "query"),
    ("/serve.rs", Some("ServeEngine"), "online_score"),
    ("/serve.rs", Some("ServeSession"), "handle_line"),
    ("/serve.rs", None, "serve"),
    ("/tail.rs", Some("TailReader"), "next_record"),
    ("/tail.rs", Some("TailReader"), "drain"),
    ("/tail.rs", Some("FollowReader"), "poll"),
];

/// Run the interprocedural rules over the whole parsed workspace.
///
/// Pragma suppression works exactly as for per-file rules; findings carry
/// a call path rendered with qualified names.
pub fn scan_workspace(files: &[ParsedFile], graph: &CallGraph) -> Vec<Finding> {
    let facts = dataflow::fn_facts(files, graph);
    let allowed: Vec<Vec<BTreeSet<String>>> =
        files.iter().map(|f| pragmas(&f.masked.raw)).collect();
    let w = Workspace {
        files,
        graph,
        facts: &facts,
        allowed: &allowed,
    };
    let mut out = Vec::new();
    rng_escapes_parallel(&w, &mut out);
    panic_reachable_from_serve(&w, &mut out);
    float_order_sensitivity(&w, &mut out);
    alloc_in_hot_loop(&w, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

struct Workspace<'a> {
    files: &'a [ParsedFile],
    graph: &'a CallGraph,
    facts: &'a [dataflow::FnFacts],
    allowed: &'a [Vec<BTreeSet<String>>],
}

impl Workspace<'_> {
    /// Is line `idx` of file `fi` live (non-test, not pragma-allowed) for
    /// `rule`?
    fn live(&self, fi: usize, idx: usize, rule: &str) -> bool {
        let pf = &self.files[fi];
        !pf.masked.in_test[idx] && !self.allowed[fi][idx].contains(rule)
    }

    fn emit(
        &self,
        out: &mut Vec<Finding>,
        rule: &'static str,
        fi: usize,
        idx: usize,
        path: Vec<String>,
        hint: String,
    ) {
        let pf = &self.files[fi];
        out.push(Finding {
            rule,
            file: pf.rel_path.clone(),
            line: idx + 1,
            snippet: pf.masked.raw[idx].trim().to_string(),
            hint,
            path,
        });
    }
}

fn rng_escapes_parallel(w: &Workspace, out: &mut Vec<Finding>) {
    const RULE: &str = "rng-escapes-parallel";
    for (ni, node) in w.graph.nodes.iter().enumerate() {
        if node.is_test || w.files[node.file].kind == FileKind::Example {
            continue;
        }
        for span in &w.facts[ni].parallel {
            if !w.live(node.file, span.line, RULE) {
                continue;
            }
            for name in dataflow::captured_rng_values(&w.facts[ni], &span.text) {
                // rng-named captures are rng-shared-across-parallel's beat;
                // this rule adds the type-tracked, differently-named ones.
                if name.to_ascii_lowercase().contains("rng") {
                    continue;
                }
                let chain = match w.facts[ni].rng_values.get(name) {
                    Some(RngOrigin::Param(p)) => dataflow::rng_root_chain(w.graph, w.facts, ni, *p),
                    _ => vec![ni],
                };
                w.emit(
                    out,
                    RULE,
                    node.file,
                    span.line,
                    w.graph.render_path(&chain),
                    format!(
                        "`{name}` is a seeded Rng stream shared across parallel items; \
                         derive a per-item stream inside the closure \
                         (`let mut r = {name}.split(i)`) or pass per-item seeds"
                    ),
                );
            }
        }
    }
}

fn panic_reachable_from_serve(w: &Workspace, out: &mut Vec<Finding>) {
    const RULE: &str = "panic-reachable-from-serve";
    let entries = match_entries(w.graph, SERVE_ENTRY_POINTS);
    if entries.is_empty() {
        return;
    }
    let reach = w.graph.reach_from(&entries);
    for (&ni, path) in &reach {
        let node = &w.graph.nodes[ni];
        if node.is_test || w.files[node.file].kind == FileKind::Example {
            continue;
        }
        let pf = &w.files[node.file];
        let f = &pf.items.functions[node.item];
        let last = pf.masked.code.len().saturating_sub(1);
        for idx in f.sig_line..=f.body_end.min(last) {
            if w.graph.owner[node.file][idx] != ni || !w.live(node.file, idx, RULE) {
                continue;
            }
            let Some(kind) = dataflow::panic_kind_on_line(&pf.masked.code[idx]) else {
                continue;
            };
            w.emit(
                out,
                RULE,
                node.file,
                idx,
                w.graph.render_path(path),
                format!(
                    "{kind} can panic the long-running serve/tail loop; return the \
                     error (the session already degrades per line) or use a \
                     non-panicking accessor"
                ),
            );
        }
    }
}

fn float_order_sensitivity(w: &Workspace, out: &mut Vec<Finding>) {
    const RULE: &str = "float-order-sensitivity";
    // Shape 1: float folds chained onto hash-container iteration. These
    // sites are exactly the ones nondeterministic-iteration whitelists
    // (`.sum::` is order-free for integers — not for floats).
    for (fi, pf) in w.files.iter().enumerate() {
        if pf.kind == FileKind::Example {
            continue;
        }
        let hash_idents = hash_typed_idents(&pf.masked);
        if hash_idents.is_empty() {
            continue;
        }
        let code = &pf.masked.code;
        for idx in 0..code.len() {
            if !w.live(fi, idx, RULE) {
                continue;
            }
            let line = &code[idx];
            let iterates_hash = ITER_METHODS.iter().any(|method| {
                let mut from = 0;
                while let Some(pos) = line[from..].find(method) {
                    let at = from + pos;
                    if receiver_ident(line, at).is_some_and(|id| hash_idents.contains(id)) {
                        return true;
                    }
                    from = at + method.len();
                }
                false
            });
            if !iterates_hash || !statement_is_order_safe(code, idx) {
                // Un-safe statements are nondeterministic-iteration's beat.
                continue;
            }
            let stmt = dataflow::join_statement(code, idx);
            if let Some(sink) = dataflow::FLOAT_FOLD_SINKS
                .iter()
                .find(|s| stmt.contains(**s))
            {
                w.emit(
                    out,
                    RULE,
                    fi,
                    idx,
                    Vec::new(),
                    format!(
                        "`{sink}` folds floats in hash-iteration order; reassociation \
                         changes the bits — collect into a sorted Vec/BTreeMap first"
                    ),
                );
            }
        }
    }
    // Shape 2: captured float accumulators mutated inside parallel spans.
    for (ni, node) in w.graph.nodes.iter().enumerate() {
        if node.is_test || w.files[node.file].kind == FileKind::Example {
            continue;
        }
        let floats = dataflow::float_idents(&w.files[node.file].masked);
        for span in &w.facts[ni].parallel {
            if !w.live(node.file, span.line, RULE) {
                continue;
            }
            if let Some(name) = dataflow::captured_float_accumulation(&span.text, &floats) {
                w.emit(
                    out,
                    RULE,
                    node.file,
                    span.line,
                    w.graph.render_path(&[ni]),
                    format!(
                        "`{name}` accumulates floats across parallel items; sum into \
                         per-item slots and combine in index order instead"
                    ),
                );
            }
        }
    }
}

fn alloc_in_hot_loop(w: &Workspace, out: &mut Vec<Finding>) {
    const RULE: &str = "alloc-in-hot-loop";
    for (ni, node) in w.graph.nodes.iter().enumerate() {
        if node.is_test || w.files[node.file].kind == FileKind::Example {
            continue;
        }
        let pf = &w.files[node.file];
        let f = &pf.items.functions[node.item];
        if !f.is_hot && !dataflow::is_hot_file(&pf.rel_path) {
            continue;
        }
        let code = &pf.masked.code;
        let last = code.len().saturating_sub(1);
        let mut flagged: BTreeSet<usize> = BTreeSet::new();
        for &(start, end) in &f.loops {
            let span = code.iter().enumerate().take(end.min(last) + 1).skip(start);
            for (idx, line) in span {
                if flagged.contains(&idx) || !w.live(node.file, idx, RULE) {
                    continue;
                }
                // A `for` header's pre-`{` text runs once, not per
                // iteration; `while`/`loop` headers re-run every pass.
                let text: &str = if idx == start
                    && find_word(line, "for", 0)
                        .is_some_and(|p| p < line.find('{').unwrap_or(line.len()))
                {
                    line.find('{').map(|p| &line[p..]).unwrap_or("")
                } else {
                    line
                };
                if let Some(pat) = dataflow::alloc_on_line(text) {
                    flagged.insert(idx);
                    w.emit(
                        out,
                        RULE,
                        node.file,
                        idx,
                        w.graph.render_path(&[ni]),
                        format!(
                            "`{pat}` allocates every iteration on the hot path; hoist \
                             it out of the loop or reuse a cleared scratch buffer"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_scan(src: &str) -> Vec<Finding> {
        scan_source("crates/x/src/lib.rs", "likelab-x", FileKind::Library, src)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn pragma_on_same_line_suppresses() {
        let src =
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(unwrap-in-library): test\n";
        assert!(lib_scan(src).is_empty());
    }

    #[test]
    fn pragma_on_preceding_comment_suppresses() {
        let src = "// order cannot escape: lint:allow(nondeterministic-iteration): doc\n\
                   fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n\
                   m.keys().copied().collect()\n}\n";
        // The pragma line carries onto the next code line only; the `.keys()`
        // sits two lines later, so this must still fire — then move it.
        let src2 = "fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n\
                    // lint:allow(nondeterministic-iteration): order sorted by caller\n\
                    m.keys().copied().collect()\n}\n";
        assert_eq!(rules_of(&lib_scan(src)), vec!["nondeterministic-iteration"]);
        assert!(lib_scan(src2).is_empty());
    }

    #[test]
    fn hash_iteration_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                   let mut out = Vec::new();\n\
                   for (k, _) in m {\n    out.push(*k);\n}\nout\n}\n";
        assert_eq!(rules_of(&lib_scan(src)), vec!["nondeterministic-iteration"]);
        assert_eq!(lib_scan(src)[0].line, 4);
    }

    #[test]
    fn sorted_statement_is_order_safe() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                   let mut v: Vec<u32> = m.keys().copied().collect::<std::collections::BTreeSet<_>>().into_iter().collect();\n\
                   v\n}\n";
        assert!(lib_scan(src).is_empty(), "{:?}", lib_scan(src));
    }

    #[test]
    fn count_and_sum_are_order_safe() {
        let src = "use std::collections::HashSet;\n\
                   fn f(s: &HashSet<u32>) -> usize { s.iter().count() }\n\
                   fn g(s: &HashSet<u32>) -> u32 { s.iter().sum() }\n";
        assert!(lib_scan(src).is_empty(), "{:?}", lib_scan(src));
    }

    #[test]
    fn unwrap_expect_panic_flagged_but_not_variants() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n\
                   fn h() { panic!(\"boom\") }\n\
                   fn ok1(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
                   fn ok2(x: Result<u32, u32>) -> u32 { x.unwrap_or_else(|_| 0) }\n\
                   fn ok3(x: Result<u32, u32>) -> u32 { x.expect_err(\"e\") }\n";
        let f = lib_scan(src);
        assert_eq!(rules_of(&f), vec!["unwrap-in-library"; 3], "{f:?}");
        assert_eq!(f.iter().map(|x| x.line).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "pub fn lib() {}\n\
                   #[cfg(test)]\nmod tests {\n\
                   #[test]\nfn t() { None::<u32>.unwrap(); println!(\"x\"); }\n}\n";
        assert!(lib_scan(src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = "fn f() -> &'static str { \".unwrap() println! Instant\" }\n\
                   // .unwrap() in a comment\n\
                   /* panic! in a block comment */\n";
        assert!(lib_scan(src).is_empty());
    }

    #[test]
    fn ambient_time_scoped_by_crate() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        let in_sim = scan_source("crates/sim/src/x.rs", "likelab-sim", FileKind::Library, src);
        assert_eq!(rules_of(&in_sim), vec!["ambient-time"; 2]);
        let in_obs = scan_source("crates/obs/src/x.rs", "likelab-obs", FileKind::Library, src);
        assert!(in_obs.is_empty());
        let in_bench = scan_source(
            "crates/bench/src/lib.rs",
            "likelab-bench",
            FileKind::Library,
            src,
        );
        assert!(in_bench.is_empty());
    }

    #[test]
    fn ambient_randomness_flags_entropy_sources() {
        let src = "fn f() { let r = thread_rng(); }\n\
                   fn g() { let s = std::collections::hash_map::RandomState::new(); }\n";
        assert_eq!(rules_of(&lib_scan(src)), vec!["ambient-randomness"; 2]);
    }

    #[test]
    fn shared_rng_in_parallel_map_flagged() {
        let src = "fn f(rng: &Rng, items: &[u32]) -> Vec<u64> {\n\
                   parallel_map(Exec::auto(), items, |_x| {\n\
                   let mut r = rng.clone();\nr.next_u64()\n})\n}\n";
        let f = lib_scan(src);
        assert_eq!(rules_of(&f), vec!["rng-shared-across-parallel"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn split_rng_in_parallel_map_ok() {
        let src = "fn f(rng: &Rng, items: &[u32]) -> Vec<u64> {\n\
                   parallel_map(Exec::auto(), items, |x| {\n\
                   let mut r = rng.split(*x as u64);\nr.next_u64()\n})\n}\n";
        assert!(lib_scan(src).is_empty(), "{:?}", lib_scan(src));
    }

    #[test]
    fn rng_as_closure_param_ok() {
        let src = "fn f(streams: &[Rng]) -> Vec<u64> {\n\
                   parallel_map(Exec::auto(), streams, |rng| rng.clone().next_u64())\n}\n";
        assert!(lib_scan(src).is_empty(), "{:?}", lib_scan(src));
    }

    #[test]
    fn stdout_flagged_in_library_not_binary() {
        let src =
            "pub fn f() { println!(\"tables\"); print!(\"x\"); dbg!(3); eprintln!(\"ok\"); }\n";
        assert_eq!(rules_of(&lib_scan(src)), vec!["stdout-in-library"]);
        let as_bin = scan_source("src/main.rs", "likelab", FileKind::Binary, src);
        assert!(as_bin.is_empty());
    }

    #[test]
    fn self_field_hash_iteration_flagged() {
        let src = "use std::collections::HashMap;\n\
                   struct S { segments: HashMap<u32, u32> }\n\
                   impl S {\n\
                   fn f(&self) -> Vec<u32> {\n\
                   let mut v = Vec::new();\n\
                   for (k, _) in &self.segments { v.push(*k); }\n\
                   v\n}\n}\n";
        let f = lib_scan(src);
        assert_eq!(rules_of(&f), vec!["nondeterministic-iteration"]);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn direct_ledger_mutation_is_flagged() {
        let src = "fn f(ledger: &mut LikeLedger, items: &[(UserId, PageId, SimTime)]) {\n\
                   ledger.ingest_batch(items, Exec::Sequential);\n}\n\
                   fn g(world: &mut OsnWorld) { world.friends_mut().add_edge(a, b); }\n";
        let f = lib_scan(src);
        assert_eq!(rules_of(&f), vec!["log-bypass"; 2], "{f:?}");
        assert_eq!(f.iter().map(|x| x.line).collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn log_bypass_skips_definitions_tests_and_binaries() {
        let def = "impl LikeLedger {\n\
                   pub fn ingest_batch(&mut self, items: &[Item], exec: Exec) -> usize { 0 }\n\
                   pub fn friends_mut(&mut self) -> &mut FriendGraph { &mut self.g }\n}\n";
        assert!(lib_scan(def).is_empty(), "{:?}", lib_scan(def));
        let in_test = "#[cfg(test)]\nmod tests {\n\
                       #[test]\nfn t() { ledger.ingest_batch(&items, exec); }\n}\n";
        assert!(lib_scan(in_test).is_empty());
        let as_bin = scan_source(
            "src/main.rs",
            "likelab",
            FileKind::Binary,
            "fn f() { ledger.ingest_batch(&items, exec); }\n",
        );
        assert!(as_bin.is_empty());
    }

    #[test]
    fn list_rules_is_consistent() {
        assert!(is_known_rule("unwrap-in-library"));
        assert!(is_known_rule("log-bypass"));
        assert!(is_known_rule("rng-escapes-parallel"));
        assert!(is_known_rule("panic-reachable-from-serve"));
        assert!(is_known_rule("float-order-sensitivity"));
        assert!(is_known_rule("alloc-in-hot-loop"));
        assert!(!is_known_rule("made-up-rule"));
        assert_eq!(RULES.len(), 11);
        for r in RULES {
            assert!(!r.explain.is_empty(), "{} has no explanation", r.id);
            assert!(
                r.explain.contains(&format!("lint:allow({})", r.id)),
                "{} explanation must show its pragma",
                r.id
            );
        }
    }
}
