//! A small, hand-rolled Rust source tokenizer.
//!
//! The rule engine does not need a full parse tree — it needs to know,
//! for every byte of a source file, whether that byte is *code* or
//! *non-code* (a string literal body, a character literal, a line or
//! block comment), and whether the line it sits on belongs to a
//! `#[cfg(test)]` module. This module produces exactly that: a
//! [`MaskedFile`] whose `code` lines mirror the original byte-for-byte
//! except that non-code bytes are replaced with spaces (string and
//! character literal *delimiters* are kept, so `.expect("msg")` masks to
//! `.expect("   ")` and pattern matches still line up column-for-column
//! with the original source).
//!
//! Handled syntax: nested block comments (`/* /* */ */`), line and doc
//! comments, ordinary strings with escapes, raw strings with arbitrary
//! hash counts (`r##"…"##`, `br#"…"#`, `cr#"…"#`), byte (`b"…"`) and
//! C (`c"…"`) string literals, shebang lines, byte and character
//! literals, and the lifetime-vs-char-literal ambiguity (`'a` in
//! `&'a str` is code; `'a'` is a literal).

/// One source file with non-code bytes blanked out.
#[derive(Debug)]
pub struct MaskedFile {
    /// The original source lines, unmodified (used for snippets and for
    /// pragma detection — pragmas live in comments, which the mask erases).
    pub raw: Vec<String>,
    /// The masked lines: identical geometry to `raw`, but comment bodies
    /// and string/char contents are spaces.
    pub code: Vec<String>,
    /// `in_test[i]` is true when line `i` (0-based) is inside a
    /// `#[cfg(test)]` module body (the attribute and `mod` header lines
    /// themselves are also marked).
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment(u32),
    /// An ordinary `"…"` (or `b"…"`) string.
    Str,
    /// A raw string; the payload is the number of `#` in its delimiter.
    RawStr(u32),
}

/// Mask a whole source file. See the module docs for the contract.
pub fn mask(source: &str) -> MaskedFile {
    let raw: Vec<String> = source.lines().map(str::to_string).collect();
    let mut code: Vec<String> = Vec::with_capacity(raw.len());
    let mut state = State::Code;
    for (idx, line) in raw.iter().enumerate() {
        // A shebang (`#!/usr/bin/env …`, only legal on the first line and
        // distinct from an inner attribute `#![…]`) is not Rust code: blank
        // it entirely so its words never reach the rule scans.
        if idx == 0 && line.starts_with("#!") && !line.starts_with("#![") {
            code.push(" ".repeat(line.len()));
            continue;
        }
        let (masked, next) = mask_line(line, state);
        code.push(masked);
        state = next;
    }
    let in_test = test_regions(&code);
    MaskedFile { raw, code, in_test }
}

/// Mask one line, starting in `state`; returns the masked line and the
/// state the next line starts in.
fn mask_line(line: &str, mut state: State) -> (String, State) {
    let bytes = line.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut i = 0usize;
    while i < bytes.len() {
        match state {
            State::Code => {
                let b = bytes[i];
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if let Some(hashes) = raw_string_start(bytes, i) {
                    // Keep the `r##"` opener visible as code so column
                    // geometry is obvious, but enter the raw-string state.
                    let opener_len = raw_opener_len(bytes, i);
                    out[i..i + opener_len].copy_from_slice(&bytes[i..i + opener_len]);
                    state = State::RawStr(hashes);
                    i += opener_len;
                } else if b == b'"' {
                    out[i] = b'"';
                    state = State::Str;
                    i += 1;
                } else if b == b'\'' {
                    // Lifetime or char literal?
                    if let Some(len) = char_literal_len(bytes, i) {
                        out[i] = b'\'';
                        out[i + len - 1] = b'\'';
                        i += len;
                    } else {
                        out[i] = b'\'';
                        i += 1;
                    }
                } else {
                    out[i] = b;
                    i += 1;
                }
            }
            State::LineComment => {
                // Consumes the rest of the line; reset handled below.
                i = bytes.len();
            }
            State::BlockComment(depth) => {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    i += 1;
                }
            }
            State::Str => {
                if bytes[i] == b'\\' {
                    i += 2; // skip the escaped byte (may run past EOL; fine)
                } else if bytes[i] == b'"' {
                    out[i] = b'"';
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if bytes[i] == b'"' && closes_raw(bytes, i, hashes) {
                    let close_len = 1 + hashes as usize;
                    out[i..i + close_len].copy_from_slice(&bytes[i..i + close_len]);
                    state = State::Code;
                    i += close_len;
                } else {
                    i += 1;
                }
            }
        }
    }
    // Line comments never span lines; unterminated ordinary strings do
    // continue (multi-line string literals are legal Rust).
    if state == State::LineComment {
        state = State::Code;
    }
    // `out` was built from ASCII positions of a UTF-8 string; non-ASCII
    // bytes inside code are copied verbatim above (b >= 0x80 falls into the
    // plain-copy arm), so the buffer is valid UTF-8 whenever the input was.
    (String::from_utf8_lossy(&out).into_owned(), state)
}

/// Is a raw string starting at `i`? Returns the `#` count when so.
/// Covers the `b` (byte) and `c` (C string, Rust ≥ 1.77) prefixes.
fn raw_string_start(bytes: &[u8], i: usize) -> Option<u32> {
    let mut j = i;
    if matches!(bytes.get(j), Some(&b'b') | Some(&b'c')) {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    // An identifier character before `r`/`br` means this is the tail of a
    // longer identifier (e.g. `var` ends in `r`), not a raw-string opener.
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some(hashes)
    } else {
        None
    }
}

fn raw_opener_len(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    if matches!(bytes.get(j), Some(&b'b') | Some(&b'c')) {
        j += 1;
    }
    j += 1; // the `r`
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    j + 1 - i // the `"`
}

/// Does the `"` at `i` close a raw string with `hashes` hashes?
fn closes_raw(bytes: &[u8], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// If position `i` (a `'`) starts a character literal, its total length
/// (including both quotes); `None` when it is a lifetime.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escape: scan to the closing quote (handles '\n', '\'', '\u{1F600}').
        let mut j = i + 2;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        (j < bytes.len()).then_some(j + 1 - i)
    } else if next == b'\'' {
        None // `''` — not a valid literal; treat as stray quotes
    } else {
        // `'x'` is a literal; `'x` (no closing quote right after one char,
        // accounting for multi-byte chars) is a lifetime. Skip one UTF-8
        // character, then require a quote.
        let step = utf8_len(next);
        (bytes.get(i + 1 + step) == Some(&b'\'')).then_some(step + 2)
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b & 0xE0 == 0xC0 => 2,
        b if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Mark the lines belonging to `#[cfg(test)] mod … { … }` regions.
///
/// Strategy: on a masked line containing `#[cfg(test)]`, arm a flag; the
/// next `mod` keyword opens a region that ends when the brace depth at the
/// `mod`'s opening brace closes again. Attribute and header lines are
/// included in the region.
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut depth: i32 = 0;
    // Depth at which the current test module closes, when inside one.
    let mut close_at: Option<i32> = None;
    // Armed by `#[cfg(test)]`, consumed by the next item start.
    let mut armed = false;
    let mut armed_start = 0usize;
    for (idx, line) in code.iter().enumerate() {
        let trimmed = line.trim();
        if close_at.is_none() && trimmed.contains("#[cfg(test)]") {
            armed = true;
            armed_start = idx;
        }
        if close_at.is_none() && armed && contains_word(line, "mod") {
            // The cfg(test)-gated item is a module: everything from the
            // attribute to the module's closing brace is test code.
            for t in in_test.iter_mut().take(idx + 1).skip(armed_start) {
                *t = true;
            }
            // `mod tests;` (out-of-line module) has no body here; only an
            // inline `mod tests { … }` opens a region to track.
            if !trimmed.contains(';') || trimmed.contains('{') {
                close_at = Some(depth);
            }
            armed = false;
        } else if armed && !trimmed.is_empty() && !trimmed.starts_with("#[") {
            // The attribute gated some other item (fn, use, …): it applies
            // to that single line-run; conservatively mark until the item's
            // braces balance out if it opens a block on this line.
            armed = false;
        }
        if let Some(close) = close_at {
            in_test[idx] = true;
            let (opens, closes) = brace_delta(line);
            depth += opens - closes;
            if depth <= close && (opens - closes) < 0 {
                close_at = None;
            }
        } else {
            let (opens, closes) = brace_delta(line);
            depth += opens - closes;
        }
    }
    in_test
}

fn brace_delta(line: &str) -> (i32, i32) {
    let mut opens = 0;
    let mut closes = 0;
    for b in line.bytes() {
        match b {
            b'{' => opens += 1,
            b'}' => closes += 1,
            _ => {}
        }
    }
    (opens, closes)
}

/// Whole-word containment: `needle` appears in `hay` with non-identifier
/// characters (or the line boundary) on both sides.
pub fn contains_word(hay: &str, needle: &str) -> bool {
    find_word(hay, needle, 0).is_some()
}

/// Position of the first whole-word occurrence of `needle` at or after
/// `from`, or `None`.
pub fn find_word(hay: &str, needle: &str, from: usize) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut start = from;
    while let Some(rel) = hay.get(start..)?.find(needle) {
        let pos = start + rel;
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let end = pos + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> Vec<String> {
        mask(src).code
    }

    #[test]
    fn strings_are_blanked_but_quotes_kept() {
        let m = masked(r#"let x = "has .unwrap() inside";"#);
        assert_eq!(m[0], r#"let x = "                    ";"#);
    }

    #[test]
    fn line_and_doc_comments_are_blanked() {
        let m = masked("let a = 1; // .unwrap() here\n/// doc .expect(\nlet b = 2;");
        assert!(!m[0].contains("unwrap"));
        assert!(m[0].contains("let a = 1;"));
        assert!(!m[1].contains("expect"));
        assert_eq!(m[2], "let b = 2;");
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let m = masked(src);
        assert!(m[0].starts_with('a'));
        assert!(m[0].ends_with('b'));
        assert!(!m[0].contains("outer"));
        assert!(!m[0].contains("still"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let m = masked("code1 /* span\nmiddle .unwrap()\nend */ code2");
        assert!(m[0].contains("code1"));
        assert!(!m[1].contains("unwrap"));
        assert!(m[2].contains("code2"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r##"raw "quoted" .unwrap()"##; tail()"####;
        let m = masked(src);
        assert!(!m[0].contains("unwrap"));
        assert!(m[0].contains("tail()"));
    }

    #[test]
    fn multiline_raw_string() {
        let src = "let s = r#\"line one\nstill .expect( raw\n\"# ; after()";
        let m = masked(src);
        assert!(!m[1].contains("expect"));
        assert!(m[2].contains("after()"));
    }

    #[test]
    fn shebang_line_is_blanked_but_inner_attribute_is_not() {
        let m = masked("#!/usr/bin/env run .unwrap()\nfn main() {}");
        assert_eq!(m[0].trim(), "", "shebang contents must not leak");
        assert!(m[1].contains("fn main"));
        let attr = masked("#![allow(dead_code)]\nfn f() {}");
        assert!(attr[0].contains("#![allow(dead_code)]"), "{:?}", attr[0]);
        // Only the first line can be a shebang.
        let late = masked("fn f() {}\n#!/not/a/shebang .unwrap()");
        assert!(late[1].contains("#!/not/a/shebang"));
    }

    #[test]
    fn byte_and_c_string_literals_are_blanked() {
        let m = masked("let x = b\"bytes .unwrap() inside\"; tail()");
        assert!(!m[0].contains("unwrap"));
        assert!(m[0].contains("tail()"));
        let m = masked("let x = c\"cstr .unwrap() inside\"; tail()");
        assert!(!m[0].contains("unwrap"));
        assert!(m[0].contains("tail()"));
    }

    #[test]
    fn c_raw_strings_are_blanked() {
        // `cr#"…"#` must not fall back to plain-string handling, which would
        // close at the first inner quote and leak the rest as code.
        let m = masked("let p = cr#\"raw c .unwrap() \" inner\"#; tail()");
        assert!(!m[0].contains("unwrap"), "{:?}", m[0]);
        assert!(!m[0].contains("inner"), "{:?}", m[0]);
        assert!(m[0].contains("tail()"));
    }

    #[test]
    fn multiline_raw_string_with_two_hashes() {
        let m = masked("let s = r##\"line1 .unwrap()\nline2 \"# .expect( x\nend\"##; tail()");
        assert!(!m[0].contains("unwrap"));
        // A single-hash close inside a two-hash raw string is still content.
        assert!(!m[1].contains("expect"), "{:?}", m[1]);
        assert!(m[2].contains("tail()"), "{:?}", m[2]);
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let m = masked(r#"let var = br_var; call(var, "x")"#);
        assert!(m[0].contains("br_var"));
        assert!(m[0].contains("call(var,"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let m = masked("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'z'; }");
        // Lifetimes survive as code; char contents are blanked.
        assert!(m[0].contains("<'a>"));
        assert!(m[0].contains("&'a str"));
        assert!(!m[0].contains("'z'"));
        // The quote inside the char literal must not open a string.
        assert!(m[0].contains('}'));
    }

    #[test]
    fn escaped_quote_in_string() {
        let m = masked(r#"let s = "a\"b"; live()"#);
        assert!(m[0].contains("live()"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn after() {}";
        let f = mask(src);
        assert_eq!(
            f.in_test,
            vec![false, true, true, true, true, false],
            "{:?}",
            f.in_test
        );
    }

    #[test]
    fn cfg_test_on_single_fn_does_not_swallow_file() {
        let src = "#[cfg(test)]\nfn helper() {}\npub fn real() { x.unwrap(); }";
        let f = mask(src);
        assert!(!f.in_test[2], "code after a cfg(test) fn is live");
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("use std::time::Instant;", "Instant"));
        assert!(!contains_word("let InstantX = 1;", "Instant"));
        assert!(!contains_word("let SimInstant = 1;", "Instant"));
    }
}
