//! Workspace file discovery and classification.
//!
//! The analyzer scans the workspace's own source — `crates/*/src`, the
//! root `src/`, and `examples/` — and skips what the rules never apply
//! to: `target/`, `vendor/` (external shims are not ours to lint),
//! integration `tests/`, and `benches/`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What kind of source a file is; rules scope themselves by this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// A library source file (`crates/*/src/**`, root `src/lib.rs`).
    Library,
    /// A binary entry point (any `src/main.rs`).
    Binary,
    /// A file under `examples/`.
    Example,
}

/// One file selected for scanning.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative, `/`-separated path.
    pub rel_path: String,
    /// Crate name (`likelab-sim`, …) or `likelab` for the root package.
    pub crate_name: String,
    /// Classification used for rule scoping.
    pub kind: FileKind,
}

/// Find every scannable source file under `root` (the workspace root),
/// sorted by path for deterministic reports.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    // Root package: src/ and examples/.
    collect_dir(root, &root.join("src"), "likelab", &mut out)?;
    collect_dir(root, &root.join("examples"), "likelab", &mut out)?;
    // Member crates: crates/*/src only (tests/ and benches/ are out of
    // scope for every rule; vendor/ is external code).
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if !dir.is_dir() {
                continue;
            }
            let name = crate_name_of(&dir);
            collect_dir(root, &dir.join("src"), &name, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

/// The package name of a crate directory: parsed from its `Cargo.toml`
/// `name = "…"` line, falling back to the directory name.
fn crate_name_of(dir: &Path) -> String {
    let manifest = dir.join("Cargo.toml");
    if let Ok(text) = fs::read_to_string(&manifest) {
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return rest.trim().trim_matches('"').to_string();
                }
            }
        }
    }
    dir.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

/// Recursively collect `.rs` files under `dir` into `out`.
fn collect_dir(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack: Vec<PathBuf> = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                let kind = classify(&rel);
                out.push(SourceFile {
                    rel_path: rel,
                    crate_name: crate_name.to_string(),
                    kind,
                });
            }
        }
    }
    Ok(())
}

/// Classify a workspace-relative path.
fn classify(rel: &str) -> FileKind {
    if rel.starts_with("examples/") {
        FileKind::Example
    } else if rel.ends_with("/main.rs") {
        FileKind::Binary
    } else {
        FileKind::Library
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("src/lib.rs"), FileKind::Library);
        assert_eq!(classify("src/main.rs"), FileKind::Binary);
        assert_eq!(classify("crates/lint/src/main.rs"), FileKind::Binary);
        assert_eq!(classify("crates/sim/src/rng.rs"), FileKind::Library);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
    }

    #[test]
    fn discover_finds_this_crate() {
        // The lint crate's own workspace root is two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let files = discover(root).expect("discover");
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/lint/src/walk.rs"));
        assert!(files
            .iter()
            .all(|f| !f.rel_path.contains("vendor/") && !f.rel_path.contains("target/")));
        // Sorted and unique.
        let mut sorted = files.iter().map(|f| f.rel_path.clone()).collect::<Vec<_>>();
        sorted.dedup();
        assert_eq!(sorted.len(), files.len());
        let this = files
            .iter()
            .find(|f| f.rel_path == "crates/lint/src/walk.rs")
            .expect("self");
        assert_eq!(this.crate_name, "likelab-lint");
        assert_eq!(this.kind, FileKind::Library);
    }
}
