//! Black-box tests of the `likelab-lint` binary: flag parsing, `--explain`,
//! and the SARIF output contract that CI uploads to code scanning.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_likelab-lint"))
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn explain_prints_the_long_description_and_exits_zero() {
    let out = bin()
        .args(["--explain", "panic-reachable-from-serve"])
        .output()
        .expect("run binary");
    assert!(out.status.success(), "status: {:?}", out.status);
    let text = stdout(&out);
    assert!(text.starts_with("panic-reachable-from-serve"));
    assert!(
        text.contains("lint:allow(panic-reachable-from-serve)"),
        "every explanation shows the suppression spelling: {text}"
    );
}

#[test]
fn explain_rejects_unknown_rules_with_the_catalog() {
    let out = bin()
        .args(["--explain", "no-such-rule"])
        .output()
        .expect("run binary");
    assert_eq!(out.status.code(), Some(2), "usage error exit code");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("unknown rule `no-such-rule`"));
    assert!(
        err.contains("unwrap-in-library") && err.contains("rng-escapes-parallel"),
        "the error lists the known rules: {err}"
    );
}

#[test]
fn sarif_output_is_valid_enough_for_code_scanning() {
    let root = workspace_root();
    let out = bin()
        .args(["--root"])
        .arg(&root)
        .args(["--baseline", "lint-baseline.json", "--format", "sarif"])
        .output()
        .expect("run binary");
    assert!(out.status.success(), "clean tree: {:?}", out.status);
    let text = stdout(&out);
    assert!(text.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
    assert!(text.contains("\"version\": \"2.1.0\""));
    assert!(text.contains("\"name\": \"likelab-lint\""));
    // The rule catalog rides along even when there are zero results.
    assert!(text.contains("\"id\": \"alloc-in-hot-loop\""));
}

#[test]
fn bad_format_is_a_usage_error() {
    let out = bin()
        .args(["--format", "yaml"])
        .output()
        .expect("run binary");
    assert_eq!(out.status.code(), Some(2));
}
