//! End-to-end fixtures for the analyzer: a synthetic workspace is written
//! to a temp directory and linted through the public [`likelab_lint::run`]
//! entry point, covering discovery, rule firing with exact lines, pragma
//! suppression, and the full baseline lifecycle (accept / fresh / stale).

use likelab_lint::{run, Options};
use std::fs;
use std::path::{Path, PathBuf};

/// A scratch workspace that cleans up after itself.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("likelab-lint-fixture-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create fixture root");
        fs::write(
            root.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        )
        .expect("write workspace manifest");
        Fixture { root }
    }

    fn add_crate(&self, name: &str, lib_source: &str) {
        let dir = self.root.join("crates").join(name);
        fs::create_dir_all(dir.join("src")).expect("create crate dirs");
        fs::write(
            dir.join("Cargo.toml"),
            format!("[package]\nname = \"{name}\"\nversion = \"0.1.0\"\n"),
        )
        .expect("write crate manifest");
        fs::write(dir.join("src/lib.rs"), lib_source).expect("write lib.rs");
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("create parent");
        fs::write(path, content).expect("write file");
    }

    fn path(&self) -> &Path {
        &self.root
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const BAD_LIB: &str = "\
use std::collections::HashMap;

pub fn totals(m: &HashMap<String, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (_k, v) in m {
        out.push(*v);
    }
    out
}

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn pick(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}
";

#[test]
fn known_bad_crate_yields_expected_rules_and_lines() {
    let fx = Fixture::new("known-bad");
    fx.add_crate("demo", BAD_LIB);
    let report = run(fx.path(), &Options::default()).expect("lint run");
    assert_eq!(report.files_scanned, 1);

    let got: Vec<(&str, usize)> = report.findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        got,
        vec![
            ("nondeterministic-iteration", 5),
            // Both the signature exposing `Instant` and the `now()` call.
            ("ambient-time", 11),
            ("ambient-time", 12),
            ("unwrap-in-library", 16),
        ],
        "unexpected findings: {:?}",
        report.findings
    );
    let first = &report.findings[0];
    assert_eq!(first.file, "crates/demo/src/lib.rs");
    assert!(first.snippet.contains("for (_k, v) in m"));
    assert!(!first.hint.is_empty(), "every finding carries a fix hint");
}

#[test]
fn pragmas_suppress_exactly_their_rule() {
    let fx = Fixture::new("pragmas");
    let src = "\
use std::collections::HashMap;

pub fn totals(m: &HashMap<String, u64>) -> u64 {
    let mut total = 0;
    // lint:allow(nondeterministic-iteration): summing is commutative.
    for (_k, v) in m {
        total += v;
    }
    total
}

pub fn pick(xs: &[u64]) -> u64 {
    *xs.first().unwrap() // lint:allow(unwrap-in-library)
}

pub fn pick2(xs: &[u64]) -> u64 {
    // lint:allow(nondeterministic-iteration): wrong rule, must not suppress.
    *xs.first().unwrap()
}
";
    let fx_crate = "demo";
    fx.add_crate(fx_crate, src);
    let report = run(fx.path(), &Options::default()).expect("lint run");
    let got: Vec<(&str, usize)> = report.findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        got,
        vec![("unwrap-in-library", 18)],
        "only the mismatched pragma site stays live: {:?}",
        report.findings
    );
}

#[test]
fn baseline_lifecycle_accepts_then_catches_fresh_then_reports_stale() {
    let fx = Fixture::new("baseline");
    fx.add_crate("demo", BAD_LIB);
    let opts = Options {
        baseline: Some("lint-baseline.json".into()),
        update_baseline: false,
    };

    // 1. Update: every current finding lands in the baseline, report clean.
    let update = Options {
        update_baseline: true,
        ..opts.clone()
    };
    let report = run(fx.path(), &update).expect("baseline update");
    assert!(report.is_clean());
    assert_eq!(report.baselined.len(), 4);
    assert!(fx.path().join("lint-baseline.json").exists());

    // 2. Re-run against the baseline: clean, nothing fresh, nothing stale.
    let report = run(fx.path(), &opts).expect("baselined run");
    assert!(report.is_clean());
    assert_eq!(report.findings.len(), 0);
    assert_eq!(report.baselined.len(), 4);
    assert_eq!(report.stale_baseline.len(), 0);

    // 3. Seed a brand-new forbidden pattern: exactly it comes back fresh,
    //    named by rule, file, and line.
    let seeded = format!("{BAD_LIB}\npub fn seeded() {{\n    println!(\"boom\");\n}}\n");
    fx.write("crates/demo/src/lib.rs", &seeded);
    let report = run(fx.path(), &opts).expect("seeded run");
    assert!(!report.is_clean());
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "stdout-in-library");
    assert_eq!(report.findings[0].file, "crates/demo/src/lib.rs");
    assert_eq!(report.findings[0].line, 20);

    // 4. Fix everything: clean again, and the baseline's dead entries are
    //    counted as stale so it can be re-tightened.
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn fine() -> u64 {\n    7\n}\n",
    );
    let report = run(fx.path(), &opts).expect("fixed run");
    assert!(report.is_clean());
    assert_eq!(report.stale_baseline.len(), 4);
}

#[test]
fn tests_benches_and_binaries_get_the_right_scope() {
    let fx = Fixture::new("scope");
    // Integration tests and benches are never scanned; a crate binary is
    // scanned but stdout/unwrap rules do not apply there.
    fx.add_crate("demo", "pub fn fine() {}\n");
    fx.write(
        "crates/demo/tests/it.rs",
        "fn main() { Vec::<u8>::new().first().unwrap(); }\n",
    );
    fx.write(
        "crates/demo/benches/b.rs",
        "fn main() { println!(\"bench\"); }\n",
    );
    fx.write(
        "crates/demo/src/main.rs",
        "fn main() {\n    println!(\"cli output is fine\");\n    let x: Option<u8> = None;\n    x.unwrap();\n}\n",
    );
    let report = run(fx.path(), &Options::default()).expect("lint run");
    assert_eq!(report.files_scanned, 2, "lib.rs and main.rs only");
    assert!(
        report.findings.is_empty(),
        "binaries may print and unwrap: {:?}",
        report.findings
    );

    // But determinism rules still apply to binaries.
    fx.write(
        "crates/demo/src/main.rs",
        "use std::collections::HashSet;\nfn main() {\n    let s: HashSet<u8> = HashSet::new();\n    for v in &s {\n        eprintln!(\"{v}\");\n    }\n}\n",
    );
    let report = run(fx.path(), &Options::default()).expect("lint run");
    let got: Vec<(&str, usize)> = report.findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(got, vec![("nondeterministic-iteration", 4)]);
}

#[test]
fn corrupt_baseline_is_a_hard_error_not_a_silent_pass() {
    let fx = Fixture::new("corrupt");
    fx.add_crate("demo", BAD_LIB);
    fx.write("lint-baseline.json", "{ not json ");
    let opts = Options {
        baseline: Some("lint-baseline.json".into()),
        update_baseline: false,
    };
    let err = run(fx.path(), &opts).expect_err("corrupt baseline must fail");
    assert!(
        err.contains("lint-baseline.json"),
        "error names the file: {err}"
    );
}
