//! End-to-end fixtures for the interprocedural rules: each bad workspace
//! makes exactly one of the call-graph/dataflow rules fire, and a "good
//! twin" — same shape, hazard removed at the source — stays silent. The
//! twins pin down both halves of each rule's contract: it catches the
//! hazard and it does not cry wolf on the fixed form.

use likelab_lint::{run, Options};
use std::fs;
use std::path::{Path, PathBuf};

/// A scratch workspace that cleans up after itself.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!(
            "likelab-lint-interproc-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create fixture root");
        fs::write(
            root.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        )
        .expect("write workspace manifest");
        Fixture { root }
    }

    fn add_crate(&self, name: &str, lib_source: &str) {
        let dir = self.root.join("crates").join(name);
        fs::create_dir_all(dir.join("src")).expect("create crate dirs");
        fs::write(
            dir.join("Cargo.toml"),
            format!("[package]\nname = \"{name}\"\nversion = \"0.1.0\"\n"),
        )
        .expect("write crate manifest");
        fs::write(dir.join("src/lib.rs"), lib_source).expect("write lib.rs");
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("create parent");
        fs::write(path, content).expect("write file");
    }

    fn path(&self) -> &Path {
        &self.root
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn findings_for<'r>(
    report: &'r likelab_lint::diagnostics::Report,
    rule: &str,
) -> Vec<&'r likelab_lint::diagnostics::Finding> {
    report.findings.iter().filter(|f| f.rule == rule).collect()
}

// ---------------------------------------------------------------------------
// rng-escapes-parallel
// ---------------------------------------------------------------------------

/// The Rng is constructed in one function and leaks into a parallel
/// closure two calls later under a name the lexical rule cannot see.
const RNG_ESCAPE_BAD: &str = "\
pub fn run_study(items: &[u32]) -> Vec<u64> {
    let master = Rng::seed_from_u64(7);
    fan_out(&master, items)
}

fn fan_out(sampler: &Rng, items: &[u32]) -> Vec<u64> {
    parallel_map(Exec::auto(), items, |x| sampler.peek(*x))
}
";

/// Good twin: the closure derives a per-item stream, so sharing the
/// parent handle is sound.
const RNG_ESCAPE_GOOD: &str = "\
pub fn run_study(items: &[u32]) -> Vec<u64> {
    let master = Rng::seed_from_u64(7);
    fan_out(&master, items)
}

fn fan_out(sampler: &Rng, items: &[u32]) -> Vec<u64> {
    parallel_map(Exec::auto(), items, |x| sampler.split(*x as u64).peek(1))
}
";

#[test]
fn rng_escape_fires_across_the_call_chain_with_path() {
    let fx = Fixture::new("rng-bad");
    fx.add_crate("study", RNG_ESCAPE_BAD);
    let report = run(fx.path(), &Options::default()).expect("lint run");
    let hits = findings_for(&report, "rng-escapes-parallel");
    assert_eq!(hits.len(), 1, "findings: {:?}", report.findings);
    let f = hits[0];
    assert_eq!(f.file, "crates/study/src/lib.rs");
    assert_eq!(f.line, 7, "the parallel_map call site");
    assert!(
        f.hint.contains("sampler"),
        "hint names the value: {}",
        f.hint
    );
    assert_eq!(
        f.path,
        vec!["run_study".to_string(), "fan_out".to_string()],
        "chain runs from the construction site to the parallel boundary"
    );
}

#[test]
fn rng_escape_stays_silent_when_the_closure_splits() {
    let fx = Fixture::new("rng-good");
    fx.add_crate("study", RNG_ESCAPE_GOOD);
    let report = run(fx.path(), &Options::default()).expect("lint run");
    assert!(
        findings_for(&report, "rng-escapes-parallel").is_empty(),
        "split inside the span is the sanctioned fix: {:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// panic-reachable-from-serve
// ---------------------------------------------------------------------------

/// The panic hides two hops below the serve loop, in another module.
const SERVE_BAD_LIB: &str = "pub mod serve;\npub mod wire;\n";
const SERVE_BAD_SERVE: &str = "\
use crate::wire::decode;

pub fn serve(lines: &[String]) -> usize {
    let mut n = 0;
    for l in lines {
        n += decode(l);
    }
    n
}
";
const SERVE_BAD_WIRE: &str = "\
pub fn decode(line: &str) -> usize {
    frame_len(line)
}

fn frame_len(l: &str) -> usize {
    l.strip_prefix(\"n=\").unwrap().len()
}
";
/// Good twin: the same shape degrades per line instead of panicking.
const SERVE_GOOD_WIRE: &str = "\
pub fn decode(line: &str) -> usize {
    frame_len(line)
}

fn frame_len(l: &str) -> usize {
    match l.strip_prefix(\"n=\") {
        Some(rest) => rest.len(),
        None => 0,
    }
}
";

#[test]
fn panic_below_serve_is_found_with_its_call_path() {
    let fx = Fixture::new("serve-bad");
    fx.add_crate("served", SERVE_BAD_LIB);
    fx.write("crates/served/src/serve.rs", SERVE_BAD_SERVE);
    fx.write("crates/served/src/wire.rs", SERVE_BAD_WIRE);
    let report = run(fx.path(), &Options::default()).expect("lint run");
    let hits = findings_for(&report, "panic-reachable-from-serve");
    assert_eq!(hits.len(), 1, "findings: {:?}", report.findings);
    let f = hits[0];
    assert_eq!(f.file, "crates/served/src/wire.rs");
    assert_eq!(f.line, 6, "the unwrap line");
    assert_eq!(
        f.path,
        vec![
            "serve".to_string(),
            "decode".to_string(),
            "frame_len".to_string()
        ],
        "path walks from the entry point down to the panic"
    );
}

#[test]
fn serve_reachability_is_silent_once_the_panic_degrades() {
    let fx = Fixture::new("serve-good");
    fx.add_crate("served", SERVE_BAD_LIB);
    fx.write("crates/served/src/serve.rs", SERVE_BAD_SERVE);
    fx.write("crates/served/src/wire.rs", SERVE_GOOD_WIRE);
    let report = run(fx.path(), &Options::default()).expect("lint run");
    assert!(
        findings_for(&report, "panic-reachable-from-serve").is_empty(),
        "no panic left below the entry point: {:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// float-order-sensitivity
// ---------------------------------------------------------------------------

/// `.sum::<f64>()` over HashMap values: order-free for the iteration rule,
/// order-SENSITIVE for float rounding.
const FLOAT_BAD: &str = "\
use std::collections::HashMap;

pub fn total(scores: &HashMap<u32, f64>) -> f64 {
    scores.values().sum::<f64>()
}
";
/// Good twin: a BTreeMap iterates in key order on every run.
const FLOAT_GOOD: &str = "\
use std::collections::BTreeMap;

pub fn total(scores: &BTreeMap<u32, f64>) -> f64 {
    scores.values().sum::<f64>()
}
";

#[test]
fn float_sum_over_hash_iteration_fires_where_iteration_rule_is_silent() {
    let fx = Fixture::new("float-bad");
    fx.add_crate("stats", FLOAT_BAD);
    let report = run(fx.path(), &Options::default()).expect("lint run");
    let hits = findings_for(&report, "float-order-sensitivity");
    assert_eq!(hits.len(), 1, "findings: {:?}", report.findings);
    assert_eq!(hits[0].line, 4);
    assert!(
        findings_for(&report, "nondeterministic-iteration").is_empty(),
        "the two rules split this site, they do not double-report"
    );
}

#[test]
fn float_sum_over_ordered_map_is_silent() {
    let fx = Fixture::new("float-good");
    fx.add_crate("stats", FLOAT_GOOD);
    let report = run(fx.path(), &Options::default()).expect("lint run");
    assert!(
        report.findings.is_empty(),
        "ordered iteration is fine: {:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// alloc-in-hot-loop
// ---------------------------------------------------------------------------

const ALLOC_BAD: &str = "\
// lint:hot — ledger scatter inner loop
pub fn scatter(xs: &[u32]) -> u64 {
    let mut acc = 0u64;
    for x in xs {
        let mut buf = Vec::new();
        buf.push(*x);
        acc += buf.len() as u64 + u64::from(*x);
    }
    acc
}
";
/// Good twin: the buffer is hoisted and reused.
const ALLOC_GOOD: &str = "\
// lint:hot — ledger scatter inner loop
pub fn scatter(xs: &[u32]) -> u64 {
    let mut acc = 0u64;
    let mut buf = Vec::new();
    for x in xs {
        buf.clear();
        buf.push(*x);
        acc += buf.len() as u64 + u64::from(*x);
    }
    acc
}
";

#[test]
fn alloc_inside_a_hot_loop_fires_on_the_alloc_line() {
    let fx = Fixture::new("alloc-bad");
    fx.add_crate("ledger", ALLOC_BAD);
    let report = run(fx.path(), &Options::default()).expect("lint run");
    let hits = findings_for(&report, "alloc-in-hot-loop");
    assert_eq!(hits.len(), 1, "findings: {:?}", report.findings);
    assert_eq!(hits[0].line, 5);
    assert!(hits[0].snippet.contains("Vec::new"));
}

#[test]
fn hoisted_alloc_outside_the_loop_is_silent() {
    let fx = Fixture::new("alloc-good");
    fx.add_crate("ledger", ALLOC_GOOD);
    let report = run(fx.path(), &Options::default()).expect("lint run");
    assert!(
        report.findings.is_empty(),
        "hoist-and-clear is the sanctioned fix: {:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// pragmas + baseline interplay for workspace rules
// ---------------------------------------------------------------------------

#[test]
fn workspace_rules_respect_pragmas() {
    let fx = Fixture::new("pragma");
    let src = ALLOC_BAD.replace(
        "        let mut buf = Vec::new();",
        "        // lint:allow(alloc-in-hot-loop): tiny, measured, reused nowhere\n        let mut buf = Vec::new();",
    );
    fx.add_crate("ledger", &src);
    let report = run(fx.path(), &Options::default()).expect("lint run");
    assert!(
        findings_for(&report, "alloc-in-hot-loop").is_empty(),
        "pragma silences the workspace rule too: {:?}",
        report.findings
    );
}

#[test]
fn baseline_records_the_call_path_for_pathed_findings() {
    let fx = Fixture::new("baseline-path");
    fx.add_crate("served", SERVE_BAD_LIB);
    fx.write("crates/served/src/serve.rs", SERVE_BAD_SERVE);
    fx.write("crates/served/src/wire.rs", SERVE_BAD_WIRE);
    let update = Options {
        baseline: Some("lint-baseline.json".into()),
        update_baseline: true,
    };
    run(fx.path(), &update).expect("baseline update");
    let text = fs::read_to_string(fx.path().join("lint-baseline.json")).expect("read baseline");
    assert!(
        text.contains("\"path\": [\"serve\", \"decode\", \"frame_len\"]"),
        "baseline carries the witness chain: {text}"
    );
    // And the baselined workspace is clean on the next run.
    let check = Options {
        baseline: Some("lint-baseline.json".into()),
        update_baseline: false,
    };
    let report = run(fx.path(), &check).expect("baselined run");
    assert!(report.is_clean(), "fresh: {:?}", report.findings);
}

// ---------------------------------------------------------------------------
// self-scan: the real workspace stays clean under its own baseline
// ---------------------------------------------------------------------------

#[test]
fn the_workspace_lints_itself_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let opts = Options {
        baseline: Some("lint-baseline.json".into()),
        update_baseline: false,
    };
    let report = run(&root, &opts).expect("self scan");
    assert!(
        report.is_clean(),
        "the tree must lint clean under the checked-in baseline: {:?}",
        report.findings
    );
    assert!(
        report.stale_baseline.is_empty(),
        "baseline entries must all still exist: {:?}",
        report.stale_baseline
    );
    // The interprocedural rules hold a zero baseline: hazards are fixed at
    // the source (or carry an inline invariant pragma), never grandfathered.
    for f in &report.baselined {
        assert_eq!(
            f.rule, "unwrap-in-library",
            "only the legacy unwrap debt may be baselined: {f:?}"
        );
    }
}
