//! Property-based tests of the analyzer front end: arbitrary byte soup
//! must never panic the tokenizer, the parser, or the rule engine, and
//! masking must be shape-preserving and idempotent. The analyzer runs on
//! every CI push over a growing tree — "never crashes on weird-but-real
//! source" is a load-bearing property, not a nicety.

use likelab_lint::parse;
use likelab_lint::rules;
use likelab_lint::tokenizer;
use likelab_lint::walk::FileKind;
use proptest::prelude::*;

/// The alphabet the soup draws from: printable ASCII seasoned heavily with
/// the characters that drive the tokenizer's state machine (quotes,
/// hashes, slashes, braces, prefixes, newlines). Repeating the drivers
/// weights them up so raw-string/comment/attribute openers appear often.
const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 _:;,.<>=&|+-\
\"\"\"''''###///***\\\\{{}}(())[]\n\n\n\nrrbbcc!!#";

/// Source-ish strings of up to 400 characters over [`ALPHABET`].
fn source_soup() -> impl Strategy<Value = String> {
    vec(0usize..ALPHABET.len(), 0..400)
        .prop_map(|idxs| idxs.into_iter().map(|i| ALPHABET[i] as char).collect())
}

proptest! {
    /// The full front end — mask, parse, per-file rules — never panics,
    /// whatever bytes arrive.
    #[test]
    fn front_end_never_panics(src in source_soup()) {
        let masked = tokenizer::mask(&src);
        let _ = parse::parse(&masked);
        let _ = rules::scan_source("crates/x/src/lib.rs", "x", FileKind::Library, &src);
    }

    /// Masking preserves the line/column shape of the file exactly: same
    /// line count, same per-line byte length. Every rule relies on this to
    /// report real line numbers.
    #[test]
    fn masking_preserves_shape(src in source_soup()) {
        let masked = tokenizer::mask(&src);
        prop_assert_eq!(masked.raw.len(), masked.code.len());
        prop_assert_eq!(masked.raw.len(), masked.in_test.len());
        for (raw, code) in masked.raw.iter().zip(&masked.code) {
            prop_assert_eq!(raw.len(), code.len(), "line shape must survive masking");
        }
    }

    /// Masking is idempotent: the code view contains no string or comment
    /// interiors, so masking it again changes nothing.
    #[test]
    fn masking_is_idempotent(src in source_soup()) {
        let once = tokenizer::mask(&src);
        let code = once.code.join("\n");
        let twice = tokenizer::mask(&code);
        prop_assert_eq!(&once.code, &twice.code, "mask(mask(s)) == mask(s)");
    }
}
