//! Snapshot exporters: stable-schema JSON for machines, a flame-style
//! tree and a timing table for humans.
//!
//! The JSON schemas are versioned and snapshot-tested; consumers can rely
//! on field names and nesting (see `OBSERVABILITY.md` § exporter formats).
//! JSON is hand-rolled so this crate stays dependency-free; keys render in
//! deterministic (sorted) order.

use crate::metrics::Histogram;
use crate::span::{SpanRecord, SpanStat};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A merged, consistent view of every shard at one point in time.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// All histograms, by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Exact per-name span aggregates (immune to ring eviction).
    pub span_stats: BTreeMap<String, SpanStat>,
    /// Finished spans that survived the ring buffers, in start order.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from ring buffers before this snapshot.
    pub dropped_spans: u64,
}

/// Escape a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render nanoseconds for humans: `1.23s`, `45.6ms`, `789µs`, or `12ns`.
pub fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns_f / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns_f / 1e6)
    } else if ns >= 1_000 {
        format!("{:.0}µs", ns_f / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl Snapshot {
    /// Counters, histograms, and span aggregates as a JSON document.
    ///
    /// Schema (version 1):
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "counters": {"name": 123},
    ///   "histograms": {"name": {"count": 2, "sum": 30, "min": 10,
    ///     "max": 20, "p50": 15, "p99": 20, "buckets": [[15, 1], [31, 1]]}},
    ///   "spans": {"name": {"count": 1, "total_ns": 42}}
    /// }
    /// ```
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {v}", json_escape(name));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .map(|(upper, n)| format!("[{upper}, {n}]"))
                .collect();
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                json_escape(name),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.99),
                buckets.join(", ")
            );
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"spans\": {");
        first = true;
        for (name, s) in &self.span_stats {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"total_ns\": {}}}",
                json_escape(name),
                s.count,
                s.total_ns
            );
        }
        out.push_str(if first { "}\n}" } else { "\n  }\n}" });
        out.push('\n');
        out
    }

    /// The span trace as a JSON document.
    ///
    /// Schema (version 1):
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "dropped": 0,
    ///   "spans": [
    ///     {"id": 1, "parent": null, "name": "study.run", "thread": 0,
    ///      "start_ns": 0, "dur_ns": 123}
    ///   ]
    /// }
    /// ```
    pub fn trace_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n");
        let _ = write!(
            out,
            "  \"dropped\": {},\n  \"spans\": [",
            self.dropped_spans
        );
        let mut first = true;
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let parent = s
                .parent
                .map(|p| p.to_string())
                .unwrap_or_else(|| "null".into());
            let _ = write!(
                out,
                "\n    {{\"id\": {}, \"parent\": {}, \"name\": \"{}\", \"thread\": {}, \
                 \"start_ns\": {}, \"dur_ns\": {}}}",
                s.id,
                parent,
                json_escape(&s.name),
                s.thread,
                s.start_ns,
                s.dur_ns
            );
        }
        out.push_str(if first { "]\n}" } else { "\n  ]\n}" });
        out.push('\n');
        out
    }

    /// A flame-style text tree: spans grouped under their parents,
    /// same-name siblings aggregated, children sorted by total time.
    ///
    /// Spans whose parent was evicted from a ring buffer are promoted to
    /// roots, so a truncated trace still renders.
    pub fn flame(&self) -> String {
        #[derive(Default)]
        struct Node {
            count: u64,
            total_ns: u64,
            children: BTreeMap<String, Node>,
        }

        let known: std::collections::HashSet<u64> = self.spans.iter().map(|s| s.id).collect();
        let mut children_of: BTreeMap<Option<u64>, Vec<&SpanRecord>> = BTreeMap::new();
        for s in &self.spans {
            let parent = s.parent.filter(|p| known.contains(p));
            children_of.entry(parent).or_default().push(s);
        }

        fn build(
            parent: Option<u64>,
            children_of: &BTreeMap<Option<u64>, Vec<&SpanRecord>>,
            into: &mut BTreeMap<String, Node>,
        ) {
            let Some(spans) = children_of.get(&parent) else {
                return;
            };
            for s in spans {
                let node = into.entry(s.name.clone()).or_default();
                node.count += 1;
                node.total_ns += s.dur_ns;
                build(Some(s.id), children_of, &mut node.children);
            }
        }

        let mut roots: BTreeMap<String, Node> = BTreeMap::new();
        build(None, &children_of, &mut roots);

        fn render(
            nodes: &BTreeMap<String, Node>,
            depth: usize,
            grand_total: u64,
            out: &mut String,
        ) {
            let mut ordered: Vec<(&String, &Node)> = nodes.iter().collect();
            ordered.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
            for (name, node) in ordered {
                let pct = if grand_total > 0 {
                    node.total_ns as f64 * 100.0 / grand_total as f64
                } else {
                    0.0
                };
                let indent = "  ".repeat(depth);
                let label = format!("{indent}{name}");
                let _ = writeln!(
                    out,
                    "{label:<44} {:>7}x {:>10} {pct:>5.1}%",
                    node.count,
                    fmt_ns(node.total_ns)
                );
                render(&node.children, depth + 1, grand_total, out);
            }
        }

        let grand_total: u64 = roots.values().map(|n| n.total_ns).sum();
        let mut out = String::new();
        render(&roots, 0, grand_total, &mut out);
        if self.dropped_spans > 0 {
            let _ = writeln!(
                out,
                "... {} spans evicted before snapshot",
                self.dropped_spans
            );
        }
        out
    }

    /// The human `--timing` summary: per-phase wall time from the exact
    /// span aggregates (sorted by total, descending), then counters, then
    /// histogram summaries.
    pub fn timing_table(&self) -> String {
        let mut out = String::new();
        out.push_str("== timing: spans ==\n");
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>10} {:>10} {:>6}",
            "span", "count", "total", "mean", "%"
        );
        let top = self
            .span_stats
            .values()
            .map(|s| s.total_ns)
            .max()
            .unwrap_or(0);
        let mut rows: Vec<(&String, &SpanStat)> = self.span_stats.iter().collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        for (name, s) in rows {
            let mean = s.total_ns.checked_div(s.count).unwrap_or(0);
            let pct = if top > 0 {
                s.total_ns as f64 * 100.0 / top as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{name:<40} {:>8} {:>10} {:>10} {pct:>5.1}%",
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(mean)
            );
        }
        if !self.counters.is_empty() {
            out.push_str("\n== timing: counters ==\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<40} {v:>12}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\n== timing: histograms ==\n");
            let _ = writeln!(
                out,
                "{:<40} {:>8} {:>10} {:>10} {:>10}",
                "histogram", "count", "mean", "p50", "p99"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{name:<40} {:>8} {:>10} {:>10} {:>10}",
                    h.count(),
                    fmt_ns(h.mean() as u64),
                    fmt_ns(h.quantile(0.5)),
                    fmt_ns(h.quantile(0.99))
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_snapshot() -> Snapshot {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        Snapshot {
            counters: [("likes.synthesized".to_string(), 42)]
                .into_iter()
                .collect(),
            histograms: [("parallel.job.ns".to_string(), h)].into_iter().collect(),
            span_stats: [(
                "study.run".to_string(),
                SpanStat {
                    count: 1,
                    total_ns: 1000,
                },
            )]
            .into_iter()
            .collect(),
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: None,
                    name: "study.run".into(),
                    thread: 0,
                    start_ns: 0,
                    dur_ns: 1000,
                },
                SpanRecord {
                    id: 2,
                    parent: Some(1),
                    name: "study.report".into(),
                    thread: 0,
                    start_ns: 100,
                    dur_ns: 400,
                },
            ],
            dropped_spans: 0,
        }
    }

    // The JSON schemas are a public surface: downstream tooling parses
    // them. These snapshot strings must only change with a version bump.
    #[test]
    fn metrics_json_schema_is_stable() {
        let expected = "{\n  \"version\": 1,\n  \"counters\": {\n    \"likes.synthesized\": 42\n  },\n  \"histograms\": {\n    \"parallel.job.ns\": {\"count\": 2, \"sum\": 30, \"min\": 10, \"max\": 20, \"p50\": 15, \"p99\": 20, \"buckets\": [[15, 1], [31, 1]]}\n  },\n  \"spans\": {\n    \"study.run\": {\"count\": 1, \"total_ns\": 1000}\n  }\n}\n";
        assert_eq!(fixed_snapshot().metrics_json(), expected);
    }

    #[test]
    fn trace_json_schema_is_stable() {
        let expected = "{\n  \"version\": 1,\n  \"dropped\": 0,\n  \"spans\": [\n    {\"id\": 1, \"parent\": null, \"name\": \"study.run\", \"thread\": 0, \"start_ns\": 0, \"dur_ns\": 1000},\n    {\"id\": 2, \"parent\": 1, \"name\": \"study.report\", \"thread\": 0, \"start_ns\": 100, \"dur_ns\": 400}\n  ]\n}\n";
        assert_eq!(fixed_snapshot().trace_json(), expected);
    }

    #[test]
    fn empty_snapshot_exports_valid_json() {
        let snap = Snapshot::default();
        assert_eq!(
            snap.metrics_json(),
            "{\n  \"version\": 1,\n  \"counters\": {},\n  \"histograms\": {},\n  \"spans\": {}\n}\n"
        );
        assert_eq!(
            snap.trace_json(),
            "{\n  \"version\": 1,\n  \"dropped\": 0,\n  \"spans\": []\n}\n"
        );
        assert_eq!(snap.flame(), "");
        assert!(snap.timing_table().contains("== timing: spans =="));
    }

    #[test]
    fn json_escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn flame_nests_children_under_parents() {
        let flame = fixed_snapshot().flame();
        let run_line = flame.lines().position(|l| l.starts_with("study.run"));
        let report_line = flame.lines().position(|l| l.starts_with("  study.report"));
        assert!(run_line.is_some(), "root at depth 0:\n{flame}");
        assert!(report_line.is_some(), "child indented under root:\n{flame}");
        assert!(run_line < report_line);
    }

    #[test]
    fn flame_promotes_orphans_to_roots() {
        let mut snap = fixed_snapshot();
        // Parent id 1 evicted: child must still render, at root depth.
        snap.spans.retain(|s| s.id != 1);
        snap.dropped_spans = 1;
        let flame = snap.flame();
        assert!(flame.lines().any(|l| l.starts_with("study.report")));
        assert!(flame.contains("1 spans evicted"));
    }

    #[test]
    fn timing_table_sorts_by_total() {
        let mut snap = fixed_snapshot();
        snap.span_stats.insert(
            "study.small".into(),
            SpanStat {
                count: 5,
                total_ns: 10,
            },
        );
        let table = snap.timing_table();
        let run = table
            .lines()
            .position(|l| l.starts_with("study.run"))
            .unwrap();
        let small = table
            .lines()
            .position(|l| l.starts_with("study.small"))
            .unwrap();
        assert!(run < small, "bigger total first:\n{table}");
        assert!(table.contains("likes.synthesized"));
        assert!(table.contains("parallel.job.ns"));
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "2µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }
}
