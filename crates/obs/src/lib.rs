//! # likelab-obs — observability for the like-fraud laboratory
//!
//! A zero-external-dependency instrumentation layer the rest of the
//! workspace threads through its hot paths: hierarchical tracing spans, a
//! registry of named counters and histograms, and exporters to JSON and a
//! flame-style text tree. See `OBSERVABILITY.md` at the repository root for
//! naming conventions and worked examples.
//!
//! ## Design
//!
//! - **Off by default, near-free when off.** Every entry point starts with
//!   one relaxed atomic load of a global flag ([`enabled`]); when the flag
//!   is clear, [`span::enter`] returns an inert guard and
//!   [`metrics::counter`]/[`metrics::record_ns`] return immediately —
//!   no allocation, no locking, no clock read. The `obs` bench measures
//!   both states.
//! - **Per-thread shards.** When enabled, each thread writes counters,
//!   histograms, span aggregates, and its span ring buffer into its *own*
//!   shard, so instrumented worker pools never contend with each other on
//!   the hot path; [`snapshot`] merges every shard (counters sum, histogram
//!   buckets add — an associative merge) into one consistent view.
//! - **Bounded memory.** Finished spans land in a fixed-capacity per-thread
//!   ring buffer (oldest evicted first, evictions counted), while per-name
//!   span *aggregates* (count + total wall time) are exact and unbounded —
//!   so the `--timing` table stays truthful even when a trace overflows.
//! - **Observability never perturbs results.** Nothing in this crate feeds
//!   back into simulation state or RNG streams; enabling it changes
//!   wall-clock only. Determinism tests run with it both off and on.
//!
//! ## Example
//!
//! ```
//! likelab_obs::reset();
//! likelab_obs::enable();
//! {
//!     let _outer = likelab_obs::span::enter("demo.outer");
//!     let _inner = likelab_obs::span::enter("demo.inner");
//!     likelab_obs::metrics::counter("demo.widgets", 3);
//!     likelab_obs::metrics::record_ns("demo.step.ns", 1_500);
//! }
//! let snap = likelab_obs::snapshot();
//! assert_eq!(snap.counters["demo.widgets"], 3);
//! assert_eq!(snap.span_stats["demo.inner"].count, 1);
//! // The inner span is a child of the outer one.
//! let inner = snap.spans.iter().find(|s| s.name == "demo.inner").unwrap();
//! let outer = snap.spans.iter().find(|s| s.name == "demo.outer").unwrap();
//! assert_eq!(inner.parent, Some(outer.id));
//! likelab_obs::disable();
//! ```

pub mod export;
pub mod metrics;
pub mod shard;
pub mod span;

pub use export::Snapshot;
pub use metrics::Histogram;
pub use span::{SpanGuard, SpanRecord, SpanStat};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn instrumentation on, process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn instrumentation off, process-wide. Already-collected data stays
/// available to [`snapshot`] until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether instrumentation is currently on. This is the only cost an
/// instrumented call site pays when observability is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the process-wide observability epoch (the first call
/// into this function). All span timestamps share this origin.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Merge every thread's shard into one consistent [`Snapshot`].
pub fn snapshot() -> Snapshot {
    shard::merge_all()
}

/// Clear all collected data in every shard (counters, histograms, span
/// aggregates, span rings). The enabled flag is left untouched.
pub fn reset() {
    shard::reset_all();
}

/// Open a named span for the rest of the enclosing scope.
///
/// Expands to a `let` binding of a [`SpanGuard`], so the span closes when
/// the scope ends. Use [`span::enter`] directly when the span must close
/// before the scope does.
///
/// ```
/// likelab_obs::reset();
/// likelab_obs::enable();
/// {
///     likelab_obs::span!("demo.phase");
///     // ... work ...
/// }
/// assert_eq!(likelab_obs::snapshot().span_stats["demo.phase"].count, 1);
/// likelab_obs::disable();
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _obs_span_guard = $crate::span::enter($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-state tests share one process with the other unit tests in
    // this crate; each locks the harness serially via shard::test_lock.

    #[test]
    fn disabled_is_inert() {
        let _guard = shard::test_lock();
        reset();
        disable();
        metrics::counter("never.recorded", 5);
        metrics::record_ns("never.recorded.ns", 5);
        {
            span!("never.recorded.span");
        }
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.span_stats.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn enable_disable_round_trip() {
        let _guard = shard::test_lock();
        reset();
        enable();
        assert!(enabled());
        metrics::counter("rt.counter", 2);
        disable();
        assert!(!enabled());
        metrics::counter("rt.counter", 40);
        let snap = snapshot();
        assert_eq!(snap.counters["rt.counter"], 2, "post-disable write ignored");
    }

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
