//! The metrics registry: named monotone counters and log-bucketed
//! histograms, sharded per thread and merged on snapshot.
//!
//! Metric names are flat strings following the `OBSERVABILITY.md`
//! conventions (`subsystem.noun.unit`, labels baked in as
//! `name{label=value}`). Both entry points are no-ops while observability
//! is [disabled](crate::enabled).

use crate::shard::with_shard;

/// Add `delta` to the named counter (no-op while disabled).
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|s| s.count(name, delta));
}

/// Record one observation (conventionally nanoseconds, hence the name —
/// any `u64` quantity works) into the named histogram (no-op while
/// disabled).
#[inline]
pub fn record_ns(name: &str, value: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|s| s.observe(name, value));
}

/// Run `f`, recording its wall-clock duration in nanoseconds into the
/// named histogram (see [`record_ns`]). The clock is only read while
/// observability is enabled, so disabled runs pay nothing and stay free
/// of wall-time dependence.
#[inline]
pub fn timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
    if !crate::enabled() {
        return f();
    }
    let start = std::time::Instant::now();
    let out = f();
    record_ns(
        name,
        start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
    );
    out
}

/// Number of power-of-two buckets: bucket `i` holds values in
/// `[2^(i-1), 2^i)`, bucket 0 holds exactly zero, bucket 64 tops out at
/// `u64::MAX`.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram with exact count/sum/min/max.
///
/// Bucket boundaries are fixed powers of two, which makes
/// [`merge`](Histogram::merge) a plain element-wise add — associative and
/// commutative, so per-thread shards can merge in any order and produce
/// the same totals. Quantiles are upper-bound estimates (the reported
/// value is the upper edge of the bucket containing the quantile, clamped
/// to the observed min/max).
#[derive(Clone, Debug)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn bucket_of(value: u64) -> usize {
        64 - value.leading_zeros() as usize
    }

    /// The inclusive upper edge of bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else if i == 0 {
            0
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Fold another histogram into this one (element-wise bucket add).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of quantile `q` in `[0, 1]`, clamped to the
    /// observed `[min, max]` range. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive_upper_edge, count)` pairs, in
    /// ascending edge order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (Self::bucket_upper(i), *n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn record_tracks_exact_stats() {
        let mut h = Histogram::new();
        for v in [3, 9, 1, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 113);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 28.25).abs() < 1e-9);
    }

    #[test]
    fn bucket_edges_are_powers_of_two() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        // 0 → [0,0]; 1 → (0,1]; 2,3 → (1,3]; 4 → (3,7].
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (7, 1)]);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((500..=1000).contains(&p50), "p50 estimate {p50}");
        assert!(p99 >= p50);
        assert!(p99 <= h.max());
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |values: &[u64]| {
            let mut h = Histogram::new();
            for v in values {
                h.record(*v);
            }
            h
        };
        let a = mk(&[1, 2, 3]);
        let b = mk(&[10, 20]);
        let c = mk(&[500, 1_000_000]);

        let digest = |h: &Histogram| {
            (
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.nonzero_buckets().collect::<Vec<_>>(),
            )
        };

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(digest(&ab_c), digest(&a_bc));

        // a ⊕ b == b ⊕ a
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(digest(&ab), digest(&ba));
    }

    #[test]
    fn huge_values_saturate_not_wrap() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
