//! Per-thread storage shards and the global shard registry.
//!
//! Every instrumented thread owns one [`Shard`]: its counters, histograms,
//! span aggregates, and a bounded ring buffer of finished spans. The hot
//! path touches only the calling thread's shard — the shard mutex exists
//! for the snapshot reader and is uncontended during normal execution, so
//! instrumented worker pools never serialize against each other. Shards
//! outlive their threads (the registry holds an `Arc`), so spans recorded
//! by short-lived scoped workers survive into the snapshot.

use crate::export::Snapshot;
use crate::metrics::Histogram;
use crate::span::{SpanRecord, SpanStat};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Default capacity of each thread's finished-span ring buffer.
pub const DEFAULT_SPAN_RING_CAPACITY: usize = 16_384;

static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_SPAN_RING_CAPACITY);

/// Set the per-thread span ring capacity (applies to subsequent pushes;
/// existing entries are kept until eviction). `0` disables span recording
/// entirely while leaving aggregates exact.
pub fn set_span_ring_capacity(capacity: usize) {
    RING_CAPACITY.store(capacity, Ordering::SeqCst);
}

/// One thread's private slice of the observability state.
#[derive(Debug, Default)]
pub struct Shard {
    /// Dense thread index assigned at registration (0 = first registered).
    pub thread: u64,
    counters: HashMap<String, u64>,
    histograms: HashMap<String, Histogram>,
    span_stats: HashMap<String, SpanStat>,
    ring: VecDeque<SpanRecord>,
    dropped_spans: u64,
}

impl Shard {
    /// Add `delta` to the named counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                self.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Record one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                self.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// Record one finished span: exact per-name aggregate plus the bounded
    /// ring entry (evicting the oldest span when full).
    pub fn finish_span(&mut self, record: SpanRecord) {
        let stat = self.span_stats.entry(record.name.clone()).or_default();
        stat.count += 1;
        stat.total_ns += record.dur_ns;
        let cap = RING_CAPACITY.load(Ordering::Relaxed);
        if cap == 0 {
            self.dropped_spans += 1;
            return;
        }
        while self.ring.len() >= cap {
            self.ring.pop_front();
            self.dropped_spans += 1;
        }
        self.ring.push_back(record);
    }

    fn clear(&mut self) {
        self.counters.clear();
        self.histograms.clear();
        self.span_stats.clear();
        self.ring.clear();
        self.dropped_spans = 0;
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<Shard>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<Shard>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL: RefCell<Option<Arc<Mutex<Shard>>>> = const { RefCell::new(None) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking instrumented thread must not wedge observability for the
    // rest of the process: the data is monotone, so poisoning is harmless.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` against the calling thread's shard, registering it on first use.
pub fn with_shard<R>(f: impl FnOnce(&mut Shard) -> R) -> R {
    let arc = LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        Arc::clone(slot.get_or_insert_with(|| {
            let shard = Arc::new(Mutex::new(Shard {
                thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
                ..Shard::default()
            }));
            lock(registry()).push(Arc::clone(&shard));
            shard
        }))
    });
    let result = f(&mut lock(&arc));
    result
}

/// Merge every registered shard into one [`Snapshot`]. Counters sum,
/// histograms merge bucket-wise (associative and commutative, so the shard
/// order cannot matter), spans concatenate and sort by start time.
pub fn merge_all() -> Snapshot {
    let shards = lock(registry());
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut span_stats: BTreeMap<String, SpanStat> = BTreeMap::new();
    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut dropped_spans = 0;
    for shard in shards.iter() {
        let shard = lock(shard);
        // lint:allow(nondeterministic-iteration): += into a BTreeMap is
        // commutative; shard-local maps stay HashMap for the hot path.
        for (name, v) in &shard.counters {
            *counters.entry(name.clone()).or_insert(0) += v;
        }
        // lint:allow(nondeterministic-iteration): bucket-wise merge is
        // associative and commutative.
        for (name, h) in &shard.histograms {
            histograms.entry(name.clone()).or_default().merge(h);
        }
        // lint:allow(nondeterministic-iteration): count/total sums are
        // commutative.
        for (name, s) in &shard.span_stats {
            let agg = span_stats.entry(name.clone()).or_default();
            agg.count += s.count;
            agg.total_ns += s.total_ns;
        }
        spans.extend(shard.ring.iter().cloned());
        dropped_spans += shard.dropped_spans;
    }
    spans.sort_by_key(|s| (s.start_ns, s.thread, s.id));
    Snapshot {
        counters,
        histograms,
        span_stats,
        spans,
        dropped_spans,
    }
}

/// Clear every registered shard's data (registration itself persists).
pub fn reset_all() {
    for shard in lock(registry()).iter() {
        lock(shard).clear();
    }
}

/// Serialize tests that manipulate the process-global observability state.
/// Returns a guard; hold it for the duration of the test.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let m = LOCK.get_or_init(|| Mutex::new(()));
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_counts_and_observes() {
        let mut s = Shard::default();
        s.count("a", 1);
        s.count("a", 2);
        s.observe("h", 10);
        s.observe("h", 20);
        assert_eq!(s.counters["a"], 3);
        assert_eq!(s.histograms["h"].count(), 2);
        assert_eq!(s.histograms["h"].sum(), 30);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let _guard = test_lock();
        set_span_ring_capacity(2);
        let mut s = Shard::default();
        for i in 0..5u64 {
            s.finish_span(SpanRecord {
                id: i,
                parent: None,
                name: "x".into(),
                thread: 0,
                start_ns: i,
                dur_ns: 1,
            });
        }
        assert_eq!(s.ring.len(), 2);
        assert_eq!(s.dropped_spans, 3);
        let ids: Vec<u64> = s.ring.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 4], "oldest evicted first");
        // Aggregates stay exact despite eviction.
        assert_eq!(s.span_stats["x"].count, 5);
        set_span_ring_capacity(DEFAULT_SPAN_RING_CAPACITY);
    }

    #[test]
    fn zero_capacity_disables_ring_not_aggregates() {
        let _guard = test_lock();
        set_span_ring_capacity(0);
        let mut s = Shard::default();
        s.finish_span(SpanRecord {
            id: 1,
            parent: None,
            name: "y".into(),
            thread: 0,
            start_ns: 0,
            dur_ns: 7,
        });
        assert!(s.ring.is_empty());
        assert_eq!(s.span_stats["y"].total_ns, 7);
        set_span_ring_capacity(DEFAULT_SPAN_RING_CAPACITY);
    }
}
