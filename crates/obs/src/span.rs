//! Hierarchical tracing spans.
//!
//! A span is a named wall-clock interval. Spans nest per thread: each
//! thread keeps a stack of open spans, and a new span's parent is whatever
//! span is open on the same thread at entry (worker threads spawned inside
//! a span start fresh — cross-thread parenting would require plumbing a
//! context through `std::thread::scope`, which the hot paths cannot
//! afford). Finished spans land in the thread's bounded ring buffer for
//! trace export, and in an exact per-name aggregate for the timing table.

use crate::shard::with_shard;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// One finished span, as exported in `--trace-out` JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (allocation order, starts at 1).
    pub id: u64,
    /// The span open on the same thread at entry, if any.
    pub parent: Option<u64>,
    /// Span name (`subsystem.phase` by convention).
    pub name: String,
    /// Dense id of the recording thread (0 = first instrumented thread).
    pub thread: u64,
    /// Start, in nanoseconds since the observability epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// Exact per-name span aggregate (never dropped, unlike ring entries).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many spans finished under this name.
    pub count: u64,
    /// Total wall-clock nanoseconds across them.
    pub total_ns: u64,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
    start_ns: u64,
}

/// Guard for an open span; the span closes (and is recorded) on drop.
/// Inert — carrying no allocation — when observability is disabled.
#[must_use = "a span closes when its guard drops; binding it to _ closes it immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

/// Open a span named `name`; it closes when the returned guard drops.
///
/// Prefer the [`span!`](crate::span!) macro for whole-scope spans. When
/// disabled this costs one atomic load and returns an inert guard.
#[inline]
pub fn enter(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent,
            name: name.to_owned(),
            start_ns: crate::now_ns(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_ns = crate::now_ns().saturating_sub(active.start_ns);
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in LIFO order in well-nested code; tolerate
            // out-of-order drops (e.g. a guard moved out of its scope) by
            // removing this id wherever it sits.
            if s.last() == Some(&active.id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|x| *x == active.id) {
                s.remove(pos);
            }
        });
        with_shard(|shard| {
            let thread = shard.thread;
            shard.finish_span(SpanRecord {
                id: active.id,
                parent: active.parent,
                name: active.name,
                thread,
                start_ns: active.start_ns,
                dur_ns,
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::test_lock;

    #[test]
    fn nesting_links_parents_on_one_thread() {
        let _guard = test_lock();
        crate::reset();
        crate::enable();
        {
            let _a = enter("t.outer");
            {
                let _b = enter("t.middle");
                let _c = enter("t.inner");
            }
            let _d = enter("t.sibling");
        }
        crate::disable();
        let snap = crate::snapshot();
        let by_name = |n: &str| snap.spans.iter().find(|s| s.name == n).unwrap().clone();
        let outer = by_name("t.outer");
        let middle = by_name("t.middle");
        let inner = by_name("t.inner");
        let sibling = by_name("t.sibling");
        assert_eq!(outer.parent, None);
        assert_eq!(middle.parent, Some(outer.id));
        assert_eq!(inner.parent, Some(middle.id));
        assert_eq!(sibling.parent, Some(outer.id), "stack popped correctly");
        assert!(outer.dur_ns >= middle.dur_ns);
    }

    #[test]
    fn disabled_guard_is_inert_and_stackless() {
        let _guard = test_lock();
        crate::reset();
        crate::disable();
        {
            let _a = enter("never");
            STACK.with(|s| assert!(s.borrow().is_empty()));
        }
        assert!(crate::snapshot().spans.is_empty());
    }

    #[test]
    fn aggregates_count_every_span() {
        let _guard = test_lock();
        crate::reset();
        crate::enable();
        for _ in 0..10 {
            let _s = enter("t.repeat");
        }
        crate::disable();
        let snap = crate::snapshot();
        assert_eq!(snap.span_stats["t.repeat"].count, 10);
    }

    #[test]
    fn spans_from_scoped_workers_survive_thread_death() {
        let _guard = test_lock();
        crate::reset();
        crate::enable();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _s = enter("t.worker");
                });
            }
        });
        crate::disable();
        let snap = crate::snapshot();
        assert_eq!(snap.span_stats["t.worker"].count, 4);
        let workers: Vec<_> = snap.spans.iter().filter(|s| s.name == "t.worker").collect();
        assert_eq!(workers.len(), 4);
        assert!(workers.iter().all(|s| s.parent.is_none()));
    }
}
